"""Legacy setup shim.

The offline evaluation environment has setuptools but not ``wheel``, so the
PEP-517 editable path (``pip install -e .``) cannot build a wheel.  This shim
lets ``python setup.py develop`` install the package in editable mode with no
network access.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
