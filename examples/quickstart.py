"""Quickstart: simulate one benchmark with and without value speculation.

Runs the m88ksim stand-in kernel on the paper's 8-wide/48-entry
configuration, once on the base processor and once under the *great*
speculative-execution model, then prints both counter summaries and the
speedup — the paper's headline measurement (Figure 3) for one benchmark.

Run:  python examples/quickstart.py
"""

from repro import GREAT_MODEL, ProcessorConfig, kernel, run_baseline, run_trace
from repro.metrics import summarize_counters


def main() -> None:
    spec = kernel("m88ksim")
    trace = spec.trace(max_instructions=10_000)
    config = ProcessorConfig(issue_width=8, window_size=48)

    base = run_baseline(trace, config)
    print(summarize_counters(base.counters, f"{spec.name} @ {config.label} — base"))
    print()

    vp = run_trace(
        trace,
        config,
        GREAT_MODEL,
        confidence="real",  # the paper's 3-bit resetting counters
        update_timing="D",  # delayed (retirement-time) predictor update
    )
    print(
        summarize_counters(
            vp.counters, f"{spec.name} @ {config.label} — great, {vp.setting_label}"
        )
    )
    print()
    print(f"speedup over base: {base.cycles / vp.cycles:.3f}")


if __name__ == "__main__":
    main()
