"""Design-space exploration with custom speculative-execution models.

The paper's central argument is that a value-speculative microarchitecture
should be described by explicit model variables and latency variables.
This example builds custom models — varying one latency variable at a
time around the *great* design point — and measures how sensitive
performance is to each, reproducing the paper's "non-uniform sensitivity"
conclusion on a small workload sample.

Run:  python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro import (
    GREAT_MODEL,
    ProcessorConfig,
    SpeculativeExecutionModel,
    kernel,
    run_baseline,
    run_trace,
)

BENCHMARKS = ("m88ksim", "gcc")
TRACE_LIMIT = 6_000


def main() -> None:
    config = ProcessorConfig(issue_width=8, window_size=48)
    traces = {
        name: kernel(name).trace(max_instructions=TRACE_LIMIT)
        for name in BENCHMARKS
    }
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }

    sweeps = {
        "Equality-Verification": "equality_to_verification",
        "Equality-Invalidation": "equality_to_invalidation",
        "Invalidation-Reissue": "invalidation_to_reissue",
        "Verification-Branch": "verification_to_branch",
    }
    print(f"latency sensitivity around the great model ({', '.join(BENCHMARKS)})")
    print(f"{'variable':24s} {'=0':>8s} {'=1':>8s} {'=2':>8s}")
    for label, field_name in sweeps.items():
        speedups = []
        for value in (0, 1, 2):
            latencies = replace(GREAT_MODEL.latencies, **{field_name: value})
            model = SpeculativeExecutionModel(
                f"great[{label}={value}]", GREAT_MODEL.variables, latencies
            )
            total_base = total_vp = 0
            for name, trace in traces.items():
                result = run_trace(
                    trace, config, model, confidence="real", update_timing="I"
                )
                total_base += base_cycles[name]
                total_vp += result.cycles
            speedups.append(total_base / total_vp)
        print(
            f"{label:24s} {speedups[0]:8.3f} {speedups[1]:8.3f} {speedups[2]:8.3f}"
        )
    print()
    print("expected shape: verification latency hurts most; with realistic")
    print("confidence (rare misspeculation) invalidation/reissue barely matter.")


if __name__ == "__main__":
    main()
