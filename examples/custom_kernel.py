"""Bring your own workload: write VSR assembly, trace it, simulate it.

Shows the full substrate: assemble a kernel, execute it functionally
(architectural results via ``print``), capture the dynamic trace, inspect
its characteristics, and measure how much the three paper models speed it
up.  The kernel has a deliberately value-predictable loop-carried chain
(a table value cycling with period 4) so value speculation has something
to exploit.

Run:  python examples/custom_kernel.py
"""

from repro import (
    GOOD_MODEL,
    GREAT_MODEL,
    SUPER_MODEL,
    ProcessorConfig,
    compute_stats,
    run_baseline,
    run_trace,
    trace_program,
)

SOURCE = """
.data
table:  .word 17, 42, 99, 7          # period-4 value stream
.text
main:
    li   s0, 0                        # i
    li   s1, 300                      # iterations
    li   s7, 0                        # checksum
loop:
    bge  s0, s1, done
    andi t0, s0, 3                    # i mod 4
    slli t0, t0, 3
    la   t1, table
    add  t1, t1, t0
    ld   t2, 0(t1)                    # predictable load
    mul  t3, t2, t2                   # 3-cycle op fed by the prediction
    add  s7, s7, t3
    inc  s0
    j    loop
done:
    print s7
    halt
"""


def main() -> None:
    program, trace = trace_program(SOURCE)
    stats = compute_stats(trace)
    print(f"kernel: {stats.total} dynamic instructions, "
          f"{stats.prediction_eligible_fraction:.0%} value-prediction eligible, "
          f"{stats.branch_fraction:.0%} branches")

    config = ProcessorConfig(issue_width=8, window_size=48)
    base = run_baseline(trace, config)
    print(f"base: {base.cycles} cycles (IPC {base.ipc:.2f})")
    for model in (SUPER_MODEL, GREAT_MODEL, GOOD_MODEL):
        result = run_trace(
            trace, config, model, confidence="real", update_timing="I"
        )
        print(
            f"{model.name:6s}: {result.cycles} cycles, "
            f"speedup {base.cycles / result.cycles:.3f}, "
            f"prediction accuracy {result.counters.prediction_accuracy:.0%}"
        )


if __name__ == "__main__":
    main()
