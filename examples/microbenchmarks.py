"""Isolated behaviours: what value speculation can and cannot break.

Runs the parameterized micro-kernels — each isolating one dependence
pattern — under the super model with oracle confidence (the upper bound)
and prints what prediction buys for each:

* ``reduction``        — a non-repeating accumulator chain: VP-immune,
* ``periodic_chain``   — a predictable producer feeding a chain: VP's
                         home turf,
* ``pointer_chase``    — constant pointers: serial loads parallelize,
* ``streaming``        — repeating load values: loads stop gating,
* ``fib``              — recursion with leaf-value locality.

Run:  python examples/microbenchmarks.py
"""

from repro import SUPER_MODEL, ProcessorConfig, run_baseline, run_trace, trace_program
from repro.programs import micro_kernel

WORKLOADS = {
    "reduction": dict(n=400),
    "periodic_chain": dict(iterations=150, chain_ops=4),
    "pointer_chase": dict(nodes=24, iterations=20),
    "streaming": dict(n=48, passes=5),
    "fib": dict(n=12),
}


def main() -> None:
    config = ProcessorConfig(issue_width=8, window_size=48)
    print(f"{'kernel':16s} {'instrs':>7s} {'base':>6s} {'VP':>6s} "
          f"{'speedup':>8s} {'pred.acc':>9s}")
    for name, params in WORKLOADS.items():
        __, trace = trace_program(micro_kernel(name, **params),
                                  max_instructions=25_000)
        base = run_baseline(trace, config)
        vp = run_trace(trace, config, SUPER_MODEL, confidence="oracle",
                       update_timing="I")
        print(
            f"{name:16s} {len(trace):7d} {base.cycles:6d} {vp.cycles:6d} "
            f"{base.cycles / vp.cycles:8.3f} "
            f"{vp.counters.prediction_accuracy:9.1%}"
        )
    print("\nreduction's chain never repeats, so no predictor can break it;")
    print("every other kernel has predictable values on its critical path.")


if __name__ == "__main__":
    main()
