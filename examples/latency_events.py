"""Measure the paper's eight latency events: good vs great.

Runs one micro kernel instrumented under the `good` and `great` models
and prints the per-event-kind latency histograms side by side.  The
two models configure different latency variables (docs/MODEL.md); the
histograms show what those settings *cost in a live run* — queueing
and resource pressure included.  The configured difference is directly
visible in the Equality - Verification / Invalidation rows (1 cycle
under `good`, 0 under `great`), while the Verification - Free
Issue/Retirement Resource distributions stretch far past their
configured 1 cycle under *both* models: speculatively-issued
instructions hold their window slot until verification reaches them in
dependence order, so release latency is dominated by chain depth, not
by the latency variable.

Run:  python examples/latency_events.py
"""

from repro.core.events import LatencyEventKind
from repro.obs import run_instrumented, summary_table
from repro.viz import render_timeline, samples_from_tracer

BENCHMARK = "micro:fib"
BUDGET = 12_000


def main() -> None:
    runs = {
        name: run_instrumented(BENCHMARK, model=name, max_instructions=BUDGET)
        for name in ("good", "great")
    }

    for name, run in runs.items():
        counters = run.result.counters
        print(
            f"{BENCHMARK} under {name}: {counters.cycles} cycles, "
            f"IPC {counters.ipc:.2f}, "
            f"{counters.misspeculations}/{counters.speculated} misspeculated"
        )
        print()
        print(summary_table(run.histograms, title=f"latency events — {name}"))
        print()

    # The configured contrast in one number: equality-to-verification
    # latency (1 cycle under good, 0 under great), next to the measured
    # release pressure that dwarfs it under both models.
    for kind in (LatencyEventKind.EQUALITY_VERIFICATION,
                 LatencyEventKind.VERIFICATION_FREE_ISSUE):
        for name, run in runs.items():
            hist = run.histograms.get(kind)
            if hist and hist.count:
                print(
                    f"{kind.paper_name} under {name}: "
                    f"mean {hist.mean:.2f}, p99 {hist.percentile(99)} cycles"
                )
    print()
    print(render_timeline(
        samples_from_tracer(runs["good"].tracer, interval=50),
        label=f"{BENCHMARK} under good (reconstructed from lifecycle marks):",
    ))


if __name__ == "__main__":
    main()
