"""Compare value predictors under the great model.

The paper uses a context-based (FCM) predictor; this example swaps in the
last-value, stride and hybrid predictors from :mod:`repro.vp` on two
benchmarks and compares accuracy and speedup — the kind of follow-on
question the paper's formalization is meant to make easy to ask.

Run:  python examples/predictor_comparison.py
"""

from repro import (
    ContextValuePredictor,
    GREAT_MODEL,
    HybridPredictor,
    LastValuePredictor,
    ProcessorConfig,
    StridePredictor,
    kernel,
    run_baseline,
    run_trace,
)

PREDICTORS = {
    "context (paper)": ContextValuePredictor,
    "last-value": LastValuePredictor,
    "stride": StridePredictor,
    "hybrid": HybridPredictor,
}
BENCHMARKS = ("ijpeg", "perl")


def main() -> None:
    config = ProcessorConfig(issue_width=8, window_size=48)
    for name in BENCHMARKS:
        trace = kernel(name).trace(max_instructions=8_000)
        base = run_baseline(trace, config)
        print(f"{name} (base {base.cycles} cycles):")
        for label, factory in PREDICTORS.items():
            result = run_trace(
                trace,
                config,
                GREAT_MODEL,
                confidence="real",
                update_timing="I",
                predictor=factory(),
            )
            print(
                f"  {label:16s} accuracy {result.counters.prediction_accuracy:6.1%}"
                f"  speedup {base.cycles / result.cycles:.3f}"
            )
        print()


if __name__ == "__main__":
    main()
