"""Which mechanisms earn their keep?  A small ablation, ranked.

Plans and runs the leave-one-out ablation over the registered
components (docs/ABLATION.md) on one micro kernel under the `good`
model, then prints the ranked importance table: for every component,
the harmonic-mean speedup the machine *loses* when that component is
lesioned — verification network downgraded to retirement-based,
selective invalidation replaced by complete squash, confidence gating
switched off, and so on.  A negative importance (HARMFUL flag) means
removing the mechanism helped on this workload; the two `engine-*`
rows execute identical jobs through a different engine strategy and
must land at exactly 0.0.

Run:  python examples/ablation_report.py
"""

from repro.ablation import (
    AblationPoint,
    AblationSpec,
    build_report,
    execute_plan,
    plan_ablation,
    render_text,
    verify_engine_identity,
)
from repro.core.model import GOOD_MODEL
from repro.engine.config import paper_config

BENCHMARK = "micro:fib"
BUDGET = 3_000


def main() -> None:
    spec = AblationSpec(
        benchmarks=(BENCHMARK,),
        point=AblationPoint(config=paper_config("8/48"), model=GOOD_MODEL),
        max_instructions=BUDGET,
    )
    plan = plan_ablation(spec)
    print(
        f"planned {len(plan.runs)} runs ({len(plan.lesioned)} lesions) "
        f"over {len(spec.benchmarks)} benchmark(s); "
        f"plan fingerprint {plan.fingerprint}"
    )
    executed = execute_plan(plan)
    mismatches = verify_engine_identity(executed)
    report = build_report(plan, executed, engine_mismatches=mismatches)
    print()
    print(render_text(report))

    # The single most important component, spelled out.
    ranked = report["components"]
    if ranked and ranked[0]["importance"] > 0:
        top = ranked[0]
        print()
        print(
            f"most important: {'+'.join(top['components'])} — lesioning it "
            f"costs {top['importance']:.4f} of the baseline's "
            f"{report['baseline']['speedup']:.4f} harmonic-mean speedup"
        )


if __name__ == "__main__":
    main()
