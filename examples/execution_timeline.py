"""Visualize execution behaviour over time: base vs the three models.

Samples IPC and instruction-window occupancy through a kernel run and
renders sparkline timelines — making visible *where* value speculation
wins (phases with predictable dependence chains) and where the good
model's verification latency throttles retirement.

Run:  python examples/execution_timeline.py
"""

from repro import GOOD_MODEL, GREAT_MODEL, SUPER_MODEL, ProcessorConfig, kernel
from repro.engine.pipeline import PipelineSimulator
from repro.viz import render_ipc_comparison, render_timeline
from repro.vp.update_timing import UpdateTiming


def main() -> None:
    spec = kernel("m88ksim")
    trace = spec.trace(max_instructions=12_000)
    config = ProcessorConfig(issue_width=8, window_size=48, sample_interval=50)

    runs = {}
    base = PipelineSimulator(trace, config)
    base.run()
    runs["base"] = base.samples
    for model in (SUPER_MODEL, GREAT_MODEL, GOOD_MODEL):
        sim = PipelineSimulator(
            trace, config, model, update_timing=UpdateTiming.IMMEDIATE
        )
        sim.run()
        runs[model.name] = sim.samples

    print(f"{spec.name}: IPC over time (50-cycle samples)\n")
    print(render_ipc_comparison(runs))
    print()
    print(render_timeline(runs["great"], label="great model, detail:"))


if __name__ == "__main__":
    main()
