"""Visualize value-speculation event timing, cycle by cycle.

Reproduces the paper's Figure 1 — the pipelined execution of a
three-instruction dependence chain under the base processor and the
super/great/good models with correct and incorrect predictions — and
prints the per-cycle event diagram (EX execute, W write, EQ equality,
V verify, X invalidate, C commit).

Run:  python examples/pipeline_visualization.py
"""

from repro.harness.figure1 import render_figure1, run_figure1


def main() -> None:
    scenarios = run_figure1()
    print(render_figure1(scenarios))
    base = next(s for s in scenarios if s.model_name == "base")
    print(f"the paper's reference point: the base processor takes "
          f"{base.cycles} cycles — and the more optimistic a model is, the "
          f"more events it packs into each cycle.")


if __name__ == "__main__":
    main()
