"""Load/store queue model.

The paper: "A load/store queue with size equal to the instruction window is
used.  Loads can receive a value from a preceding store in the queue in a
single cycle.  Loads are executed when all preceding store addresses in the
instruction window are known and hence no memory dependence violations can
occur."

Entries are keyed by the dynamic sequence number of the owning instruction
and kept in program order.  The timing engine marks addresses known when a
memory instruction's address generation executes (with valid operands —
the model variables forbid speculative addresses) and clears them again if
value misspeculation forces re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class LSQEntry:
    """One load or store tracked by the queue."""

    seq: int
    is_store: bool
    address: int | None = None
    size: int = 0
    data_ready: bool = False  # stores only: data operand available


class LoadStoreQueue:
    """Program-ordered queue of in-flight memory operations."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: Entries in program order (allocation enforces ascending seqs and
        #: dict insertion order preserves them; removals — oldest-first
        #: retirement or youngest-first squash — keep the order intact).
        self._entries: dict[int, LSQEntry] = {}
        self.forwards = 0
        #: Optional observability callback ``(seq, what)`` fired on
        #: address publication, address invalidation, and store-to-load
        #: forwards.  None (the default) costs one identity check per
        #: state change; the timing engine installs it when a tracer is
        #: attached.
        self.on_event = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, seq: int, is_store: bool) -> LSQEntry:
        """Add an entry at dispatch; raises when full or out of order."""
        if self.full:
            raise RuntimeError("LSQ full")
        if seq in self._entries:
            raise ValueError(f"duplicate LSQ seq {seq}")
        if self._entries and seq < next(reversed(self._entries)):
            raise ValueError("LSQ allocation must follow program order")
        entry = LSQEntry(seq=seq, is_store=is_store)
        self._entries[seq] = entry
        return entry

    def get(self, seq: int) -> LSQEntry | None:
        return self._entries.get(seq)

    def set_address(self, seq: int, address: int, size: int) -> None:
        """Record a generated address (store data readiness is separate)."""
        entry = self._entries[seq]
        entry.address = address
        entry.size = size
        if self.on_event is not None:
            self.on_event(seq, "addr-known")

    def set_store_data_ready(self, seq: int, ready: bool = True) -> None:
        entry = self._entries[seq]
        if not entry.is_store:
            raise ValueError(f"seq {seq} is not a store")
        entry.data_ready = ready

    def clear_address(self, seq: int) -> None:
        """Forget a previously generated address (invalidation/reissue)."""
        entry = self._entries[seq]
        entry.address = None
        entry.data_ready = False
        if self.on_event is not None:
            self.on_event(seq, "addr-cleared")

    def release(self, seq: int) -> None:
        """Remove an entry at retirement or squash."""
        self._entries.pop(seq, None)

    def squash_after(self, seq: int) -> list[int]:
        """Remove every entry younger than ``seq``; returns removed seqs."""
        removed = [s for s in self._entries if s > seq]
        for s in removed:
            del self._entries[s]
        return removed

    def prior_store_addresses_known(self, seq: int) -> bool:
        """True when every older store has a generated address.

        This is the paper's load-issue condition: with all prior store
        addresses known, the load cannot violate a memory dependence.
        """
        for other_seq, entry in self._entries.items():
            if other_seq >= seq:
                break
            if entry.is_store and entry.address is None:
                return False
        return True

    def find_forwarder(self, seq: int, address: int, size: int) -> LSQEntry | None:
        """Youngest older store that fully covers [address, address+size).

        Only exact containment forwards; partial overlap forces the load to
        wait for the store to retire (handled by the caller treating a
        partial overlap as "no forwarder" — the addresses-known condition
        already rules out unknown conflicts).
        """
        best: LSQEntry | None = None
        for other_seq, entry in self._entries.items():
            if other_seq >= seq:
                break
            if not entry.is_store or entry.address is None:
                continue
            if entry.address <= address and address + size <= entry.address + entry.size:
                best = entry
        if best is not None and best.data_ready:
            self.forwards += 1
            if self.on_event is not None:
                self.on_event(seq, f"forwarded-from-{best.seq}")
            return best
        return None

    def overlapping_older_store(self, seq: int, address: int, size: int) -> LSQEntry | None:
        """Oldest older store that overlaps but does not fully cover the load."""
        for other_seq, entry in self._entries.items():
            if other_seq >= seq:
                break
            if not entry.is_store or entry.address is None:
                continue
            overlap = not (
                entry.address + entry.size <= address
                or address + size <= entry.address
            )
            covers = (
                entry.address <= address
                and address + size <= entry.address + entry.size
            )
            if overlap and not covers:
                return entry
        return None
