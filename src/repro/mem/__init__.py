"""Memory-system models: set-associative caches, access ports, and the
load/store queue.

Paper configuration (Section 5.1): L1I 64KB/32B blocks/4-way/1-cycle hit;
L1D same geometry but 2-cycle hit and as many ports as half the issue
width; unified L2 1MB/64B/4-way with 12-cycle hit and 36-cycle miss; a
load/store queue as large as the instruction window with single-cycle
store-to-load forwarding.
"""

from repro.mem.cache import Cache, CacheStats
from repro.mem.hierarchy import MemoryHierarchy, make_paper_hierarchy
from repro.mem.ports import PortPool
from repro.mem.lsq import LoadStoreQueue, LSQEntry

__all__ = [
    "Cache",
    "CacheStats",
    "MemoryHierarchy",
    "make_paper_hierarchy",
    "PortPool",
    "LoadStoreQueue",
    "LSQEntry",
]
