"""Assembled cache hierarchy matching the paper's Section 5.1 parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.cache import Cache


@dataclass
class MemoryHierarchy:
    """L1I and L1D sharing a unified L2."""

    l1i: Cache
    l1d: Cache
    l2: Cache

    def instruction_fetch(self, address: int) -> int:
        """Latency for fetching the instruction block at ``address``."""
        return self.l1i.access(address)

    def data_access(self, address: int, is_write: bool) -> int:
        """Latency for a data access to ``address``."""
        return self.l1d.access(address, is_write)

    def flush(self) -> None:
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()


class PerfectCache(Cache):
    """A cache that always hits at its hit latency (limit-study runs)."""

    def access(self, address: int, is_write: bool = False) -> int:
        self.stats.accesses += 1
        self.stats.hits += 1
        return self.hit_latency


def make_paper_hierarchy(perfect: bool = False) -> MemoryHierarchy:
    """Build the hierarchy from the paper.

    * L1I: 64KB, 32B blocks, 4-way, 1-cycle hit.
    * L1D: 64KB, 32B blocks, 4-way, 2-cycle hit.
    * L2: unified, 1MB, 64B blocks, 4-way, 12-cycle hit; an L2 miss costs
      36 cycles total from the L2's perspective (12-cycle lookup + 24 to
      memory), matching "12 cycle hit and 36 cycle miss time".

    ``perfect=True`` swaps in always-hitting caches with the same hit
    latencies (for idealized limit-style runs).
    """
    if perfect:
        l2p = PerfectCache("L2", 1 << 20, 64, 4, hit_latency=12)
        return MemoryHierarchy(
            l1i=PerfectCache("L1I", 64 << 10, 32, 4, hit_latency=1),
            l1d=PerfectCache("L1D", 64 << 10, 32, 4, hit_latency=2),
            l2=l2p,
        )
    l2 = Cache(
        "L2",
        size_bytes=1 << 20,
        block_bytes=64,
        assoc=4,
        hit_latency=12,
        miss_latency=24,
    )
    l1i = Cache(
        "L1I",
        size_bytes=64 << 10,
        block_bytes=32,
        assoc=4,
        hit_latency=1,
        next_level=l2,
    )
    l1d = Cache(
        "L1D",
        size_bytes=64 << 10,
        block_bytes=32,
        assoc=4,
        hit_latency=2,
        next_level=l2,
    )
    return MemoryHierarchy(l1i=l1i, l1d=l1d, l2=l2)
