"""Set-associative cache timing model with true-LRU replacement.

The model tracks tags only (latency simulation does not need data) and
reports the total latency of each access, recursing into the next level on
a miss.  The innermost level's ``miss_latency`` stands in for main memory.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0


class Cache:
    """One level of a cache hierarchy.

    Parameters
    ----------
    size_bytes / block_bytes / assoc:
        Geometry.  ``size_bytes`` must be an exact multiple of
        ``block_bytes * assoc``.
    hit_latency:
        Cycles for a hit in this level.
    miss_latency:
        Cycles added by a miss when there is no ``next_level`` (i.e. the
        cost of going to memory from this level).
    next_level:
        Optional backing cache; on a miss the access recurses and the
        backing level's latency is added.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        block_bytes: int,
        assoc: int,
        hit_latency: int,
        miss_latency: int = 0,
        next_level: "Cache | None" = None,
    ):
        if block_bytes <= 0 or (block_bytes & (block_bytes - 1)):
            raise ValueError("block_bytes must be a positive power of two")
        if assoc <= 0:
            raise ValueError("assoc must be positive")
        if size_bytes % (block_bytes * assoc):
            raise ValueError("size must be a multiple of block_bytes * assoc")
        if hit_latency < 0 or miss_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.name = name
        self.size_bytes = size_bytes
        self.block_bytes = block_bytes
        self.assoc = assoc
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.next_level = next_level
        self.num_sets = size_bytes // (block_bytes * assoc)
        self._block_shift = block_bytes.bit_length() - 1
        # Per-set list of tags in LRU order (index 0 = most recent), keyed
        # by set index and materialized on first touch: short runs visit a
        # tiny fraction of a 4K-set cache, and hierarchies are rebuilt per
        # simulation run, so eagerly allocating every set costs more than
        # the simulation's accesses to it.
        self._sets: dict[int, list[int]] = {}
        self.stats = CacheStats()

    def _set_tag(self, address: int) -> tuple[list[int], int]:
        block = address >> self._block_shift
        index = block % self.num_sets
        tags = self._sets.get(index)
        if tags is None:
            tags = self._sets[index] = []
        return tags, block // self.num_sets

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        tags, tag = self._set_tag(address)
        return tag in tags

    def access(self, address: int, is_write: bool = False) -> int:
        """Access the block containing ``address``; returns total latency.

        Write misses allocate (write-allocate policy) and writes are
        modeled as write-back (a dirty eviction counts a writeback but
        adds no latency: writeback buffers are assumed).
        """
        stats = self.stats
        stats.accesses += 1
        # _set_tag inlined: access() dominates simulation time and the
        # helper call was pure overhead on every memory reference.
        block = address >> self._block_shift
        index = block % self.num_sets
        tags = self._sets.get(index)
        if tags is None:
            tags = self._sets[index] = []
        tag = block // self.num_sets
        if tag in tags:
            stats.hits += 1
            if tags[0] != tag:  # moving the MRU block is a no-op
                tags.remove(tag)
                tags.insert(0, tag)
            return self.hit_latency
        stats.misses += 1
        if len(tags) >= self.assoc:
            tags.pop()
            if is_write:
                stats.writebacks += 1
        tags.insert(0, tag)
        if self.next_level is not None:
            return self.hit_latency + self.next_level.access(address, is_write)
        return self.hit_latency + self.miss_latency

    def flush(self) -> None:
        """Invalidate all blocks (statistics are preserved)."""
        self._sets.clear()
