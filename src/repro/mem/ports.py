"""Per-cycle structural port arbitration.

The paper's only resource constraint besides the window is the limited
number of data-cache ports ("as many ports as half the issue width").
"""

from __future__ import annotations


class PortPool:
    """Counts port grants per cycle; grants fail once the pool is drained."""

    def __init__(self, ports: int):
        if ports <= 0:
            raise ValueError("ports must be positive")
        self.ports = ports
        self._cycle = -1
        self._used = 0
        self.grants = 0
        self.conflicts = 0

    def try_acquire(self, cycle: int) -> bool:
        """Reserve one port for ``cycle``; False when all are in use."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = 0
        if self._used < self.ports:
            self._used += 1
            self.grants += 1
            return True
        self.conflicts += 1
        return False

    def available(self, cycle: int) -> int:
        """Ports still free in ``cycle``."""
        if cycle != self._cycle:
            return self.ports
        return self.ports - self._used
