"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list                      list reproducible experiments
run <id> [options]        run one experiment and print its table/figure
describe <model>          print a speculative-execution model's two tables
bench <name> [options]    simulate one benchmark kernel and print counters
obs trace|histo|export    instrumented runs: timelines, latency histograms
ablate [options]          leave-one-out ablation, ranked importance report
cache info|clear|warm     manage the persistent on-disk trace cache
cluster serve|work|submit|status   the fault-tolerant sweep service
serve [options]           run the always-on HTTP simulation service
submit <id> --connect     run an experiment through a running service
table1 / figure1 / figure3 / figure4   shorthands for ``run <id>``

Any grid-running command accepts ``--backend cluster`` (or
``REPRO_SWEEP_BACKEND=cluster``) to route its simulation grid through
the fault-tolerant cluster sweep service — see docs/CLUSTER.md — or
``--backend service`` (with ``REPRO_SERVICE_ADDR=HOST:PORT``) to run
it through the always-on HTTP service and its persistent result store
— see docs/SERVICE.md.

``obs`` accepts suite kernel names and micro kernels via the
``micro:<name>`` form (e.g. ``micro:fib``).

Trace acquisition (``bench``, ``analyze`` and every experiment sweep)
goes through the content-addressed trace cache (``repro.trace.cache``,
``REPRO_TRACE_CACHE`` to relocate or disable): a warm cache replays
captured kernel traces from disk instead of re-running the functional
simulator.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.model import named_models
from repro.engine.config import paper_config
from repro.engine.sim import run_baseline, run_trace
from repro.harness.experiments import EXPERIMENTS
from repro.metrics.summary import summarize_counters
from repro.programs.suite import kernel, kernel_names


def _experiment_kwargs(args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if getattr(args, "max_instructions", None) is not None:
        kwargs["max_instructions"] = args.max_instructions
    if getattr(args, "benchmarks", None):
        kwargs["benchmarks"] = args.benchmarks
    if getattr(args, "jobs", None) is not None:
        kwargs["jobs"] = args.jobs
    if getattr(args, "backend", None) is not None:
        kwargs["backend"] = args.backend
    if getattr(args, "batch", None) is not None:
        # Exported as the env default rather than a kwarg so every
        # experiment — including sweeps whose wrappers predate the
        # batching planner — honors it through run_jobs' resolution.
        import os

        from repro.harness.parallel import BATCH_ENV_VAR

        os.environ[BATCH_ENV_VAR] = str(args.batch)
    if getattr(args, "specialize", True) is False:
        # Same env-export pattern as --batch: pool and cluster workers
        # inherit the setting, and run_baseline/run_trace read it at
        # every call, so the whole grid runs the generic engine.
        import os

        from repro.engine.specialize import SPECIALIZE_ENV_VAR

        os.environ[SPECIALIZE_ENV_VAR] = "0"
    return kwargs


def _cmd_list(args: argparse.Namespace) -> int:
    for experiment in EXPERIMENTS.values():
        print(f"{experiment.id:14s} {experiment.paper_ref:22s} {experiment.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    experiment = EXPERIMENTS.get(args.id)
    if experiment is None:
        print(f"unknown experiment {args.id!r}; try `repro list`", file=sys.stderr)
        return 2
    kwargs = _experiment_kwargs(args)
    if experiment.id in ("figure1",):
        kwargs = {}  # figure1 takes no workload knobs
    print(experiment.run(**kwargs))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    models = named_models()
    model = models.get(args.model)
    if model is None:
        print(
            f"unknown model {args.model!r}; know {sorted(models)}",
            file=sys.stderr,
        )
        return 2
    print(model.describe())
    return 0


def _sampled_bench(args, spec, trace, config) -> int:
    """``bench --sample-phases N``: phase-sampled *estimate* mode."""
    from repro.sampling import run_sampled
    from repro.trace.columnar import ChunkedTrace

    chunk_size = (
        trace.chunk_size
        if isinstance(trace, ChunkedTrace)
        else max(len(trace) // 16, 1)
    )
    model = None if args.model == "none" else named_models()[args.model]
    result = run_sampled(
        trace,
        config,
        model,
        phases=args.sample_phases,
        chunk_size=chunk_size,
        confidence=args.confidence,
        update_timing=args.timing,
    )
    mode = "base" if model is None else model.name
    print(f"{spec.name} @ {config.label} ({mode}) — {result.label}")
    print(f"  CPI (estimate)          {result.cpi:12.4f}")
    print(f"  CPI spread (error bar)  {result.cpi_spread:12.4f}")
    print(f"  cycles (estimate)       {result.cycles_estimate:12d}")
    print(f"  records simulated       {result.simulated_records:12d}")
    print(f"  records total           {result.total_records:12d}")
    for phase in result.phases:
        alt = (
            f"  alt CPI {phase.alternate_cpi:.4f}"
            if phase.alternate_cpi is not None
            else ""
        )
        print(
            f"    phase {phase.phase}: weight {phase.weight:6.1%}  "
            f"CPI {phase.cpi:8.4f}  rep chunk {phase.representative}  "
            f"warmup {phase.warmup}{alt}"
        )
    print(
        "  note: sampled results are estimates; rerun without "
        "--sample-phases for exact counters"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.sampling import sample_phases_from_env
    from repro.trace.cache import cached_trace

    spec = kernel(args.name)
    trace = cached_trace(args.name, args.max_instructions)
    config = paper_config(args.config)
    if args.sample_phases is None:
        args.sample_phases = sample_phases_from_env()
    if args.sample_phases:
        return _sampled_bench(args, spec, trace, config)
    base = run_baseline(trace, config)
    print(summarize_counters(base.counters, f"{spec.name} @ {config.label} (base)"))
    if args.model != "none":
        model = named_models()[args.model]
        result = run_trace(
            trace,
            config,
            model,
            confidence=args.confidence,
            update_timing=args.timing,
        )
        label = (
            f"{spec.name} @ {config.label} "
            f"({model.name}, {result.setting_label})"
        )
        print()
        print(summarize_counters(result.counters, label))
        print(f"\n  speedup over base       {base.cycles / result.cycles:12.3f}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.harness.export import EXPORTS, export_csv

    if args.id == "--list" or args.id == "list":
        for key in sorted(EXPORTS):
            print(key)
        return 0
    try:
        text = export_csv(args.id, args.out, **_experiment_kwargs(args))
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    if args.out is None:
        print(text, end="")
    else:
        print(f"wrote {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import render_workload_report
    from repro.trace.cache import cached_trace

    spec = kernel(args.name)
    trace = cached_trace(args.name, args.max_instructions)
    print(render_workload_report(trace, f"{spec.name} ({spec.input_label})"))
    return 0


def _run_obs(args: argparse.Namespace):
    from repro.obs import run_instrumented

    model = None if args.model == "none" else args.model
    return run_instrumented(
        args.name,
        config=args.config,
        model=model,
        max_instructions=args.max_instructions,
        confidence=args.confidence,
        update_timing=args.timing,
    )


def _obs_out_path(args: argparse.Namespace, suffix: str) -> str:
    if args.out:
        return args.out
    safe = args.name.replace(":", "_").replace("/", "_")
    return f"{safe}_{args.model}{suffix}"


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import (
        aggregate_by_opcode,
        metrics_csv,
        metrics_dict,
        summary_table,
    )
    from repro.obs.export import write_chrome_trace

    try:
        run = _run_obs(args)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    label = (
        f"{run.benchmark} @ {run.result.config.label} "
        f"({run.model_name or 'base'}) — "
        f"{run.result.cycles} cycles, ipc {run.result.ipc:.3f}"
        f" [engine: {run.engine_path}]"
    )

    if args.action == "trace":
        path = _obs_out_path(args, "_trace.json")
        doc = write_chrome_trace(run.tracer, path, label=run.benchmark)
        print(label)
        print(
            f"wrote {path}: {len(doc['traceEvents'])} events "
            "(load in Perfetto / chrome://tracing)"
        )
        dropped = run.tracer.marks.dropped + run.tracer.latencies.dropped
        if dropped:
            print(f"  note: ring buffers dropped {dropped} oldest events")
        return 0

    if args.action == "histo":
        print(summary_table(run.histograms, title=label))
        if args.by_opcode:
            print()
            for kind, per_op in sorted(
                aggregate_by_opcode(run.tracer).items(),
                key=lambda item: item[0].value,
            ):
                print(f"{kind.paper_name}:")
                for op, hist in sorted(per_op.items()):
                    print(
                        f"  {op:10s} count={hist.count:6d} "
                        f"mean={hist.mean:8.2f} max={hist.max}"
                    )
        return 0

    # export
    if args.format == "csv":
        text = metrics_csv(run.histograms)
    else:
        import json as _json

        text = _json.dumps(metrics_dict(run.histograms, label=label), indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import protocol
    from repro.cluster.client import ADDR_ENV_VAR, ClusterClient

    if args.action == "serve":
        import signal as _signal
        from pathlib import Path

        from repro.cluster.scheduler import ClusterScheduler, SchedulerConfig

        host, port = protocol.parse_address(args.bind)
        config = SchedulerConfig(
            host=host,
            port=port,
            journal_path=Path(args.journal) if args.journal else None,
            heartbeat_timeout=args.heartbeat_timeout,
            lease_timeout=args.lease_timeout,
            max_attempts=args.max_attempts,
        )
        scheduler = ClusterScheduler(config)
        bound = scheduler.start()
        journal = args.journal or "(none — sweeps will not survive restarts)"
        print(f"scheduler listening on {bound[0]}:{bound[1]}")
        print(f"journal: {journal}")
        print(f"workers connect with: repro cluster work --connect "
              f"{bound[0]}:{bound[1]}")
        try:
            _signal.pause()
        except (KeyboardInterrupt, AttributeError):
            # AttributeError: no signal.pause on some platforms; fall
            # back to a sleep loop interrupted the same way.
            try:
                import time as _time

                while True:
                    _time.sleep(3600)
            except KeyboardInterrupt:
                pass
        finally:
            scheduler.stop()
        return 0

    if args.action == "work":
        from repro.cluster.worker import ClusterWorker

        worker = ClusterWorker(
            protocol.parse_address(args.connect),
            strict=True if args.strict else None,
            reconnect_deadline=args.reconnect_deadline,
        )
        return worker.run()

    if args.action == "submit":
        import os as _os

        experiment = EXPERIMENTS.get(args.id)
        if experiment is None:
            print(
                f"unknown experiment {args.id!r}; try `repro list`",
                file=sys.stderr,
            )
            return 2
        if args.connect:
            _os.environ[ADDR_ENV_VAR] = args.connect
        kwargs = _experiment_kwargs(args)
        kwargs["backend"] = "cluster"
        print(experiment.run(**kwargs))
        return 0

    # status
    import json as _json
    import os as _os

    address = args.connect or _os.environ.get(ADDR_ENV_VAR, "")
    if not address:
        print(
            f"no scheduler address (--connect or {ADDR_ENV_VAR})",
            file=sys.stderr,
        )
        return 2
    client = ClusterClient(protocol.parse_address(address))
    try:
        status = client.status()
    except OSError as error:
        print(f"scheduler unreachable at {address}: {error}", file=sys.stderr)
        return 1
    if getattr(args, "json", False):
        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0
    _print_status_text(status, f"scheduler at {address}")
    return 0


def _print_status_text(status: dict, title: str) -> None:
    """Human rendering of a status document (cluster scheduler and
    simulation service share the ``jobs`` count schema)."""
    print(title)
    jobs = status.get("jobs") or {}
    print(
        "  jobs     "
        + "  ".join(f"{k}={jobs.get(k, 0)}" for k in
                    ("pending", "leased", "done", "failed"))
    )
    workers = status.get("workers")
    if isinstance(workers, dict):
        print(f"  workers  {len(workers)}")
    sweeps = status.get("sweeps")
    if isinstance(sweeps, dict):
        print(f"  sweeps   {len(sweeps)}")
    queue = status.get("queue")
    if isinstance(queue, dict):
        print(f"  queue    {queue.get('depth', 0)}/{queue.get('max', '?')}")
    clients = status.get("clients")
    if isinstance(clients, dict) and clients:
        print(f"  clients  {len(clients)}")
        for name, lane in sorted(clients.items()):
            print(
                f"    {name}: queued={lane.get('queued', 0)} "
                f"weight={lane.get('weight', 1.0)} "
                f"dispatched={lane.get('dispatched', 0)}"
            )
    store = status.get("store")
    if isinstance(store, dict):
        if store.get("enabled"):
            print(
                f"  store    {store.get('entries', 0)} entries, "
                f"{store.get('bytes', 0)} bytes at {store.get('dir')}"
            )
        else:
            print("  store    disabled")
    stats = status.get("stats")
    if isinstance(stats, dict):
        print(
            "  stats    "
            + "  ".join(
                f"{k}={stats.get(k, 0)}"
                for k in ("submitted", "executed", "warm_hits", "joined",
                          "rejected")
            )
        )
    journal = status.get("journal")
    if isinstance(journal, dict):
        print(f"  journal  {journal.get('path')}")


def _cmd_serve(args: argparse.Namespace) -> int:
    """The always-on simulation service (``repro serve``)."""
    import signal as _signal

    from repro.cluster import protocol
    from repro.service.server import AUTO_STORE, ServiceConfig, SimulationService

    store: object = AUTO_STORE
    if args.store is not None:
        lowered = args.store.strip().lower()
        store = None if lowered in ("off", "none", "0", "") else args.store
    host, port = protocol.parse_address(args.bind)
    config = ServiceConfig(
        host=host,
        port=port,
        store=store,
        backend=args.backend,
        jobs=args.jobs if args.jobs is not None else 1,
        batch=args.batch,
        max_queue=args.max_queue,
        store_max_entries=args.store_max_entries,
    )
    service = SimulationService(config)
    bound = service.start()
    print(f"simulation service listening on http://{bound[0]}:{bound[1]}/v1/")
    print(
        "result store: "
        + (str(service.store_dir) if service.store_dir else
           "(disabled — results held in memory only)")
    )
    print(f"backend: {config.backend} (jobs={config.jobs})")
    print(f"submit with: repro submit <id> --connect {bound[0]}:{bound[1]}")
    try:
        _signal.pause()
    except (KeyboardInterrupt, AttributeError):
        try:
            import time as _time

            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            pass
    finally:
        service.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Run an experiment's grid through a running simulation service
    (``repro submit <id> --connect HOST:PORT``)."""
    import os as _os

    from repro.service.client import ENV_ADDR

    experiment = EXPERIMENTS.get(args.id)
    if experiment is None:
        print(f"unknown experiment {args.id!r}; try `repro list`", file=sys.stderr)
        return 2
    if args.connect:
        _os.environ[ENV_ADDR] = args.connect
    if not _os.environ.get(ENV_ADDR):
        print(
            f"no service address (--connect or {ENV_ADDR})",
            file=sys.stderr,
        )
        return 2
    kwargs = _experiment_kwargs(args)
    kwargs["backend"] = "service"
    print(experiment.run(**kwargs))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.trace import cache as trace_cache

    if args.action == "info":
        info = trace_cache.cache_info()
        state = "enabled" if info["enabled"] else "disabled"
        print(f"trace cache: {state}")
        if info["enabled"]:
            print(f"  dir      {info['dir']}")
            print(
                f"  entries  {info['entries']} "
                f"({info['v3_entries']} v3, {info['v4_entries']} chunked v4)"
            )
            print(f"  bytes    {info['bytes']}")
            for name in info["files"]:
                geometry = info["chunked"].get(name)
                if geometry is None:
                    print(f"    {name}")
                elif "error" in geometry:
                    print(f"    {name}  [unreadable v4 entry]")
                else:
                    sizes = geometry["chunk_bytes"]
                    print(
                        f"    {name}  {geometry['records']} records in "
                        f"{geometry['chunks']} chunks of "
                        f"{geometry['chunk_size']} "
                        f"(payload {min(sizes)}-{max(sizes)} bytes/chunk)"
                    )
        return 0
    if args.action == "clear":
        removed = trace_cache.clear_cache()
        print(f"removed {removed} cached trace(s)")
        return 0
    # warm
    if not trace_cache.cache_enabled():
        print(
            f"trace cache is disabled ({trace_cache.ENV_VAR}); "
            "nothing to warm",
            file=sys.stderr,
        )
        return 2
    names = args.benchmarks or kernel_names()
    limit = args.max_instructions
    if getattr(args, "limit", None) is not None:
        limit = args.limit
    lengths = trace_cache.warm_cache(names, limit)
    for name, length in lengths.items():
        print(f"{name:10s} {length:8d} instructions cached")
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    """``repro ablate``: run a leave-one-out ablation and print the
    ranked per-component importance report."""
    from repro.ablation import (
        AblationPoint,
        AblationSpec,
        build_report,
        execute_plan,
        plan_ablation,
        render_csv,
        render_text,
        validate_report,
        verify_engine_identity,
        write_report,
    )

    model = named_models()[args.model]
    point = AblationPoint(
        config=paper_config(args.config),
        model=model,
        update_timing=args.update_timing,
    )
    spec = AblationSpec(
        benchmarks=tuple(args.benchmarks),
        point=point,
        max_instructions=args.max_instructions,
    )
    plan = plan_ablation(spec, pairs=args.pairs, limit=args.limit)
    executed = execute_plan(
        plan,
        jobs=args.jobs if args.jobs is not None else 1,
        backend=args.backend,
        batch=args.batch,
    )
    mismatches = verify_engine_identity(executed)
    report = build_report(plan, executed, engine_mismatches=mismatches)
    validate_report(report)
    print(render_text(report))
    if args.json:
        path = write_report(report, args.json)
        print(f"json report written to {path}")
    if args.csv:
        from pathlib import Path

        path = Path(args.csv)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_csv(report) + "\n")
        print(f"csv report written to {path}")
    return 1 if mismatches else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Modeling Value Speculation' (HPCA 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("id", help="experiment id (see `repro list`)")
    run_parser.add_argument(
        "--max-instructions",
        type=int,
        default=None,
        help="truncate each kernel trace (default: experiment-specific)",
    )
    run_parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        metavar="NAME",
        help=f"restrict to a subset of {kernel_names()}",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the simulation grid (0 = all cores)",
    )
    run_parser.add_argument(
        "--backend",
        choices=("local", "cluster", "service"),
        default=None,
        help="grid execution backend (default: REPRO_SWEEP_BACKEND or local)",
    )
    run_parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run up to N compatible same-trace grid points per batched-"
            "engine unit (0 = unbounded; default: REPRO_SWEEP_BATCH or 1)"
        ),
    )
    run_parser.add_argument(
        "--no-specialize",
        dest="specialize",
        action="store_false",
        default=True,
        help=(
            "force the generic engine (default: config-specialized "
            "codegen, or REPRO_ENGINE_SPECIALIZE=0 to disable)"
        ),
    )
    run_parser.set_defaults(func=_cmd_run)

    for shorthand in ("table1", "figure1", "figure3", "figure4"):
        p = sub.add_parser(shorthand, help=f"shorthand for `run {shorthand}`")
        p.add_argument("--max-instructions", type=int, default=None)
        p.add_argument("--benchmarks", nargs="*", default=None)
        p.add_argument("--jobs", type=int, default=None, metavar="N")
        p.add_argument(
            "--backend", choices=("local", "cluster", "service"), default=None
        )
        p.add_argument("--batch", type=int, default=None, metavar="N")
        p.add_argument(
            "--no-specialize",
            dest="specialize",
            action="store_false",
            default=True,
        )
        p.set_defaults(func=_cmd_run, id=shorthand)

    describe_parser = sub.add_parser(
        "describe", help="print a model's variable/latency tables"
    )
    describe_parser.add_argument("model", help="super | great | good")
    describe_parser.set_defaults(func=_cmd_describe)

    export_parser = sub.add_parser(
        "export", help="export an experiment's data as CSV"
    )
    export_parser.add_argument("id", help="dataset id, or `list` to enumerate")
    export_parser.add_argument("--out", default=None, help="write to a file")
    export_parser.add_argument("--max-instructions", type=int, default=None)
    export_parser.add_argument("--benchmarks", nargs="*", default=None)
    export_parser.set_defaults(func=_cmd_export)

    analyze_parser = sub.add_parser(
        "analyze", help="characterize a kernel's values and dependences"
    )
    analyze_parser.add_argument("name", choices=kernel_names())
    analyze_parser.add_argument("--max-instructions", type=int, default=20000)
    analyze_parser.set_defaults(func=_cmd_analyze)

    cache_parser = sub.add_parser(
        "cache", help="manage the persistent on-disk trace cache"
    )
    cache_parser.add_argument(
        "action",
        choices=("info", "clear", "warm"),
        help="info: show location/contents; clear: delete entries; "
        "warm: pre-capture benchmark traces",
    )
    cache_parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        metavar="NAME",
        help="benchmarks to warm (default: the full suite)",
    )
    cache_parser.add_argument(
        "--max-instructions",
        type=int,
        default=None,
        help="trace limit for warmed entries (default: full traces)",
    )
    cache_parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="alias for --max-instructions: `cache warm --limit N` "
        "streams an N-instruction capture to disk without ever "
        "materializing the trace in memory",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    cluster_parser = sub.add_parser(
        "cluster",
        help="fault-tolerant sweep service (see docs/CLUSTER.md)",
    )
    cluster_sub = cluster_parser.add_subparsers(dest="action", required=True)

    serve_parser = cluster_sub.add_parser(
        "serve", help="run a sweep scheduler (Ctrl+C to stop)"
    )
    serve_parser.add_argument(
        "--bind", default="127.0.0.1:7787", metavar="HOST:PORT",
        help="listen address (port 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append-only sweep journal; lets resubmitted sweeps replay "
        "completed points across scheduler restarts",
    )
    serve_parser.add_argument(
        "--heartbeat-timeout", type=float, default=8.0, metavar="SECONDS",
        help="presume a silent worker dead after this long",
    )
    serve_parser.add_argument(
        "--lease-timeout", type=float, default=600.0, metavar="SECONDS",
        help="requeue a leased job not reported back within this long",
    )
    serve_parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="per-job attempt budget before the sweep is failed",
    )
    serve_parser.set_defaults(func=_cmd_cluster)

    work_parser = cluster_sub.add_parser(
        "work", help="run one worker process against a scheduler"
    )
    work_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="scheduler address",
    )
    work_parser.add_argument(
        "--reconnect-deadline", type=float, default=30.0, metavar="SECONDS",
        help="keep retrying an unreachable scheduler this long",
    )
    work_parser.add_argument(
        "--strict", action="store_true",
        help="fail jobs on cold traces instead of capturing",
    )
    work_parser.set_defaults(func=_cmd_cluster)

    submit_parser = cluster_sub.add_parser(
        "submit", help="run an experiment's grid on the cluster backend"
    )
    submit_parser.add_argument("id", help="experiment id (see `repro list`)")
    submit_parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="scheduler address (default: REPRO_CLUSTER_ADDR, else an "
        "ephemeral local cluster)",
    )
    submit_parser.add_argument("--max-instructions", type=int, default=None)
    submit_parser.add_argument("--benchmarks", nargs="*", default=None)
    submit_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for an ephemeral local cluster",
    )
    submit_parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="batched-engine group size (0 = unbounded; default: "
        "REPRO_SWEEP_BATCH or 1)",
    )
    submit_parser.set_defaults(func=_cmd_cluster)

    status_parser = cluster_sub.add_parser(
        "status", help="print a scheduler's workers/jobs/sweeps"
    )
    status_parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="scheduler address (default: REPRO_CLUSTER_ADDR)",
    )
    status_parser.add_argument(
        "--json", action="store_true",
        help="emit the raw status document as JSON (the same schema the "
        "service's /v1/status endpoint uses for its jobs block)",
    )
    status_parser.set_defaults(func=_cmd_cluster)

    service_parser = sub.add_parser(
        "serve",
        help="run the always-on HTTP simulation service "
        "(see docs/SERVICE.md; Ctrl+C to stop)",
    )
    service_parser.add_argument(
        "--bind", default="127.0.0.1:7788", metavar="HOST:PORT",
        help="listen address (port 0 picks a free port; bracket IPv6 "
        "literals, e.g. [::1]:7788)",
    )
    service_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory, or `off` to disable (default: "
        "REPRO_RESULT_STORE, else $XDG_CACHE_HOME/repro/results)",
    )
    service_parser.add_argument(
        "--store-max-entries", type=int, default=None, metavar="N",
        help="evict oldest store entries beyond this count after each "
        "dispatch cycle (default: unbounded)",
    )
    service_parser.add_argument(
        "--backend", choices=("serial", "pool", "cluster"), default="serial",
        help="how admitted jobs execute (default: serial)",
    )
    service_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="process-pool width for --backend pool",
    )
    service_parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="batched-engine group size (0 = unbounded; default: "
        "REPRO_SWEEP_BATCH or 1)",
    )
    service_parser.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="admission bound: queued jobs beyond this draw 429 "
        "(default: 256)",
    )
    service_parser.set_defaults(func=_cmd_serve)

    svc_submit = sub.add_parser(
        "submit",
        help="run an experiment's grid through a running simulation service",
    )
    svc_submit.add_argument("id", help="experiment id (see `repro list`)")
    svc_submit.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="service address (default: REPRO_SERVICE_ADDR)",
    )
    svc_submit.add_argument("--max-instructions", type=int, default=None)
    svc_submit.add_argument("--benchmarks", nargs="*", default=None)
    svc_submit.set_defaults(func=_cmd_submit)

    obs_parser = sub.add_parser(
        "obs", help="instrumented runs: lifecycle timelines, latency histograms"
    )
    obs_sub = obs_parser.add_subparsers(dest="action", required=True)

    def _obs_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "name",
            help="suite kernel or micro:<name> (e.g. compress, micro:fib)",
        )
        p.add_argument("--config", default="8/48", help="4/24 | 8/48 | 16/96")
        p.add_argument(
            "--model", default="good", help="super|great|good|none (none = base)"
        )
        p.add_argument("--confidence", default="real", help="real | oracle")
        p.add_argument("--timing", default="D", help="I | D")
        p.add_argument("--max-instructions", type=int, default=20000)
        p.set_defaults(func=_cmd_obs)

    obs_trace = obs_sub.add_parser(
        "trace", help="export a Chrome trace-event JSON timeline"
    )
    _obs_common(obs_trace)
    obs_trace.add_argument("--out", default=None, help="output path")

    obs_histo = obs_sub.add_parser(
        "histo", help="print the latency-event summary table"
    )
    _obs_common(obs_histo)
    obs_histo.add_argument(
        "--by-opcode",
        action="store_true",
        help="additionally break each event kind down by opcode",
    )

    obs_export = obs_sub.add_parser(
        "export", help="export latency-event metrics as CSV or JSON"
    )
    _obs_common(obs_export)
    obs_export.add_argument("--format", choices=("csv", "json"), default="json")
    obs_export.add_argument("--out", default=None, help="write to a file")

    ablate_parser = sub.add_parser(
        "ablate",
        help="leave-one-out ablation over the registered model components",
    )
    ablate_parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=["micro:fib"],
        metavar="NAME",
        help="suite kernels and/or micro:<name> kernels "
        "(default: micro:fib)",
    )
    ablate_parser.add_argument(
        "--config",
        default="8/48",
        help="processor configuration label (default: 8/48)",
    )
    ablate_parser.add_argument(
        "--model",
        default="great",
        help="baseline speculation model: super | great | good",
    )
    ablate_parser.add_argument(
        "--update-timing",
        choices=("I", "D"),
        default="D",
        help="baseline predictor update timing (default: D, realistic)",
    )
    ablate_parser.add_argument(
        "--max-instructions", type=int, default=3000,
        help="truncate each kernel trace (default: 3000)",
    )
    ablate_parser.add_argument(
        "--pairs",
        action="store_true",
        help="also lesion every component pair (interaction probing)",
    )
    ablate_parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="cap the number of lesioned runs (dropped runs are counted "
        "in the report, never silently truncated)",
    )
    ablate_parser.add_argument("--jobs", type=int, default=None, metavar="N")
    ablate_parser.add_argument(
        "--backend", choices=("local", "cluster", "service"), default=None
    )
    ablate_parser.add_argument("--batch", type=int, default=None, metavar="N")
    ablate_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the versioned JSON report",
    )
    ablate_parser.add_argument(
        "--csv", default=None, metavar="PATH",
        help="also write the ranked table as CSV",
    )
    ablate_parser.set_defaults(func=_cmd_ablate)

    bench_parser = sub.add_parser("bench", help="simulate one kernel")
    bench_parser.add_argument("name", choices=kernel_names())
    bench_parser.add_argument("--config", default="8/48", help="4/24 | 8/48 | 16/96")
    bench_parser.add_argument("--model", default="great", help="super|great|good|none")
    bench_parser.add_argument("--confidence", default="real", help="real | oracle")
    bench_parser.add_argument("--timing", default="D", help="I | D")
    bench_parser.add_argument("--max-instructions", type=int, default=10000)
    bench_parser.add_argument(
        "--sample-phases",
        type=int,
        default=None,
        metavar="N",
        help="phase-sampled *estimate* mode: cluster trace chunks into N "
        "phases and simulate one representative each (default: "
        "REPRO_SAMPLE_PHASES, off when unset)",
    )
    bench_parser.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
