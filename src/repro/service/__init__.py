"""Always-on simulation service: HTTP front door, in-flight dedup, and
a persistent content-addressed result store.

Submodules (import them directly — this package stays lazy so that
``repro.harness.parallel``'s optional store consult never drags HTTP
machinery into a plain sweep):

* :mod:`repro.service.results` — the content-addressed result store
* :mod:`repro.service.admission` — bounded weighted-fair admission queue
* :mod:`repro.service.server` — the HTTP/JSON service itself
* :mod:`repro.service.client` — client library + ``run_jobs`` adapter
"""
