"""The always-on simulation service: an HTTP/JSON front door over the
simulation backends with in-flight dedup and a persistent result store.

This is the long-lived, multi-tenant promotion of the batch machinery:
where ``run_jobs`` executes a grid and exits, and the cluster scheduler
owns one sweep at a time, the service accepts sweep/experiment/single-
point requests from many concurrent clients indefinitely and guarantees
that **previously computed results are never recomputed**:

* a request whose job key is already in the persistent result store
  (:mod:`repro.service.results`) is answered straight from disk — a
  *warm hit*, zero simulation;
* a request whose job key is already queued or running *joins* the
  in-flight execution — one execution per ``job_key``, every waiter
  shares the result;
* only genuinely new keys are admitted to the bounded fair queue
  (:mod:`repro.service.admission`) and executed — on any backend
  (serial / process pool / cluster) via
  :func:`repro.harness.parallel.run_jobs` — then persisted to the
  store before waiters are released, so a service restart mid-burst
  serves every completed point from disk.

Protocol: plain HTTP/1.1 with JSON bodies on the stdlib threaded
server (``http.server.ThreadingHTTPServer`` — one thread per
connection; handler threads only enqueue and wait, the dispatcher
thread does the heavy lifting).  Jobs travel exactly as they do on the
cluster wire: ``{"key": <job_key>, "blob": <base64 pickle>}`` — the
server re-derives the key from the blob and rejects mismatches, so a
confused client cannot poison the store.  Like the cluster protocol,
job blobs are pickles: only expose the service to hosts already
trusted to run the code (see docs/SERVICE.md).

Endpoints (all JSON)::

    GET  /v1/healthz          liveness probe
    GET  /v1/status           service status (cluster-status job schema)
    GET  /v1/store            result-store location/size summary
    GET  /v1/result/<key>     one job's state/result
    POST /v1/submit           enqueue jobs, return per-key dispositions
    POST /v1/fetch            results for a key list (or pending counts)
    POST /v1/run              submit + wait: the synchronous front door

Backpressure: a submission that does not fit the queue bound is
rejected whole with ``429`` and a ``Retry-After`` header computed from
the observed per-job execution rate — load beyond capacity surfaces as
explicit, measurable pushback rather than unbounded latency.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.cluster.serial import (
    job_from_blob,
    job_key,
    result_to_wire,
)
from repro.harness import parallel
from repro.service import results as result_store
from repro.service.admission import FairQueue, clamp_weight

#: Sentinel for ``ServiceConfig.store``: resolve via ``REPRO_RESULT_STORE``
#: with the service's XDG default.
AUTO_STORE = "auto"

#: Execution backends the dispatcher knows how to drive.
BACKENDS = ("serial", "pool", "cluster")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from .address
    #: Result store: :data:`AUTO_STORE` (env var, service default dir),
    #: a path, or ``None`` (disabled — results live only in memory).
    store: object = AUTO_STORE
    #: How admitted jobs execute: ``serial`` (inline in the dispatcher),
    #: ``pool`` (``run_jobs`` process pool, ``jobs`` wide) or
    #: ``cluster`` (the :mod:`repro.cluster` sweep service).
    backend: str = "serial"
    jobs: int = 1
    #: Batched-engine group size forwarded to ``run_jobs`` (see
    #: :func:`repro.harness.parallel.plan_units`); ``None`` = env/1.
    batch: int | None = None
    #: Queue bound: queued-but-not-dispatched jobs across all clients.
    max_queue: int = 256
    #: Jobs the dispatcher drains per cycle (fairness granularity vs
    #: pool amortization); ``None`` = ``max(jobs, 1)``.
    dispatch_window: int | None = None
    default_weight: float = 1.0
    #: Result-store entry budget, enforced after each dispatch cycle
    #: (``None`` = unbounded).
    store_max_entries: int | None = None
    #: Retry-After bounds for 429 responses.
    retry_after_floor: float = 0.5
    retry_after_cap: float = 30.0

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown service backend {self.backend!r} "
                f"(expected one of {BACKENDS})"
            )


class Backpressure(Exception):
    """The queue bound rejected a submission; retry after a delay."""

    def __init__(self, retry_after: float, depth: int):
        self.retry_after = retry_after
        self.depth = depth
        super().__init__(
            f"admission queue full ({depth} queued); "
            f"retry after {retry_after:.1f}s"
        )


class _Entry:
    """One job key's lifecycle inside the service.

    There is at most one live entry per key — the in-flight dedup
    invariant.  ``wire`` holds the result only when the store cannot
    (disabled or write failure); otherwise done entries are read back
    from disk, keeping a long-lived service's memory bounded by the
    *active* keys, not every key it ever served.
    """

    __slots__ = ("key", "job", "state", "wire", "source", "error", "done")

    def __init__(self, key: str, job=None):
        self.key = key
        self.job = job
        self.state = "queued"  # queued | running | done | failed
        self.wire: dict | None = None
        self.source: str | None = None  # store | computed
        self.error: str | None = None
        self.done = threading.Event()


@dataclass
class _Stats:
    """Monotonic service counters (reset only by restart)."""

    requests: int = 0
    submitted: int = 0
    warm_hits: int = 0  # answered from the result store, zero simulation
    joined: int = 0  # shared an in-flight execution
    executed: int = 0  # jobs actually simulated by this instance
    failed: int = 0
    rejected: int = 0  # 429 backpressure rejections
    dispatch_cycles: int = 0
    #: EWMA of per-job execution seconds (drives Retry-After).
    ewma_job_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "submitted": self.submitted,
            "warm_hits": self.warm_hits,
            "joined": self.joined,
            "executed": self.executed,
            "failed": self.failed,
            "rejected": self.rejected,
            "dispatch_cycles": self.dispatch_cycles,
            "ewma_job_seconds": round(self.ewma_job_seconds, 6),
        }


class SimulationService:
    """The always-on front door.  See the module docstring."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.store_dir = self._resolve_store(self.config.store)
        self._lock = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        self._queue = FairQueue(self.config.max_queue)
        self.stats = _Stats()
        self._stopping = threading.Event()
        self._httpd: ThreadingHTTPServer | None = None
        self._threads: list[threading.Thread] = []
        self._started = time.monotonic()
        self.address: tuple[str, int] | None = None

    @staticmethod
    def _resolve_store(store: object) -> Path | None:
        if store is None:
            return None
        if store == AUTO_STORE:
            # Only the auto default consults REPRO_RESULT_STORE (path
            # relocates, falsy spelling disables); an explicit
            # ``ServiceConfig.store`` path means exactly that path.
            return result_store.store_dir(
                default=result_store.default_service_dir()
            )
        return Path(store).expanduser()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, and start the HTTP + dispatcher threads."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self.address = self._httpd.server_address[:2]
        self._started = time.monotonic()
        for target, name in (
            (self._httpd.serve_forever, "service-http"),
            (self._dispatch_loop, "service-dispatch"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        self._queue.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        # Release any waiter still parked on an unfinished entry.
        with self._lock:
            for entry in self._entries.values():
                if entry.state in ("queued", "running"):
                    entry.state = "failed"
                    entry.error = "service stopped"
                    entry.done.set()

    def __enter__(self) -> "SimulationService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission (HTTP handler side) ------------------------------------

    def submit(
        self,
        jobs: list[dict],
        *,
        client: str = "anonymous",
        weight: float | None = None,
    ) -> dict:
        """Admit a job list; returns the receipt with per-key
        dispositions: ``store`` (already in the persistent store),
        ``done`` (computed earlier by this instance), ``joined``
        (shares an execution already in flight), ``queued`` (admitted
        for execution).  Only ``queued`` costs simulation; ``store``
        and ``done`` are warm hits.

        Raises :class:`Backpressure` — admitting *nothing* — when the
        new work does not fit the queue bound, and ``ValueError`` for a
        malformed or key-mismatched entry (nothing admitted either).
        """
        weight = clamp_weight(
            self.config.default_weight if weight is None else weight
        )
        parsed: list[tuple[str, object]] = []
        for doc in jobs:
            if not isinstance(doc, dict):
                raise ValueError("job entries must be objects")
            key = str(doc.get("key", ""))
            blob = doc.get("blob")
            if not key or not isinstance(blob, str):
                raise ValueError("job entry without key/blob")
            try:
                job = job_from_blob(blob)
            except Exception as error:
                raise ValueError(f"undecodable job blob for {key}: {error}")
            derived = job_key(job)
            if derived != key:
                raise ValueError(
                    f"job key mismatch: client claimed {key}, "
                    f"content hashes to {derived}"
                )
            parsed.append((key, job))

        dispositions: list[str] = []
        with self._lock:
            self.stats.requests += 1
            fresh: list[_Entry] = []
            fresh_keys: set[str] = set()
            for key, job in parsed:
                entry = self._entries.get(key)
                if entry is not None and entry.state == "failed":
                    # A resubmission is the operator's retry button: the
                    # failed entry is replaced by a fresh attempt.
                    entry = None
                if entry is None and key in fresh_keys:
                    # Duplicate key inside one submission: joins the
                    # sibling entry created a moment ago.
                    dispositions.append("joined")
                    continue
                if entry is not None:
                    if entry.state == "done":
                        dispositions.append(
                            "store" if entry.source == "store" else "done"
                        )
                    else:
                        dispositions.append("joined")
                    continue
                wire = result_store.load_wire(key, self.store_dir)
                if wire is not None:
                    done = _Entry(key)
                    done.state = "done"
                    done.source = "store"
                    if self.store_dir is None:  # pragma: no cover
                        done.wire = wire
                    done.done.set()
                    self._entries[key] = done
                    dispositions.append("store")
                    continue
                dispositions.append("queued")
                fresh.append(_Entry(key, job))
                fresh_keys.add(key)
            if fresh and not self._queue.offer(client, weight, fresh):
                self.stats.rejected += 1
                raise Backpressure(self._retry_after(), self._queue.depth())
            for entry in fresh:
                self._entries[entry.key] = entry
            warm = dispositions.count("store") + dispositions.count("done")
            self.stats.submitted += len(parsed)
            self.stats.warm_hits += warm
            self.stats.joined += dispositions.count("joined")
        return {
            "type": "ok",
            "total": len(parsed),
            "queued": dispositions.count("queued"),
            "warm": warm,
            "joined": dispositions.count("joined"),
            "dispositions": dispositions,
        }

    def _retry_after(self) -> float:
        """Advice for a 429: roughly one queue-drain at the observed
        rate, clamped to something a client can act on."""
        cfg = self.config
        per_job = self.stats.ewma_job_seconds or cfg.retry_after_floor
        window = max(1, cfg.dispatch_window or max(cfg.jobs, 1))
        estimate = self._queue.depth() * per_job / window
        return max(cfg.retry_after_floor, min(cfg.retry_after_cap, estimate))

    # -- results (HTTP handler side) ---------------------------------------

    def entry_state(self, key: str) -> dict:
        """One key's state document (the ``/v1/result/<key>`` body)."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            wire = result_store.load_wire(key, self.store_dir)
            if wire is not None:
                return {"state": "done", "source": "store", "result": wire}
            return {"state": "unknown"}
        doc: dict = {"state": entry.state}
        if entry.state == "done":
            doc["source"] = entry.source
            doc["result"] = self._entry_wire(entry)
        elif entry.state == "failed":
            doc["error"] = entry.error
        return doc

    def _entry_wire(self, entry: _Entry) -> dict | None:
        if entry.wire is not None:
            return entry.wire
        return result_store.load_wire(entry.key, self.store_dir)

    def fetch(self, keys: list[str]) -> dict:
        """Results for ``keys`` in order, or progress while pending."""
        states = [self.entry_state(str(key)) for key in keys]
        failures = [
            {"key": str(key), "error": state.get("error")}
            for key, state in zip(keys, states)
            if state["state"] == "failed"
        ]
        if failures:
            return {"type": "error", "reason": "jobs failed",
                    "failures": failures}
        unknown = [
            str(key) for key, state in zip(keys, states)
            if state["state"] == "unknown"
        ]
        if unknown:
            return {"type": "error",
                    "reason": f"unknown keys: {unknown[:5]}"}
        done = sum(1 for state in states if state["state"] == "done")
        if done < len(states):
            return {"type": "pending", "done": done, "total": len(states)}
        return {
            "type": "results",
            "results": [state["result"] for state in states],
            "sources": [state["source"] for state in states],
        }

    def wait(self, keys: list[str], timeout: float | None = None) -> bool:
        """Block until every key is settled (done/failed); ``False`` on
        timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for key in keys:
            with self._lock:
                entry = self._entries.get(key)
            if entry is None:
                continue
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            if not entry.done.wait(remaining):
                return False
        return True

    # -- status ------------------------------------------------------------

    def status(self) -> dict:
        """Service status.  The ``jobs`` block uses the cluster status
        schema (``pending``/``leased``/``done``/``failed`` — ``leased``
        counts running jobs) so tooling reads both services uniformly.
        """
        counts = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
        with self._lock:
            for entry in self._entries.values():
                if entry.state == "queued":
                    counts["pending"] += 1
                elif entry.state == "running":
                    counts["leased"] += 1
                else:
                    counts[entry.state] += 1
            stats = self.stats.as_dict()
        return {
            "type": "status",
            "jobs": counts,
            "queue": {
                "depth": self._queue.depth(),
                "max": self.config.max_queue,
            },
            "clients": self._queue.snapshot(),
            "backend": {
                "backend": self.config.backend,
                "jobs": self.config.jobs,
                "batch": self.config.batch,
            },
            "store": result_store.store_info(self.store_dir),
            "stats": stats,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }

    # -- execution (dispatcher side) ---------------------------------------

    def _dispatch_loop(self) -> None:
        window = max(1, self.config.dispatch_window or max(self.config.jobs, 1))
        while not self._stopping.is_set():
            entries = self._queue.take(window, timeout=0.1)
            if not entries:
                continue
            self._dispatch(entries)

    def _dispatch(self, entries: list[_Entry]) -> None:
        with self._lock:
            for entry in entries:
                entry.state = "running"
        started = time.perf_counter()
        try:
            results = parallel.run_jobs(
                [entry.job for entry in entries],
                jobs=self.config.jobs if self.config.backend == "pool" else 1,
                backend="cluster" if self.config.backend == "cluster"
                else "local",
                batch=self.config.batch,
            )
        except Exception as error:  # a failed cycle fails its entries only
            with self._lock:
                for entry in entries:
                    entry.state = "failed"
                    entry.error = f"{type(error).__name__}: {error}"
                    entry.done.set()
                self.stats.failed += len(entries)
            return
        elapsed = time.perf_counter() - started
        with self._lock:
            for entry, result in zip(entries, results):
                wire = result_to_wire(result)
                stored = result_store.store_result(
                    entry.key, wire, self.store_dir
                )
                if stored is None:
                    entry.wire = wire  # store off/unwritable: keep in memory
                entry.job = None  # the blob served its purpose
                entry.state = "done"
                entry.source = "computed"
                entry.done.set()
            self.stats.executed += len(entries)
            self.stats.dispatch_cycles += 1
            per_job = elapsed / len(entries)
            ewma = self.stats.ewma_job_seconds
            self.stats.ewma_job_seconds = (
                per_job if ewma == 0.0 else 0.8 * ewma + 0.2 * per_job
            )
        if self.config.store_max_entries is not None:
            result_store.evict_store(
                self.store_dir, max_entries=self.config.store_max_entries
            )


# -- the HTTP layer --------------------------------------------------------


def _make_handler(service: SimulationService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # The service is an API, not a file server: silence per-request
        # stderr logging (a load test would drown the console).
        def log_message(self, *args) -> None:  # noqa: D102
            pass

        def _reply(self, status: int, doc: dict,
                   headers: dict | None = None) -> None:
            payload = json.dumps(doc).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            try:
                self.wfile.write(payload)
            except OSError:
                pass

        def _body(self) -> dict | None:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                return None
            if length <= 0:
                return None
            try:
                doc = json.loads(self.rfile.read(length).decode("utf-8"))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                return None
            return doc if isinstance(doc, dict) else None

        # -- GET ----------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802
            path = self.path.rstrip("/")
            if path == "/v1/healthz":
                self._reply(200, {"ok": True})
            elif path == "/v1/status":
                self._reply(200, service.status())
            elif path == "/v1/store":
                self._reply(200, result_store.store_info(service.store_dir))
            elif path.startswith("/v1/result/"):
                key = path.rsplit("/", 1)[1]
                doc = service.entry_state(key)
                status = {"done": 200, "failed": 500,
                          "unknown": 404}.get(doc["state"], 202)
                self._reply(status, doc)
            else:
                self._reply(404, {"error": f"no such endpoint {self.path!r}"})

        # -- POST ---------------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802
            path = self.path.rstrip("/")
            body = self._body()
            if body is None:
                self._reply(400, {"error": "expected a JSON object body"})
                return
            if path == "/v1/submit":
                self._submit(body, wait=False)
            elif path == "/v1/run":
                self._submit(body, wait=True)
            elif path == "/v1/fetch":
                keys = body.get("keys")
                if not isinstance(keys, list) or not keys:
                    self._reply(400, {"error": "fetch without keys"})
                    return
                self._reply(200, service.fetch(keys))
            else:
                self._reply(404, {"error": f"no such endpoint {self.path!r}"})

        def _submit(self, body: dict, *, wait: bool) -> None:
            jobs = body.get("jobs")
            if not isinstance(jobs, list) or not jobs:
                self._reply(400, {"error": "submit without jobs"})
                return
            client = str(body.get("client") or "anonymous")
            weight = body.get("weight")
            try:
                receipt = service.submit(jobs, client=client, weight=weight)
            except Backpressure as pressure:
                self._reply(
                    429,
                    {
                        "error": "admission queue full",
                        "retry_after": round(pressure.retry_after, 3),
                        "depth": pressure.depth,
                    },
                    headers={
                        "Retry-After": str(
                            int(math.ceil(pressure.retry_after))
                        )
                    },
                )
                return
            except ValueError as error:
                self._reply(400, {"error": str(error)})
                return
            if not wait:
                self._reply(202, receipt)
                return
            keys = [str(doc.get("key")) for doc in jobs]
            timeout = body.get("timeout")
            timeout = float(timeout) if timeout is not None else None
            if not service.wait(keys, timeout):
                self._reply(
                    504,
                    {"error": "timed out waiting for results",
                     "receipt": receipt},
                )
                return
            outcome = service.fetch(keys)
            if outcome["type"] == "results":
                outcome["dispositions"] = receipt["dispositions"]
                self._reply(200, outcome)
            else:
                self._reply(500, outcome)

    return Handler
