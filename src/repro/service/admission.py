"""Admission control for the simulation service: bounded intake with
per-client weighted fair scheduling.

Under heavy traffic two failure modes matter:

* **overload** — accepting more work than the executors can drain turns
  every request's latency into the whole backlog's.  The queue is
  therefore *bounded*: a submission that does not fit is rejected
  whole (all-or-nothing, so a client never gets half a sweep admitted)
  and the HTTP layer turns the rejection into ``429`` with a
  ``Retry-After`` derived from the observed drain rate.
* **capture** — one aggressive client starving everyone else.  Queued
  work is drained in *stride-scheduling* order: each client lane has a
  pass value advanced by ``1/weight`` per job dispatched, and the
  dispatcher always serves the lane with the smallest pass.  Over any
  window, client throughput converges to the ratio of the weights
  regardless of arrival pattern; a newly active lane starts at the
  current virtual time, so idleness is neither banked nor punished.

The queue knows nothing about jobs beyond opaque items — the service
layer owns job identity, dedup and result plumbing.
"""

from __future__ import annotations

import threading
from collections import deque

#: Weights outside this range are clamped — a client cannot grant
#: itself unbounded priority, nor wedge the stride math with zero.
MIN_WEIGHT = 0.1
MAX_WEIGHT = 100.0


class _Lane:
    __slots__ = ("items", "pass_value", "weight", "dispatched")

    def __init__(self, weight: float, start: float):
        self.items: deque = deque()
        self.pass_value = start
        self.weight = weight
        self.dispatched = 0


def clamp_weight(weight: float) -> float:
    try:
        weight = float(weight)
    except (TypeError, ValueError):
        return 1.0
    if weight != weight:  # NaN
        return 1.0
    return max(MIN_WEIGHT, min(MAX_WEIGHT, weight))


class FairQueue:
    """Bounded multi-client queue drained in weighted-fair order."""

    def __init__(self, max_queue: int = 256):
        self.max_queue = max(1, int(max_queue))
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._lanes: dict[str, _Lane] = {}
        self._depth = 0
        self._virtual_time = 0.0
        self._closed = False

    def depth(self) -> int:
        with self._lock:
            return self._depth

    def offer(self, client: str, weight: float, items: list) -> bool:
        """Admit ``items`` to ``client``'s lane, all or nothing.

        Returns ``False`` — admitting *none* of the items — when they
        do not all fit under the queue bound, so a rejected submission
        can be retried whole after backpressure.
        """
        if not items:
            return True
        weight = clamp_weight(weight)
        with self._lock:
            if self._closed or self._depth + len(items) > self.max_queue:
                return False
            lane = self._lanes.get(client)
            if lane is None:
                lane = _Lane(weight, self._virtual_time)
                self._lanes[client] = lane
            else:
                lane.weight = weight
                if not lane.items:
                    # A lane going idle must not bank credit: restart at
                    # the current virtual time (or keep its own pass if
                    # it is already ahead).
                    lane.pass_value = max(lane.pass_value, self._virtual_time)
            lane.items.extend(items)
            self._depth += len(items)
            self._ready.notify_all()
            return True

    def take(self, limit: int, timeout: float | None = None) -> list:
        """Up to ``limit`` items in stride order; blocks up to
        ``timeout`` for the first one (empty list on timeout/close)."""
        taken: list = []
        with self._lock:
            if self._depth == 0:
                self._ready.wait(timeout)
            while len(taken) < max(1, limit):
                lane_id = self._next_lane()
                if lane_id is None:
                    break
                lane = self._lanes[lane_id]
                taken.append(lane.items.popleft())
                lane.dispatched += 1
                lane.pass_value += 1.0 / lane.weight
                self._virtual_time = lane.pass_value
                self._depth -= 1
        return taken

    def _next_lane(self) -> str | None:
        best: str | None = None
        best_pass = 0.0
        for client, lane in self._lanes.items():
            if not lane.items:
                continue
            if best is None or lane.pass_value < best_pass:
                best = client
                best_pass = lane.pass_value
        return best

    def close(self) -> None:
        """Refuse further offers and wake any blocked taker."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    def snapshot(self) -> dict:
        """Per-client introspection for the status endpoint."""
        with self._lock:
            return {
                client: {
                    "queued": len(lane.items),
                    "weight": lane.weight,
                    "dispatched": lane.dispatched,
                }
                for client, lane in self._lanes.items()
            }
