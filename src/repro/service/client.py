"""Client library for the simulation service.

:class:`ServiceClient` speaks the HTTP/JSON protocol of
:mod:`repro.service.server` with the same restart-proof discipline the
cluster client uses: submission is idempotent (jobs are content-keyed,
so resubmitting is free — warm keys come straight back from the result
store), results are polled, and a client that observes a stalled or
restarted service simply resubmits and keeps polling.  Backpressure
(``429``) is handled by honoring ``Retry-After`` and halving the
submission chunk, so a client behind a saturated service degrades to a
slower trickle instead of failing.

:func:`run_jobs_service` adapts the client to the
:func:`repro.harness.parallel.run_jobs` calling convention so
``--backend service`` (or ``REPRO_SWEEP_BACKEND=service`` plus
``REPRO_SERVICE_ADDR``) routes any existing sweep through a shared
always-on service instead of local processes.
"""

from __future__ import annotations

import http.client
import json
import os
import time

from repro.cluster.protocol import parse_address
from repro.cluster.serial import job_key, job_to_blob, result_from_wire

#: Where ``--backend service`` connects when no address is given
#: explicitly (``host:port`` / ``[v6]:port``).
ENV_ADDR = "REPRO_SERVICE_ADDR"

DEFAULT_TIMEOUT = 600.0
DEFAULT_CHUNK = 32


class ServiceError(RuntimeError):
    """The service reported a terminal error for this request."""


class ServiceClient:
    """A connection-per-request HTTP client for one service address."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str | None = None,
        weight: float = 1.0,
        timeout: float = 30.0,
        poll_interval: float = 0.05,
        chunk: int = DEFAULT_CHUNK,
    ):
        self.host = host
        self.port = int(port)
        self.client_id = client_id or f"pid-{os.getpid()}"
        self.weight = weight
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.chunk = max(1, int(chunk))

    @classmethod
    def from_address(cls, address: str | None = None, **kwargs) -> "ServiceClient":
        """Build a client from ``host:port`` text (or ``$REPRO_SERVICE_ADDR``)."""
        if address is None:
            address = os.environ.get(ENV_ADDR)
        if not address:
            raise ServiceError(
                "no service address: pass --connect HOST:PORT or set "
                f"{ENV_ADDR}"
            )
        host, port = parse_address(address)
        return cls(host, port, **kwargs)

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                doc = {}
            return response.status, dict(response.getheaders()), doc
        finally:
            conn.close()

    # -- primitives --------------------------------------------------------

    def healthy(self) -> bool:
        try:
            status, _, _ = self._request("GET", "/v1/healthz")
        except OSError:
            return False
        return status == 200

    def status(self) -> dict:
        status, _, doc = self._request("GET", "/v1/status")
        if status != 200:
            raise ServiceError(f"status endpoint returned {status}")
        return doc

    def submit(self, job_list, *, deadline: float | None = None) -> list[str]:
        """Submit jobs (chunked, backpressure-aware); returns their keys.

        A ``429`` sleeps out the ``Retry-After`` advice and halves the
        chunk size for the rest of this submission — all-or-nothing
        admission means smaller offers fit sooner.
        """
        keys = [job_key(job) for job in job_list]
        docs = [
            {"key": key, "blob": job_to_blob(job)}
            for key, job in zip(keys, job_list)
        ]
        chunk = self.chunk
        index = 0
        while index < len(docs):
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError("timed out submitting jobs")
            batch = docs[index : index + chunk]
            status, headers, doc = self._request(
                "POST",
                "/v1/submit",
                {"jobs": batch, "client": self.client_id,
                 "weight": self.weight},
            )
            if status == 429:
                delay = _retry_after(headers, doc)
                chunk = max(1, chunk // 2)
                time.sleep(delay)
                continue
            if status not in (200, 202):
                raise ServiceError(
                    f"submit rejected ({status}): {doc.get('error')}"
                )
            index += len(batch)
        return keys

    def fetch(self, keys: list[str]) -> dict:
        status, _, doc = self._request("POST", "/v1/fetch", {"keys": keys})
        if status != 200:
            raise ServiceError(f"fetch returned {status}: {doc.get('error')}")
        return doc

    def run_sync(self, job_list, timeout: float | None = None) -> dict:
        """One blocking ``POST /v1/run`` round trip: submit the jobs and
        hold the connection until results are ready.

        Returns the raw response document (``results`` wire forms plus
        per-key ``dispositions``) so load generators can measure true
        request latency and classify warm hits; raises
        :class:`ServiceError` on rejection.  ``429`` is surfaced as a
        ``ServiceError`` with ``retry_after`` attached — a load test
        wants to *count* pushback, not hide it.
        """
        docs = [
            {"key": job_key(job), "blob": job_to_blob(job)}
            for job in job_list
        ]
        body = {"jobs": docs, "client": self.client_id, "weight": self.weight}
        if timeout is not None:
            body["timeout"] = timeout
        status, headers, doc = self._request("POST", "/v1/run", body)
        if status == 429:
            error = ServiceError(f"backpressure: {doc.get('error')}")
            error.retry_after = _retry_after(headers, doc)  # type: ignore[attr-defined]
            error.status = status  # type: ignore[attr-defined]
            raise error
        if status != 200:
            error = ServiceError(f"run returned {status}: {doc.get('error')}")
            error.status = status  # type: ignore[attr-defined]
            raise error
        return doc

    # -- the high-level loop ----------------------------------------------

    def run(self, job_list, timeout: float = DEFAULT_TIMEOUT) -> list:
        """Submit the jobs and poll until every result is available.

        Restart-proof: if a poll finds keys the service no longer knows
        (it restarted and lost its in-memory registry), the client
        resubmits — completed keys come back from the persistent store,
        only the genuinely unfinished remainder re-executes.
        """
        job_list = list(job_list)
        if not job_list:
            return []
        deadline = time.monotonic() + timeout
        keys = self.submit(job_list, deadline=deadline)
        delay = self.poll_interval
        while True:
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{len(keys)} jobs"
                )
            try:
                doc = self.fetch(keys)
            except OSError:
                # Service unreachable (restarting?): back off and retry.
                time.sleep(min(delay * 4, 1.0))
                continue
            kind = doc.get("type")
            if kind == "results":
                return [result_from_wire(wire) for wire in doc["results"]]
            if kind == "error":
                reason = doc.get("reason", "")
                if reason.startswith("unknown keys"):
                    # The service restarted mid-burst: resubmit.  Warm
                    # keys are served from the store without recompute.
                    self.submit(job_list, deadline=deadline)
                    continue
                failures = doc.get("failures") or []
                detail = "; ".join(
                    f"{f.get('key')}: {f.get('error')}" for f in failures[:3]
                )
                raise ServiceError(
                    f"service reported failed jobs: {detail or reason}"
                )
            time.sleep(delay)
            delay = min(delay * 1.5, 1.0)


def _retry_after(headers: dict, doc: dict) -> float:
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return max(0.05, float(value))
            except (TypeError, ValueError):
                break
    try:
        return max(0.05, float(doc.get("retry_after")))
    except (TypeError, ValueError):
        return 0.5


def run_jobs_service(job_list, *, address: str | None = None, **kwargs) -> list:
    """``run_jobs``-shaped entry point: execute jobs on the service at
    ``address`` (default ``$REPRO_SERVICE_ADDR``)."""
    client = ServiceClient.from_address(address, **kwargs)
    return client.run(list(job_list))
