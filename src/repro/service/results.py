"""Persistent, content-addressed result store for simulation outcomes.

The design-space study this repo reproduces re-evaluates the same grid
points endlessly: every sweep axis, figure, ablation and follow-on study
revisits configurations that were already simulated, often on another
day by another process.  A timing result is a pure function of its
:class:`~repro.harness.parallel.SimJob` — the content hash
:func:`repro.cluster.serial.job_key` *is* its identity — so this module
memoises serialized results on disk exactly the way the trace cache
(:mod:`repro.trace.cache`) memoises traces, generalizing the same VSRT
discipline from instruction streams to :class:`SimCounters`:

* **content addressing** — entries are keyed by ``job_key``, so editing
  any job setting (config field, model latency, predictor factory
  argument) changes the key and stale entries are simply never found;
* **version-tagged entries** — every entry records the store format
  version; a reader that finds any other version treats the entry as a
  miss and deletes it, so format bumps cannot serve misdecoded results;
* **corruption-tolerant reads** — a torn, truncated or bit-flipped
  entry (checked by a per-entry CRC over the canonical JSON body) is a
  miss, not an error, and is removed so the next store replaces it;
* **atomic writes** — temp file + ``os.replace``, so concurrent writers
  (service executors, sweep workers, two racing clients) need no
  coordination: results are deterministic, so the worst case is one
  writer harmlessly overwriting another's bit-identical entry.

Entries are JSON (one file per key, ``<job_key>.vsres1``) holding the
result's wire form (:func:`repro.cluster.serial.result_to_wire`), the
same schema the cluster journal records — JSON round-trips every
counter exactly, so a store-served result compares equal, bit for bit,
to a freshly computed one.

Configuration is via the ``REPRO_RESULT_STORE`` environment variable:

* unset — **disabled** for direct harness runs (the simulation service
  instead defaults to ``$XDG_CACHE_HOME/repro/results``, falling back
  to ``~/.cache/repro/results`` — see :func:`default_service_dir`);
* a path — store under that directory (enables the
  :func:`repro.harness.parallel.run_jobs` warm-skip on every backend);
* any falsy spelling (``off``, ``none``, ``0``, ``false``, ``no``,
  ``disabled`` or empty) — disabled everywhere, matching
  ``REPRO_TRACE_CACHE`` semantics exactly (never misread as a
  relocation directory named "false").
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path

ENV_VAR = "REPRO_RESULT_STORE"

#: ``REPRO_RESULT_STORE`` values that turn the store off — the same
#: falsy-spelling set ``REPRO_TRACE_CACHE`` honors.
_DISABLED_VALUES = frozenset({"", "0", "off", "none", "disabled", "false", "no"})

#: File suffix; bump together with :data:`_VERSION` so readers of a new
#: format never even open old-format entries.
_SUFFIX = ".vsres1"

#: Entry format version, recorded in (and checked against) every entry.
_VERSION = 1


def store_dir(default: str | os.PathLike | None = None) -> Path | None:
    """The configured store directory, or ``None`` when disabled.

    ``REPRO_RESULT_STORE`` always wins: a falsy spelling disables the
    store even for callers passing a ``default`` (the service's
    kill-switch), and a path relocates it.  With the variable unset the
    ``default`` decides — ``None`` (the harness's choice: results are
    only memoised when explicitly asked) or a directory (the service's
    choice).  The directory is *not* created here — only writers create
    it, so read-only consumers never touch the filesystem.
    """
    override = os.environ.get(ENV_VAR)
    if override is not None:
        if override.strip().lower() in _DISABLED_VALUES:
            return None
        return Path(override).expanduser()
    if default is None:
        return None
    return Path(default).expanduser()


def default_service_dir() -> Path:
    """Where the simulation service keeps results when nothing is
    configured: the XDG cache, beside the trace cache."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


def store_enabled() -> bool:
    """Whether direct harness runs memoise results (env-var opt-in)."""
    return store_dir() is not None


def result_path(key: str, directory: Path | None = None) -> Path | None:
    """Where the entry for this job key lives (``None`` when disabled)."""
    if directory is None:
        directory = store_dir()
    if directory is None:
        return None
    return Path(directory) / (key + _SUFFIX)


def _entry_crc(doc: dict) -> int:
    """CRC of an entry's canonical text, excluding the crc field itself
    (the journal's discipline, reused)."""
    body = {k: doc[k] for k in sorted(doc) if k != "crc"}
    return zlib.crc32(
        json.dumps(body, separators=(",", ":"), sort_keys=True).encode()
    )


def store_result(key: str, result, directory: Path | None = None) -> Path | None:
    """Atomically write one result under its job key; returns the path.

    ``result`` may be a :class:`~repro.engine.sim.SimulationResult`, a
    batched run's list of them, or an already-serialized wire document.
    Returns ``None`` (and stores nothing) when the store is disabled or
    the directory is unwritable — the store is an optimisation, never a
    hard dependency.
    """
    path = result_path(key, directory)
    if path is None:
        return None
    if not isinstance(result, dict):
        from repro.cluster.serial import result_to_wire

        result = result_to_wire(result)
    doc = {"v": _VERSION, "key": key, "result": result}
    doc["crc"] = _entry_crc(doc)
    data = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode()
    tmp = path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return None
    return path


def load_wire(key: str, directory: Path | None = None) -> dict | None:
    """The stored wire document for this key, or ``None`` on a miss.

    A corrupt entry (bad JSON, CRC mismatch, wrong key) or one written
    by a different format version is treated as a miss and deleted so
    the next store replaces it — never served, never fatal.
    """
    path = result_path(key, directory)
    if path is None:
        return None
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    doc = None
    try:
        parsed = json.loads(raw.decode("utf-8"))
        if (
            isinstance(parsed, dict)
            and parsed.get("v") == _VERSION
            and parsed.get("key") == key
            and isinstance(parsed.get("result"), dict)
            and _entry_crc(parsed) == parsed.get("crc")
        ):
            doc = parsed
    except (UnicodeDecodeError, json.JSONDecodeError):
        doc = None
    if doc is None:
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return doc["result"]


def load_result(key: str, directory: Path | None = None):
    """The stored result for this key rebuilt as a
    :class:`~repro.engine.sim.SimulationResult` (or list of them for a
    batched unit), or ``None`` on a miss."""
    wire = load_wire(key, directory)
    if wire is None:
        return None
    from repro.cluster.serial import result_from_wire

    return result_from_wire(wire)


# -- maintenance (the service status endpoint and `repro serve`) -----------


def store_entries(directory: Path | None = None) -> list[Path]:
    """Every entry file currently in the store directory."""
    if directory is None:
        directory = store_dir()
    if directory is None or not Path(directory).is_dir():
        return []
    return sorted(Path(directory).glob(f"*{_SUFFIX}"))


def store_info(directory: Path | None = None) -> dict:
    """Summary of the store's location and contents."""
    if directory is None:
        directory = store_dir()
    entries = store_entries(directory)
    return {
        "enabled": directory is not None,
        "dir": str(directory) if directory is not None else None,
        "entries": len(entries),
        "bytes": sum(path.stat().st_size for path in entries),
    }


def clear_store(directory: Path | None = None) -> int:
    """Delete every store entry; returns the number removed."""
    removed = 0
    for path in store_entries(directory):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def evict_store(
    directory: Path | None = None,
    *,
    max_entries: int | None = None,
    max_bytes: int | None = None,
) -> int:
    """Evict oldest entries until the store fits the given budgets.

    Age is modification time (a re-store refreshes it, so hot keys
    survive), ties broken by name for determinism.  Returns the number
    of entries removed; with no budget given, removes nothing.  Entries
    that vanish mid-scan (a concurrent eviction) are skipped, not
    errors.
    """
    if max_entries is None and max_bytes is None:
        return 0
    entries = []
    for path in store_entries(directory):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, path.name, stat.st_size, path))
    entries.sort()
    total = len(entries)
    total_bytes = sum(size for _, _, size, _ in entries)
    removed = 0
    for _, _, size, path in entries:
        over_count = max_entries is not None and total - removed > max_entries
        over_bytes = max_bytes is not None and total_bytes > max_bytes
        if not over_count and not over_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        removed += 1
        total_bytes -= size
    return removed
