"""Wakeup functions (paper Section 3.4).

The wakeup function decides which unissued instructions become selection
candidates, filtering on the four-valued ready state of their operands.
The paper's function: "an instruction can wakeup only when its inputs are
either valid and/or speculative and the instruction has not yet issued."
Instructions without predicted or speculative operands therefore wake up
exactly as fast as on the base processor.
"""

from __future__ import annotations

from repro.core.variables import (
    BranchResolution,
    ModelVariables,
    WakeupPolicy,
)
from repro.window.station import Station


def can_wake(station: Station, variables: ModelVariables, cycle: int) -> bool:
    """May ``station`` be considered for issue in ``cycle``?

    Branch and memory instructions additionally require VALID operands when
    the resolution variables say so; the extra Verification–Branch /
    Verification-Address–Memory-Access delays on network-verified operands
    are applied by the selection stage (they gate *when*, not *whether*).
    """
    if station.issued or station.executing or station.retired:
        return False
    if cycle < station.min_issue_cycle:
        return False

    policy = variables.wakeup
    if policy is WakeupPolicy.VALID_ONLY:
        if not station.inputs_valid:
            return False
    elif policy is WakeupPolicy.VALID_OR_SPECULATIVE:
        if not station.inputs_usable:
            return False
    else:  # ANY_VALUE: usable inputs, speculative status ignored
        if not station.inputs_usable:
            return False

    if station.rec.is_branch or station.rec.is_indirect:
        if variables.branch_resolution is BranchResolution.VALID_ONLY:
            return station.inputs_valid
    # Memory instructions are NOT valid-gated at wakeup: the paper splits
    # them into address generation (which may execute speculatively — the
    # Verification-Address–Memory-Access latency presupposes "a speculative
    # address generation") and the memory access, which the engine gates on
    # operand validity when memory resolution is VALID_ONLY.
    return True


def operand_state_labels(station: Station) -> str:
    """Compact four-valued operand summary, e.g. ``"V,P"`` (observability
    detail string: VALID/INVALID/PREDICTED/SPECULATIVE initials in operand
    order, empty for zero-operand instructions)."""
    return ",".join(op.state.name[0] for op in station.operands)
