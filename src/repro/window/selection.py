"""Selection policies (paper Sections 2.1 and 3.5).

Selection chooses which woken instructions issue this cycle.  The paper's
scheme "assigns highest priority to branch and load instructions and
prioritizes the rest based on dynamic program order — oldest first.
Non-speculative instructions are preferred over speculative."
"""

from __future__ import annotations

from repro.core.variables import ModelVariables, SelectionPolicy
from repro.window.station import Station


def selection_key(station: Station, policy: SelectionPolicy) -> tuple:
    """Sort key: lower sorts first (is selected earlier)."""
    priority_type = 0 if (station.rec.is_branch or station.rec.is_load) else 1
    speculative = 1 if station.speculative_inputs else 0
    if policy is SelectionPolicy.PAPER:
        return (priority_type, speculative, station.sid)
    if policy is SelectionPolicy.SPECULATIVE_EQUAL:
        return (priority_type, station.sid)
    return (station.sid,)  # OLDEST_FIRST


def _paper_key(station: Station) -> tuple:
    return (station.sel_priority, station.speculative_inputs, station.sid)


def _equal_key(station: Station) -> tuple:
    return (station.sel_priority, station.sid)


def _oldest_key(station: Station) -> int:
    return station.sid


def select(
    candidates: list[Station], width: int, variables: ModelVariables
) -> list[Station]:
    """Pick up to ``width`` stations to issue, in priority order."""
    policy = variables.selection
    if policy is SelectionPolicy.PAPER:
        key = _paper_key
    elif policy is SelectionPolicy.SPECULATIVE_EQUAL:
        key = _equal_key
    else:
        key = _oldest_key
    return sorted(candidates, key=key)[:width]
