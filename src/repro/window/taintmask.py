"""Recycled sid→bit allocation for taint bitmasks.

The engine tracks *taints* — the unresolved speculation sources a held
value transitively depends on — as plain Python integers used as bitsets.
Union, subset, membership and clearing become single int operations with
zero allocation, which is what makes the broadcast/verify/invalidate hot
paths cheap (see docs/PERFORMANCE.md).

Station ids grow without bound over a run, so taint bits cannot simply be
``1 << sid``: a long trace would produce multi-kilobyte integers.  Instead
every *speculation source* (a confident prediction actually broadcast to
consumers) is assigned a small bit index from this allocator, and the bit
is recycled once the source can no longer appear in any live taint set.

Recycling is lazy: freeing eagerly would require reference-counting every
mask in the machine.  Instead the allocator hands out bits from a free
list (or fresh indices up to ``soft_limit``), and when it runs dry the
engine passes in the union of every *live* mask — window operands, station
outputs, in-flight transaction sources — and :meth:`sweep` reclaims every
bit whose owning station has retired and which no live mask contains.
The window bounds the number of concurrently unresolved sources, so masks
stay ``soft_limit`` bits wide regardless of trace length.
"""

from __future__ import annotations


class TaintBitAllocator:
    """Allocates and recycles the bit index backing each speculation source."""

    def __init__(self, soft_limit: int = 128):
        if soft_limit <= 0:
            raise ValueError("soft_limit must be positive")
        self.soft_limit = soft_limit
        self._free: list[int] = []
        self._next = 0
        #: bit index -> owning station (an object with ``retired``).
        self._owners: dict[int, object] = {}

    def __len__(self) -> int:
        """Number of bits currently allocated."""
        return len(self._owners)

    @property
    def high_water(self) -> int:
        """Highest bit index ever handed out (mask width in bits)."""
        return self._next

    def alloc(self, owner) -> int:
        """Allocate a bit for ``owner`` and return its mask (``1 << bit``).

        Returns 0 when the allocator is at its soft limit with nothing on
        the free list — the caller should :meth:`sweep` and retry (and
        :meth:`grow` if the sweep reclaimed nothing).
        """
        if self._free:
            bit = self._free.pop()
        elif self._next < self.soft_limit:
            bit = self._next
            self._next += 1
        else:
            return 0
        self._owners[bit] = owner
        return 1 << bit

    def sweep(self, live_mask: int) -> int:
        """Reclaim every bit with a retired owner not present in
        ``live_mask``; returns the mask of freed bits.

        ``live_mask`` must be the union of every reachable taint mask —
        any bit missing from it that a live consumer still carries would
        be recycled into a *different* source and corrupt taint tracking.
        """
        freed = 0
        dead = [
            bit
            for bit, owner in self._owners.items()
            if owner.retired and not (live_mask >> bit) & 1
        ]
        for bit in dead:
            del self._owners[bit]
            self._free.append(bit)
            freed |= 1 << bit
        return freed

    def grow(self) -> None:
        """Double the soft limit (sweep reclaimed nothing: every bit is
        genuinely live, so wider masks are the only option)."""
        self.soft_limit *= 2
