"""The unified instruction window (Register Update Unit).

The paper's baseline (Section 2.1) unifies issue resources (reservation
stations) and retirement resources (reorder-buffer entries) in a single
structure, following Sohi's RUU.  Instructions enter in dynamic program
order at dispatch, issue out of order via wakeup/selection, and release
their entry at retirement.
"""

from repro.window.station import Operand, Station
from repro.window.ruu import InstructionWindow
from repro.window.wakeup import can_wake
from repro.window.selection import selection_key, select

__all__ = [
    "Operand",
    "Station",
    "InstructionWindow",
    "can_wake",
    "selection_key",
    "select",
]
