"""Reservation-station state.

A :class:`Station` is the dynamic instance of one instruction occupying a
window entry.  It carries the fields of the paper's modified reservation
station (Section 2.2) — per-operand ready state (four-valued, not the base
processor's single ready bit), tags, the issued/executed flags, and the
predicted flag and value — plus the simulator-side bookkeeping that makes
those fields computable: which *speculation sources* (unresolved predicted
instructions) currently taint each held value, and whether each held value
is architecturally correct.

The taint machinery is the simulator's realization of the verification
network's state: an operand is VALID exactly when it holds a value tainted
by no unresolved prediction; it is PREDICTED when the value came straight
from a producer's prediction broadcast, and SPECULATIVE when it was
computed downstream of one.

Taint sets are **integer bitmasks**: each speculation source owns one bit
index from :class:`~repro.window.taintmask.TaintBitAllocator` (recycled
when the source leaves the machine), so union/subset/clear are single int
operations and delivering a broadcast allocates nothing.  A station also
caches a one-pass summary of its operands' readiness/taint/correctness
state; whoever mutates an operand marks the summary dirty (``in_dirty``)
and the ``inputs_*`` properties recompute it lazily, so the issue and
retire loops stop re-walking the operand list on every query.  Operands
deliberately hold no back-reference to their station: stations and
operands stay acyclic, so a retired station's subgraph is reclaimed by
reference counting the moment the last event releases it.
"""

from __future__ import annotations

from repro.core.value_state import ValueState
from repro.trace.record import TraceRecord


class Operand:
    """One source-operand field of a reservation station."""

    __slots__ = (
        "reg",
        "producer_sid",
        "ready",
        "taints",
        "correct",
        "from_prediction",
        "valid_cycle",
        "via_network",
    )

    def __init__(self, reg: int, producer_sid: int | None):
        self.reg = reg
        #: Station id of the in-flight producer; None = read from the
        #: architected register file at dispatch (always VALID).
        self.producer_sid = producer_sid
        self.ready = producer_sid is None
        #: Bitmask of unresolved speculation sources affecting the held
        #: value (bit indices assigned by the engine's TaintBitAllocator).
        self.taints = 0
        #: Is the held value architecturally correct?  (Simulator ground
        #: truth; the hardware doesn't know this until verification.)
        self.correct = producer_sid is None
        #: Did the held value arrive as a producer's prediction broadcast?
        self.from_prediction = False
        #: Cycle the operand (most recently) became VALID.
        self.valid_cycle = 0
        #: True when validity arrived via a verification-network (or
        #: invalidation) transaction rather than a plain result broadcast —
        #: the condition under which the Verification–Branch and
        #: Verification-Address–Memory-Access latencies apply.
        self.via_network = False

    @property
    def state(self) -> ValueState:
        """The paper's four-valued operand state."""
        if not self.ready:
            return ValueState.INVALID
        if not self.taints:
            return ValueState.VALID
        if self.from_prediction:
            return ValueState.PREDICTED
        return ValueState.SPECULATIVE

    def deliver(
        self,
        *,
        taints: int,
        correct: bool,
        cycle: int,
        from_prediction: bool,
        via_network: bool = False,
    ) -> None:
        """Capture a broadcast value (``taints`` is a source bitmask)."""
        self.ready = True
        self.taints = taints
        self.correct = correct
        self.from_prediction = from_prediction
        if not taints:
            self.valid_cycle = cycle
            self.via_network = via_network

    def clear_taint(self, mask: int, cycle: int) -> bool:
        """Remove resolved speculation source(s); True if now VALID."""
        if self.taints & mask:
            self.taints &= ~mask
            if self.ready and not self.taints:
                self.valid_cycle = cycle
                self.via_network = True
                return True
        return False

    def reset_pending(self) -> None:
        """Revert to waiting for the producer's (re)broadcast."""
        self.ready = False
        self.taints = 0
        self.correct = False
        self.from_prediction = False
        self.via_network = False


class Station:
    """One window entry (unified RS + ROB slot)."""

    __slots__ = (
        "sid",
        "rec",
        "wrong_path",
        "operands",
        "consumers",
        "prev_writer",
        "stamp",
        "predicted",
        "predicted_confident",
        "pred_correct",
        "prediction_resolved",
        "prediction_muted",
        "pending_train",
        "spec_equal",
        "issued",
        "executing",
        "executed",
        "exec_valid_inputs",
        "exec_count",
        "out_ready",
        "out_taints",
        "out_correct",
        "exec_taints",
        "taint_mask",
        "out_valid_cycle",
        "out_via_network",
        "dispatch_cycle",
        "issue_cycle",
        "result_cycle",
        "equality_cycle",
        "verify_cycle",
        "min_issue_cycle",
        "epoch",
        "sel_priority",
        "is_ctrl",
        "branch_mispredicted",
        "mem_done",
        "retired",
        "misspeculations",
        "in_dirty",
        "in_usable",
        "in_taint_union",
        "in_correct",
        "in_spec",
        "wakeup_cycle",
        "invalidate_cycle",
    )

    def __init__(self, sid: int, rec: TraceRecord, wrong_path: bool = False):
        self.sid = sid
        self.rec = rec
        self.wrong_path = wrong_path
        self.operands: list[Operand] = []
        #: (consumer station, operand index) pairs that captured our
        #: output.  Direct references, not sids: consumers are strictly
        #: younger, so the edges keep the graph acyclic (refcount-safe)
        #: while sparing the broadcast loop a window lookup per edge.
        self.consumers: list[tuple["Station", int]] = []
        #: Sid of the previous in-flight writer of our destination
        #: register at dispatch (-1 = none) — the squash-undo link for
        #: the engine's last-writer table.
        self.prev_writer = -1
        #: Scratch mark for the engine's closure walks (monotonically
        #: increasing visit stamp; never reset).
        self.stamp = 0
        # -- value prediction state --
        self.predicted = False  # prediction broadcast to consumers
        self.predicted_confident = False
        self.pred_correct = False  # ground truth (revealed at equality)
        self.prediction_resolved = False
        #: A speculative equality mismatch provisionally "turned off" the
        #: prediction: consumers were invalidated and this station now
        #: broadcasts computed results like an unpredicted instruction.
        #: Final resolution (for retirement) still happens at the first
        #: valid-input execution.
        self.prediction_muted = False
        #: Delayed-timing training record ``(pc, actual, pred_correct,
        #: token, fold16)``, consumed when this station retires.
        self.pending_train = None
        #: Outcome of the speculative equality comparison performed at the
        #: most recent execution (meaningful once ``executed``).
        self.spec_equal = False
        # -- issue/execution state --
        self.issued = False
        self.executing = False
        self.executed = False  # produced a result at least once
        self.exec_valid_inputs = False  # last execution used all-VALID inputs
        self.exec_count = 0
        # -- output state --
        self.out_ready = False
        self.out_taints = 0
        self.out_correct = False
        #: Taints of the inputs consumed by the most recent execution (the
        #: speculation sources the computed result depends on).
        self.exec_taints = 0
        #: This station's own speculation-source bit (0 when it never
        #: broadcast a confident prediction).
        self.taint_mask = 0
        self.out_valid_cycle = 0
        self.out_via_network = False
        # -- timestamps --
        self.dispatch_cycle = 0
        self.issue_cycle = 0
        self.result_cycle = 0  # cycle the latest result becomes usable
        self.equality_cycle = 0
        self.verify_cycle = 0
        self.min_issue_cycle = 0
        #: Bumped on every nullification/squash; pending events from older
        #: epochs are stale and must be ignored.
        self.epoch = 0
        #: Selection priority class (0 = branch/load, 1 = everything
        #: else), precomputed because selection sorts on it every cycle.
        self.sel_priority = 0 if (rec.is_branch or rec.is_load) else 1
        #: Control-transfer instruction needing branch-resolution gating
        #: (checked by the wakeup predicate on every issue evaluation).
        self.is_ctrl = rec.is_branch or rec.is_indirect
        self.branch_mispredicted = False
        self.mem_done = False  # memory access completed (loads)
        self.retired = False
        self.misspeculations = 0
        # -- cached input summary (recomputed lazily when dirty) --
        self.in_dirty = True
        self.in_usable = True
        self.in_taint_union = 0
        self.in_correct = True
        self.in_spec = False
        # -- observability timestamps (written only when a tracer is
        # attached; -1 = not seen) --
        self.wakeup_cycle = -1
        self.invalidate_cycle = -1

    # -- derived state ----------------------------------------------------

    @property
    def seq(self) -> int:
        return self.rec.seq

    def add_operand(self, operand: Operand) -> None:
        """Attach a source operand and dirty the cached input summary."""
        self.operands.append(operand)
        self.in_dirty = True

    def refresh_inputs(self) -> None:
        """Recompute the cached operand summary in one pass."""
        usable = correct = True
        union = 0
        spec = False
        for op in self.operands:
            if op.ready:
                taints = op.taints
                if taints:
                    union |= taints
                    spec = True
                if not op.correct:
                    correct = False
            else:
                usable = False
                correct = False
        self.in_usable = usable
        self.in_taint_union = union
        self.in_correct = correct
        self.in_spec = spec
        self.in_dirty = False

    def input_states(self) -> list[ValueState]:
        return [op.state for op in self.operands]

    @property
    def inputs_usable(self) -> bool:
        """All operands carry some value (valid/predicted/speculative)."""
        if self.in_dirty:
            self.refresh_inputs()
        return self.in_usable

    @property
    def inputs_valid(self) -> bool:
        """All operands VALID."""
        if self.in_dirty:
            self.refresh_inputs()
        return self.in_usable and not self.in_taint_union

    @property
    def inputs_correct(self) -> bool:
        """Simulator ground truth: all held values correct."""
        if self.in_dirty:
            self.refresh_inputs()
        return self.in_correct

    @property
    def speculative_inputs(self) -> bool:
        if self.in_dirty:
            self.refresh_inputs()
        return self.in_spec

    def inputs_valid_since(self) -> int:
        """Latest cycle at which an operand became VALID (0 when none)."""
        return max((op.valid_cycle for op in self.operands), default=0)

    def nullify(self, min_issue_cycle: int) -> None:
        """The paper's wakeup nullification semantics (Section 3.4):
        remove the effects of previous execution and enable a future
        wakeup by resetting the issued flag."""
        self.issued = False
        self.executing = False
        self.executed = False
        self.exec_valid_inputs = False
        # An unmuted prediction broadcast still stands for consumers.
        live_prediction = self.predicted and not self.prediction_muted
        self.out_ready = live_prediction
        self.out_taints = self.taint_mask if live_prediction else 0
        self.out_correct = False
        self.mem_done = False
        self.min_issue_cycle = max(self.min_issue_cycle, min_issue_cycle)
        self.epoch += 1
        self.misspeculations += 1

    def __repr__(self) -> str:
        return (
            f"Station(sid={self.sid}, seq={self.rec.seq}, "
            f"op={self.rec.opcode.mnemonic}, issued={self.issued}, "
            f"executed={self.executed}, retired={self.retired})"
        )
