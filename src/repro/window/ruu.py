"""The unified instruction window (RUU) container."""

from __future__ import annotations

from typing import Iterator

from repro.window.station import Station


class InstructionWindow:
    """Program-ordered window of in-flight stations.

    Entries are keyed by station id (monotonically increasing with dynamic
    program order, wrong-path instructions included), so iteration order is
    age order and the head is the oldest unretired instruction.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        # A plain dict: insertion order is age order (sids are monotonic),
        # and plain-dict mutation is measurably cheaper than OrderedDict's
        # linked-list maintenance on the dispatch/retire hot path.
        self._stations: dict[int, Station] = {}
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._stations)

    def __iter__(self) -> Iterator[Station]:
        return iter(self._stations.values())

    def __contains__(self, sid: int) -> bool:
        return sid in self._stations

    @property
    def full(self) -> bool:
        return len(self._stations) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._stations)

    def get(self, sid: int) -> Station | None:
        return self._stations.get(sid)

    def slot_of(self, sid: int) -> int:
        """The physical window slot a station id maps to.

        Sids are monotonic while the window recycles ``capacity`` entries,
        so ``sid % capacity`` is the stable slot index — the per-station
        track used by the observability timeline export.
        """
        return sid % self.capacity

    def head(self) -> Station | None:
        """Oldest station, or None when empty."""
        if not self._stations:
            return None
        return next(iter(self._stations.values()))

    def oldest(self, count: int) -> list[Station]:
        """The ``count`` oldest stations (for retirement-based schemes)."""
        out: list[Station] = []
        for station in self._stations.values():
            if len(out) >= count:
                break
            out.append(station)
        return out

    def insert(self, station: Station) -> None:
        """Dispatch a station into the window (program order enforced)."""
        if self.full:
            raise RuntimeError("window full")
        if self._stations:
            last_sid = next(reversed(self._stations))
            if station.sid <= last_sid:
                raise ValueError(
                    f"window insertion out of order: {station.sid} after {last_sid}"
                )
        self._stations[station.sid] = station
        if len(self._stations) > self.peak_occupancy:
            self.peak_occupancy = len(self._stations)

    def release_head(self) -> Station:
        """Retire the oldest station and free its entry."""
        if not self._stations:
            raise RuntimeError("window empty")
        return self._stations.pop(next(iter(self._stations)))

    def squash_younger_than(self, sid: int) -> list[Station]:
        """Remove every station younger than ``sid``; returns the removed
        stations, youngest first."""
        doomed = [s for s in self._stations if s > sid]
        removed: list[Station] = []
        for victim_sid in reversed(doomed):
            removed.append(self._stations.pop(victim_sid))
        return removed
