"""Dependence-closure computations behind verification schemes.

A verification transaction must reach the direct and indirect successors
of a resolved prediction.  The *shape* of the traversal is what separates
the Section 3.2 schemes: the flattened (parallel) network touches the whole
closure at once, while hierarchical verification advances one dependence
level per cycle.  These helpers compute the closure and its levels from a
successor function, independent of the engine's data structures, so they
can be tested against plain graphs.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, TypeVar

Node = TypeVar("Node", bound=Hashable)


def closure(
    root: Node,
    successors: Callable[[Node], Iterable[Node]],
    on_visit: Callable[[Node], None] | None = None,
) -> set[Node]:
    """All direct and indirect successors of ``root`` (excluding it).

    ``on_visit`` is an optional observability hook called once per node
    as it joins the closure (visit order, not dependence order).
    """
    seen: set[Node] = set()
    frontier = list(successors(root))
    while frontier:
        node = frontier.pop()
        if node in seen or node == root:
            continue
        seen.add(node)
        if on_visit is not None:
            on_visit(node)
        frontier.extend(successors(node))
    return seen


def successor_levels(
    root: Node,
    successors: Callable[[Node], Iterable[Node]],
    on_level: Callable[[int, set[Node]], None] | None = None,
) -> list[set[Node]]:
    """Successors of ``root`` grouped by minimum dependence distance.

    ``result[0]`` is the set of direct successors, ``result[1]`` their
    successors not already reached, and so on — the wave schedule of a
    hierarchical verification/invalidation that advances one level per
    transaction.  ``on_level`` is an optional observability hook called
    with ``(depth, nodes)`` as each level is closed.
    """
    levels: list[set[Node]] = []
    seen: set[Node] = {root}
    frontier = [n for n in successors(root) if n != root]
    while frontier:
        level = {n for n in frontier if n not in seen}
        if not level:
            break
        if on_level is not None:
            on_level(len(levels), level)
        levels.append(level)
        seen |= level
        next_frontier: list[Node] = []
        for node in level:
            next_frontier.extend(n for n in successors(node) if n not in seen)
        frontier = next_frontier
    return levels
