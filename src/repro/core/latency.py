"""The latency variables of a speculative-execution model (paper Section 4).

"A model manifests itself in terms of at least the following latency
variables that describe the latency required between microarchitectural
events influenced by speculative execution.  The latency variables are
defined from the end of the first event to the end of the second event and
should be given in terms of cycles."

The paper notes the three-way split of misspeculation handling —
Execution–Equality, Equality–Invalidation, Invalidation–Reissue — as a
contribution: previous work treated misspeculation as a single one-cycle
event.  :class:`LatencyModel` stores the split values; the combined
Execution–Equality–Verification / –Invalidation numbers the paper's model
table reports are exposed as derived properties.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class LatencyModel:
    """Cycle latencies between value-speculation events.

    Attributes map one-to-one onto the paper's latency variables:

    * ``exec_to_equality`` — **Execution – Equality**: cycles to determine
      whether the prediction and the computed value are equal, measured
      from the end of execution.
    * ``equality_to_verification`` — **Equality – Verification**: cycles
      until the direct and indirect successors of a *correctly* predicted
      instruction are informed their operands are valid.
    * ``equality_to_invalidation`` — **Equality – Invalidation**: same for
      an *incorrect* prediction.
    * ``verification_to_free_issue`` — **Verification – Free issue
      resource**: cycles after verification before the reservation station
      can be released.
    * ``verification_to_free_retirement`` — **Verification – Free
      retirement resource**: same for the reorder-buffer entry.  With the
      unified window of the paper's microarchitecture both releases happen
      together at the later of the two.
    * ``invalidation_to_reissue`` — **Invalidation – Reissue**: cycles
      after invalidation before a misspeculated instruction can reissue.
    * ``verification_to_branch`` — **Verification – Branch**: cycles after
      the inputs of a branch are verified before the branch can issue
      (pertinent because branches resolve only with valid operands).
    * ``verification_addr_to_mem_access`` — **Verification Address –
      Memory Access**: cycles after a speculative address generation
      verifies before the access may issue to memory.
    """

    exec_to_equality: int = 0
    equality_to_verification: int = 0
    equality_to_invalidation: int = 0
    verification_to_free_issue: int = 1
    verification_to_free_retirement: int = 1
    invalidation_to_reissue: int = 0
    verification_to_branch: int = 0
    verification_addr_to_mem_access: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"latency variable {f.name} must be a non-negative "
                    f"integer, got {value!r}"
                )

    # -- combined views (how the paper's model table reports them) ----------

    @property
    def exec_to_verification(self) -> int:
        """Execution – Equality – Verification, as a single value."""
        return self.exec_to_equality + self.equality_to_verification

    @property
    def exec_to_invalidation(self) -> int:
        """Execution – Equality – Invalidation, as a single value."""
        return self.exec_to_equality + self.equality_to_invalidation

    @classmethod
    def from_combined(
        cls,
        exec_eq_invalidation: int,
        exec_eq_verification: int,
        verification_free_issue: int = 1,
        verification_free_retirement: int = 1,
        invalidation_reissue: int = 0,
        verification_branch: int = 0,
        verification_addr_mem: int = 0,
    ) -> "LatencyModel":
        """Build from the combined Execution–Equality–X numbers the paper's
        model table uses (equality itself attributed zero cycles)."""
        return cls(
            exec_to_equality=0,
            equality_to_verification=exec_eq_verification,
            equality_to_invalidation=exec_eq_invalidation,
            verification_to_free_issue=verification_free_issue,
            verification_to_free_retirement=verification_free_retirement,
            invalidation_to_reissue=invalidation_reissue,
            verification_to_branch=verification_branch,
            verification_addr_to_mem_access=verification_addr_mem,
        )

    def table_rows(self) -> list[tuple[str, int]]:
        """Rows in the shape of the paper's Section 4.1 model table."""
        return [
            ("Execution - Equality - Invalidation", self.exec_to_invalidation),
            ("Execution - Equality - Verification", self.exec_to_verification),
            ("Verification - Free Issue Resource", self.verification_to_free_issue),
            (
                "Verification - Free Retirement Res.",
                self.verification_to_free_retirement,
            ),
            ("Invalidation - Reissue", self.invalidation_to_reissue),
            ("Verification - Branch", self.verification_to_branch),
            (
                "Verification Address - Mem. Access",
                self.verification_addr_to_mem_access,
            ),
        ]


#: The paper's three example models (Section 4.1): a spectrum of optimism.
SUPER_LATENCIES = LatencyModel.from_combined(
    exec_eq_invalidation=0,
    exec_eq_verification=0,
    verification_free_issue=1,
    verification_free_retirement=1,
    invalidation_reissue=0,
    verification_branch=0,
    verification_addr_mem=0,
)

GREAT_LATENCIES = LatencyModel.from_combined(
    exec_eq_invalidation=0,
    exec_eq_verification=0,
    verification_free_issue=1,
    verification_free_retirement=1,
    invalidation_reissue=1,
    verification_branch=1,
    verification_addr_mem=1,
)

GOOD_LATENCIES = LatencyModel.from_combined(
    exec_eq_invalidation=1,
    exec_eq_verification=1,
    verification_free_issue=1,
    verification_free_retirement=1,
    invalidation_reissue=1,
    verification_branch=1,
    verification_addr_mem=1,
)

#: Reference point for sanity tests: with no predictions ever made, any
#: latency assignment must reproduce base-processor timing exactly; this
#: instance exists so tests can say so explicitly.
BASE_EQUIVALENT_LATENCIES = SUPER_LATENCIES
