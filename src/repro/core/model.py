"""The speculative-execution model: variables + latencies, with the
consistency checks Section 4 implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.latency import (
    GOOD_LATENCIES,
    GREAT_LATENCIES,
    SUPER_LATENCIES,
    LatencyModel,
)
from repro.core.variables import (
    PAPER_VARIABLES,
    BranchResolution,
    MemoryResolution,
    ModelVariables,
)


@dataclass(frozen=True)
class SpeculativeExecutionModel:
    """A complete, self-consistent description of a value-speculative
    microarchitecture in the paper's terms.

    "When describing a speculative execution the following information
    should be provided: a specific list of variables and their values, and
    manifestations of speculative execution in terms of latency between
    different microarchitectural events."
    """

    name: str
    variables: ModelVariables = PAPER_VARIABLES
    latencies: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self) -> None:
        # Latencies that are "not relevant" to a variable assignment must
        # be zero so a model never silently carries dead parameters
        # (Section 4: "These latencies are not all relevant to every
        # speculative execution model").
        if (
            self.variables.branch_resolution is BranchResolution.SPECULATIVE_ALLOWED
            and self.latencies.verification_to_branch
        ):
            raise ValueError(
                "verification_to_branch is irrelevant when branches may "
                "resolve with speculative operands; set it to 0"
            )
        if (
            self.variables.memory_resolution is MemoryResolution.SPECULATIVE_ALLOWED
            and self.latencies.verification_addr_to_mem_access
        ):
            raise ValueError(
                "verification_addr_to_mem_access is irrelevant when memory "
                "may be accessed with speculative addresses; set it to 0"
            )

    def describe(self) -> str:
        """Render the two tables of Section 4 for this model."""
        lines = [f"speculative-execution model: {self.name}", "", "model variables:"]
        for label, value in self.variables.table_rows():
            lines.append(f"  {label:<22} {value}")
        lines.append("")
        lines.append("latency variables (cycles):")
        for label, value in self.latencies.table_rows():
            lines.append(f"  {label:<38} {value}")
        return "\n".join(lines)


#: Section 4.1's example models.  All three share the paper's variable
#: assignment and differ only in latencies: super is the most optimistic,
#: good the most pessimistic, great differs from good only in
#: verification/invalidation latency (1 -> 0).
SUPER_MODEL = SpeculativeExecutionModel("super", PAPER_VARIABLES, SUPER_LATENCIES)
GREAT_MODEL = SpeculativeExecutionModel("great", PAPER_VARIABLES, GREAT_LATENCIES)
GOOD_MODEL = SpeculativeExecutionModel("good", PAPER_VARIABLES, GOOD_LATENCIES)


def named_models() -> dict[str, SpeculativeExecutionModel]:
    """The paper's three models by name."""
    return {m.name: m for m in (SUPER_MODEL, GREAT_MODEL, GOOD_MODEL)}
