"""The model variables of a speculative-execution model (paper Section 4).

Each variable selects a mechanism/policy for one of the microarchitectural
functions value speculation touches.  The combinations span the design
space Section 3 surveys; :data:`PAPER_VARIABLES` is the configuration the
paper evaluates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class WakeupPolicy(enum.Enum):
    """When may an instruction wake up (become a selection candidate)?

    * ``VALID_ONLY`` — base-processor behaviour: all operands VALID.
    * ``VALID_OR_SPECULATIVE`` — the paper's choice: operands valid and/or
      speculative/predicted, and the instruction has not issued.
    * ``ANY_VALUE`` — wake up whenever a new value arrives, ignoring the
      speculative status of operands (the Rotenberg-style scheme of the
      Sodani/Sohi comparison [38]): may reissue misspeculated instructions
      faster but also issues needlessly.
    """

    VALID_ONLY = "valid-only"
    VALID_OR_SPECULATIVE = "valid-or-speculative"
    ANY_VALUE = "any-value"


class SelectionPolicy(enum.Enum):
    """How are woken instructions prioritized for issue?

    * ``PAPER`` — highest priority to branch and load instructions, then
      oldest-first; non-speculative instructions preferred over
      speculative (Sections 2.1 and 3.5).
    * ``OLDEST_FIRST`` — pure dynamic program order.
    * ``SPECULATIVE_EQUAL`` — like ``PAPER`` but without the
      non-speculative preference.
    """

    PAPER = "paper"
    OLDEST_FIRST = "oldest-first"
    SPECULATIVE_EQUAL = "speculative-equal"


class BranchResolution(enum.Enum):
    """May branches resolve with speculative/predicted operands?"""

    VALID_ONLY = "valid-only"  # the paper's choice
    SPECULATIVE_ALLOWED = "speculative-allowed"


class MemoryResolution(enum.Enum):
    """May memory instructions access memory with speculative addresses?"""

    VALID_ONLY = "valid-only"  # the paper's choice
    SPECULATIVE_ALLOWED = "speculative-allowed"


class InvalidationScheme(enum.Enum):
    """How misspeculated successors learn their operands were wrong
    (Section 3.1).

    * ``SELECTIVE_PARALLEL`` — flattened-hierarchical: all direct and
      indirect successors invalidated in one transaction (the
      verification-network functionality the paper assumes).
    * ``SELECTIVE_HIERARCHICAL`` — one dependence level per transaction,
      piggybacking on tag broadcast.
    * ``COMPLETE`` — treat a value misprediction like a branch
      misprediction: squash all younger instructions.
    """

    SELECTIVE_PARALLEL = "selective-parallel"
    SELECTIVE_HIERARCHICAL = "selective-hierarchical"
    COMPLETE = "complete"


class VerificationScheme(enum.Enum):
    """How successors of a correctly predicted instruction learn their
    operands are valid (Section 3.2).

    * ``PARALLEL_NETWORK`` — flattened-hierarchical verification over a
      dedicated network; all successors validated in parallel.
    * ``HIERARCHICAL`` — direct successors first, then theirs, one level
      per cycle.
    * ``RETIREMENT_BASED`` — verification overloaded onto retirement: only
      the w oldest instructions can validate per cycle.
    * ``HYBRID`` — retirement-based releasing plus hierarchical
      misprediction detection.
    """

    PARALLEL_NETWORK = "parallel-network"
    HIERARCHICAL = "hierarchical"
    RETIREMENT_BASED = "retirement-based"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class ModelVariables:
    """The complete model-variable assignment for one microarchitecture."""

    wakeup: WakeupPolicy = WakeupPolicy.VALID_OR_SPECULATIVE
    selection: SelectionPolicy = SelectionPolicy.PAPER
    branch_resolution: BranchResolution = BranchResolution.VALID_ONLY
    memory_resolution: MemoryResolution = MemoryResolution.VALID_ONLY
    invalidation: InvalidationScheme = InvalidationScheme.SELECTIVE_PARALLEL
    verification: VerificationScheme = VerificationScheme.PARALLEL_NETWORK

    def table_rows(self) -> list[tuple[str, str]]:
        """Rows in the shape of the paper's Section 4 variables table."""
        return [
            ("WakeUp", self.wakeup.value),
            ("Selection", self.selection.value),
            ("Branch Resolution", self.branch_resolution.value),
            ("Memory Resolution", self.memory_resolution.value),
            ("Invalidation", self.invalidation.value),
            ("Verification", self.verification.value),
        ]


#: The variable assignment evaluated throughout the paper: wakeup on valid
#: or speculative operands, the branch/load-first oldest-first selection
#: with non-speculative preference, branches and memory restricted to valid
#: operands, and flattened-hierarchical (parallel) verification and
#: invalidation over the verification network.
PAPER_VARIABLES = ModelVariables()
