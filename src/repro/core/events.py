"""Typed records of speculation-related microarchitectural events.

The timing engine emits these for pipeline visualization (the Figure 1
reproduction) and for debugging; they are not part of the hot simulation
path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SpecEventKind(enum.Enum):
    """Kinds of per-instruction pipeline events."""

    FETCH = "F"
    DISPATCH = "D"
    PREDICT = "P"  # value prediction supplied at dispatch
    WAKEUP = "w"
    ISSUE = "I"
    EXECUTE = "EX"
    WRITE = "W"  # result written to the RS / broadcast
    EQUALITY = "EQ"
    VERIFY = "V"
    INVALIDATE = "X"
    REISSUE = "RI"
    RETIRE = "R"
    SQUASH = "SQ"
    RELEASE = "FR"  # window entry freed


@dataclass(frozen=True)
class SpecEvent:
    """One event: which instruction, what happened, when."""

    seq: int
    kind: SpecEventKind
    cycle: int
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"@{self.cycle} i{self.seq} {self.kind.name}{suffix}"


class EventLog:
    """Append-only event log with per-instruction retrieval."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[SpecEvent] = []

    def emit(self, seq: int, kind: SpecEventKind, cycle: int, detail: str = "") -> None:
        if self.enabled:
            self.events.append(SpecEvent(seq, kind, cycle, detail))

    def for_instruction(self, seq: int) -> list[SpecEvent]:
        return [e for e in self.events if e.seq == seq]

    def by_cycle(self) -> dict[int, list[SpecEvent]]:
        out: dict[int, list[SpecEvent]] = {}
        for event in self.events:
            out.setdefault(event.cycle, []).append(event)
        return out
