"""Typed records of speculation-related microarchitectural events.

The timing engine emits these for pipeline visualization (the Figure 1
reproduction) and for debugging; they are not part of the hot simulation
path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LatencyEventKind(enum.Enum):
    """The paper's eight named latency events (Section 3 / Section 4).

    Each kind corresponds one-to-one to a :class:`~repro.core.latency.
    LatencyModel` variable: a *latency event* is one measured occurrence of
    the delay that variable models, from the end of its first
    microarchitectural event to the end of its second.  The observability
    subsystem (:mod:`repro.obs`) records these per instruction so the
    distributions behind the end-of-run counters become visible.
    """

    EXEC_EQUALITY = "exec-equality"
    EQUALITY_VERIFICATION = "equality-verification"
    EQUALITY_INVALIDATION = "equality-invalidation"
    VERIFICATION_FREE_ISSUE = "verification-free-issue"
    VERIFICATION_FREE_RETIREMENT = "verification-free-retirement"
    INVALIDATION_REISSUE = "invalidation-reissue"
    VERIFICATION_BRANCH = "verification-branch"
    VERIFICATION_ADDR_MEM_ACCESS = "verification-addr-mem-access"

    @property
    def paper_name(self) -> str:
        return _PAPER_NAMES[self]

    @property
    def latency_field(self) -> str:
        """The ``LatencyModel`` field this event kind instantiates."""
        return _LATENCY_FIELDS[self]


#: Section 3 names, as the paper prints them.
_PAPER_NAMES: dict[LatencyEventKind, str] = {
    LatencyEventKind.EXEC_EQUALITY: "Execution - Equality",
    LatencyEventKind.EQUALITY_VERIFICATION: "Equality - Verification",
    LatencyEventKind.EQUALITY_INVALIDATION: "Equality - Invalidation",
    LatencyEventKind.VERIFICATION_FREE_ISSUE:
        "Verification - Free Issue Resource",
    LatencyEventKind.VERIFICATION_FREE_RETIREMENT:
        "Verification - Free Retirement Resource",
    LatencyEventKind.INVALIDATION_REISSUE: "Invalidation - Reissue",
    LatencyEventKind.VERIFICATION_BRANCH: "Verification - Branch",
    LatencyEventKind.VERIFICATION_ADDR_MEM_ACCESS:
        "Verification Address - Memory Access",
}

_LATENCY_FIELDS: dict[LatencyEventKind, str] = {
    LatencyEventKind.EXEC_EQUALITY: "exec_to_equality",
    LatencyEventKind.EQUALITY_VERIFICATION: "equality_to_verification",
    LatencyEventKind.EQUALITY_INVALIDATION: "equality_to_invalidation",
    LatencyEventKind.VERIFICATION_FREE_ISSUE: "verification_to_free_issue",
    LatencyEventKind.VERIFICATION_FREE_RETIREMENT:
        "verification_to_free_retirement",
    LatencyEventKind.INVALIDATION_REISSUE: "invalidation_to_reissue",
    LatencyEventKind.VERIFICATION_BRANCH: "verification_to_branch",
    LatencyEventKind.VERIFICATION_ADDR_MEM_ACCESS:
        "verification_addr_to_mem_access",
}


class SpecEventKind(enum.Enum):
    """Kinds of per-instruction pipeline events."""

    FETCH = "F"
    DISPATCH = "D"
    PREDICT = "P"  # value prediction supplied at dispatch
    WAKEUP = "w"
    ISSUE = "I"
    EXECUTE = "EX"
    WRITE = "W"  # result written to the RS / broadcast
    EQUALITY = "EQ"
    VERIFY = "V"
    INVALIDATE = "X"
    REISSUE = "RI"
    RETIRE = "R"
    SQUASH = "SQ"
    RELEASE = "FR"  # window entry freed


@dataclass(frozen=True)
class SpecEvent:
    """One event: which instruction, what happened, when."""

    seq: int
    kind: SpecEventKind
    cycle: int
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"@{self.cycle} i{self.seq} {self.kind.name}{suffix}"


class EventLog:
    """Append-only event log with per-instruction retrieval."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[SpecEvent] = []

    def emit(self, seq: int, kind: SpecEventKind, cycle: int, detail: str = "") -> None:
        if self.enabled:
            self.events.append(SpecEvent(seq, kind, cycle, detail))

    def for_instruction(self, seq: int) -> list[SpecEvent]:
        return [e for e in self.events if e.seq == seq]

    def by_cycle(self) -> dict[int, list[SpecEvent]]:
        out: dict[int, list[SpecEvent]] = {}
        for event in self.events:
            out.setdefault(event.cycle, []).append(event)
        return out
