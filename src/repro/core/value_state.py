"""The four-state value/operand lattice (paper Section 2.2).

"With value-speculation, an input operand may be: speculative, predicted,
valid, and invalid."

* **INVALID** — no value available; the instruction must wait.
* **PREDICTED** — the value came directly from the value predictor.
* **SPECULATIVE** — the value is the result of computation(s) that included
  a predicted value.
* **VALID** — the value was read from architected state or computed from
  only valid inputs; it is architecturally correct.

The lattice order used for issue decisions is
``INVALID < {PREDICTED, SPECULATIVE} < VALID``: valid dominates, and
anything touched by prediction sits between unavailable and certain.
"""

from __future__ import annotations

import enum
from typing import Iterable


class ValueState(enum.Enum):
    """State of a value held in a reservation-station operand field."""

    INVALID = "invalid"
    PREDICTED = "predicted"
    SPECULATIVE = "speculative"
    VALID = "valid"

    @property
    def usable(self) -> bool:
        """Can an instruction execute with this operand (possibly
        speculatively)?  Everything but INVALID carries a value."""
        return self is not ValueState.INVALID

    @property
    def certain(self) -> bool:
        """Is the value architecturally correct for sure?"""
        return self is ValueState.VALID

    @property
    def speculative_kind(self) -> bool:
        """PREDICTED or SPECULATIVE — carries a value that may be wrong."""
        return self in (ValueState.PREDICTED, ValueState.SPECULATIVE)


def merge_states(states: Iterable[ValueState]) -> ValueState:
    """Combine operand states into the weakest-link summary.

    Any INVALID input dominates; otherwise any speculative-kind input makes
    the summary SPECULATIVE; all-VALID stays VALID.  An empty collection is
    VALID (an instruction with no register sources has certain inputs).
    """
    summary = ValueState.VALID
    for state in states:
        if state is ValueState.INVALID:
            return ValueState.INVALID
        if state.speculative_kind:
            summary = ValueState.SPECULATIVE
    return summary


def output_state(input_states: Iterable[ValueState], *, predicted: bool) -> ValueState:
    """State of an instruction's output under the paper's definitions.

    A value is *predicted* if it is obtained directly from the value
    predictor, *speculative* if it is the result of computation(s) that
    included a predicted value, and *valid* if it is the result of a
    computation that involved only valid inputs.  ``predicted`` refers to
    the output being supplied by the predictor (before execution).
    """
    if predicted:
        return ValueState.PREDICTED
    merged = merge_states(input_states)
    if merged is ValueState.INVALID:
        return ValueState.INVALID
    if merged.speculative_kind:
        return ValueState.SPECULATIVE
    return ValueState.VALID
