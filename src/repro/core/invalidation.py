"""Invalidation-wave planning for the Section 3.1 schemes."""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, TypeVar

from repro.core.variables import InvalidationScheme
from repro.core.verification import closure, successor_levels

Node = TypeVar("Node", bound=Hashable)


def invalidation_waves(
    scheme: InvalidationScheme,
    root: Node,
    successors: Callable[[Node], Iterable[Node]],
    on_wave: Callable[[int, set[Node]], None] | None = None,
) -> list[set[Node]]:
    """Which successors are invalidated in which transaction.

    Returns a list of waves; wave ``k`` completes ``k`` transactions after
    the first (the engine assigns each transaction its cycle cost).
    ``on_wave`` is an optional observability hook called with
    ``(wave_index, nodes)`` per wave.

    * ``SELECTIVE_PARALLEL`` — one wave containing the full closure.
    * ``SELECTIVE_HIERARCHICAL`` — one wave per dependence level.
    * ``COMPLETE`` — modeled at a different level: complete invalidation
      squashes all younger instructions regardless of dependence, so the
      engine handles it like a branch misprediction.  Asking for waves is
      a caller error.
    """
    if scheme is InvalidationScheme.COMPLETE:
        raise ValueError(
            "complete invalidation squashes by age, not dependence; "
            "the engine must take the squash path"
        )
    if scheme is InvalidationScheme.SELECTIVE_PARALLEL:
        everything = closure(root, successors)
        if on_wave is not None and everything:
            on_wave(0, everything)
        return [everything] if everything else []
    return successor_levels(root, successors, on_level=on_wave)
