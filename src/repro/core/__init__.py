"""The paper's primary contribution: a formal model of value-speculative
microarchitectures.

Section 4 of the paper proposes describing a value-speculative machine as a
*speculative-execution model*: a set of **model variables** (which wakeup,
selection, branch/memory-resolution, invalidation and verification policies
are in effect — :mod:`repro.core.variables`) plus a set of **latency
variables** (the cycle counts separating the microarchitectural events that
value speculation introduces — :mod:`repro.core.latency`).

This package also provides the supporting machinery those definitions imply:
the four-state operand/value lattice (:mod:`repro.core.value_state`), the
dependence-closure computations behind verification and invalidation
(:mod:`repro.core.verification`, :mod:`repro.core.invalidation`), and typed
event records used for pipeline visualization (:mod:`repro.core.events`).

The three named models the paper evaluates — **super**, **great** and
**good** — are exported as :data:`SUPER_MODEL`, :data:`GREAT_MODEL` and
:data:`GOOD_MODEL`.
"""

from repro.core.value_state import ValueState, merge_states, output_state
from repro.core.latency import (
    LatencyModel,
    SUPER_LATENCIES,
    GREAT_LATENCIES,
    GOOD_LATENCIES,
    BASE_EQUIVALENT_LATENCIES,
)
from repro.core.variables import (
    ModelVariables,
    WakeupPolicy,
    SelectionPolicy,
    BranchResolution,
    MemoryResolution,
    InvalidationScheme,
    VerificationScheme,
    PAPER_VARIABLES,
)
from repro.core.model import (
    SpeculativeExecutionModel,
    SUPER_MODEL,
    GREAT_MODEL,
    GOOD_MODEL,
    named_models,
)
from repro.core.events import SpecEventKind, SpecEvent
from repro.core.verification import successor_levels, closure
from repro.core.invalidation import invalidation_waves

__all__ = [
    "ValueState",
    "merge_states",
    "output_state",
    "LatencyModel",
    "SUPER_LATENCIES",
    "GREAT_LATENCIES",
    "GOOD_LATENCIES",
    "BASE_EQUIVALENT_LATENCIES",
    "ModelVariables",
    "WakeupPolicy",
    "SelectionPolicy",
    "BranchResolution",
    "MemoryResolution",
    "InvalidationScheme",
    "VerificationScheme",
    "PAPER_VARIABLES",
    "SpeculativeExecutionModel",
    "SUPER_MODEL",
    "GREAT_MODEL",
    "GOOD_MODEL",
    "named_models",
    "SpecEventKind",
    "SpecEvent",
    "successor_levels",
    "closure",
    "invalidation_waves",
]
