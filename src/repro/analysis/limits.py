"""Window-constrained ILP limit study.

The classic limit-study methodology behind the paper's motivation (and
behind "Exceeding the dataflow limit via value prediction"): replay a
trace through an idealized scheduler that honours only

* true register dependences (optionally dissolved by perfect value
  prediction),
* memory dependences (store → overlapping load; never dissolved —
  the loaded value still comes from somewhere),
* functional-unit latencies,
* an instruction window of ``window`` entries with in-order entry/exit
  (instruction *i* cannot issue before instruction *i − window* has
  finished), and
* an issue width of ``width`` per cycle,

with perfect caches, perfect branch prediction and unlimited functional
units.  The resulting cycle counts bound what any real machine of that
window/width could do, and the perfect-VP variant bounds what value
speculation could ever add at that geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.funits import execution_latency
from repro.trace.record import TraceRecord

_LOAD_ACCESS = 2  # idealized L1 hit on top of address generation


@dataclass(frozen=True)
class LimitPoint:
    """The limit study's answer for one (window, width) geometry."""

    window: int
    width: int
    cycles: int
    cycles_perfect_vp: int
    instructions: int

    @property
    def ilp(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def ilp_perfect_vp(self) -> float:
        if not self.cycles_perfect_vp:
            return 0.0
        return self.instructions / self.cycles_perfect_vp

    @property
    def vp_speedup_bound(self) -> float:
        """Upper bound on value-speculation speedup at this geometry."""
        if not self.cycles_perfect_vp:
            return 1.0
        return self.cycles / self.cycles_perfect_vp


def _schedule(
    trace: list[TraceRecord],
    window: int,
    width: int,
    *,
    perfect_vp: bool,
) -> int:
    """Greedy in-order-dispatch list scheduling; returns total cycles."""
    finish: list[int] = [0] * len(trace)
    last_writer: dict[int, int] = {}
    store_finish: dict[int, int] = {}
    issued_in_cycle: dict[int, int] = {}

    for index, rec in enumerate(trace):
        ready = 0
        if not perfect_vp:
            for reg in rec.src_regs:
                producer = last_writer.get(reg)
                if producer is not None:
                    ready = max(ready, finish[producer])
        else:
            # Perfect VP dissolves register edges into *register-writing*
            # producers only: a branch/store consuming a value still needs
            # it, but it arrives predicted — free — so no edge either.
            # Memory edges below still apply.
            pass
        chunks: tuple[int, ...] = ()
        if rec.is_memory and rec.mem_addr is not None:
            first = rec.mem_addr >> 3
            last = (rec.mem_addr + (rec.mem_size or 1) - 1) >> 3
            chunks = tuple(range(first, last + 1))
        if rec.is_load:
            for chunk in chunks:
                ready = max(ready, store_finish.get(chunk, 0))
        # window constraint: entry i needs entry i-window gone
        if index >= window:
            ready = max(ready, finish[index - window])
        # width constraint: find the first cycle >= ready with a free slot
        cycle = ready
        while issued_in_cycle.get(cycle, 0) >= width:
            cycle += 1
        issued_in_cycle[cycle] = issued_in_cycle.get(cycle, 0) + 1
        latency = execution_latency(rec.opclass)
        if rec.is_load:
            latency += _LOAD_ACCESS
        finish[index] = cycle + latency
        if rec.is_store:
            for chunk in chunks:
                store_finish[chunk] = finish[index]
        if rec.writes_register:
            last_writer[rec.dest_reg] = index
    return max(finish, default=0)


def limit_study(
    trace: list[TraceRecord],
    geometries: tuple[tuple[int, int], ...] = (
        (24, 4),
        (48, 8),
        (96, 16),
        (512, 64),
    ),
) -> list[LimitPoint]:
    """Compute base and perfect-VP ILP limits for each (window, width)."""
    if not geometries:
        raise ValueError("no geometries given")
    points = []
    for window, width in geometries:
        if window <= 0 or width <= 0:
            raise ValueError("window and width must be positive")
        points.append(
            LimitPoint(
                window=window,
                width=width,
                cycles=_schedule(trace, window, width, perfect_vp=False),
                cycles_perfect_vp=_schedule(
                    trace, window, width, perfect_vp=True
                ),
                instructions=len(trace),
            )
        )
    return points


def render_limit_study(points: list[LimitPoint], label: str = "") -> str:
    """Text table of the limit study."""
    lines = []
    if label:
        lines.append(f"ILP limit study: {label}")
    lines.append(
        f"{'window/width':>14s} {'ILP':>8s} {'ILP+VP':>8s} {'VP bound':>9s}"
    )
    for point in points:
        lines.append(
            f"{point.window:>8d}/{point.width:<5d} {point.ilp:8.2f} "
            f"{point.ilp_perfect_vp:8.2f} {point.vp_speedup_bound:8.2f}x"
        )
    return "\n".join(lines)
