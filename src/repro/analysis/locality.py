"""Value locality measurement [Lipasti et al. 1996].

Value locality is "the likelihood of a previously-seen value recurring" —
measured here as hit rates against per-instruction last-N-value windows,
plus distinct-value working-set sizes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.trace.record import TraceRecord


@dataclass
class LocalityReport:
    """Value-locality summary for one trace."""

    eligible: int
    #: hit rate against the most recent N distinct values, for each N
    window_hit_rates: dict[int, float]
    #: number of static instructions producing exactly one distinct value
    constant_pcs: int
    #: mean distinct values per static instruction
    mean_distinct_values: float
    distinct_by_pc: dict[int, int] = field(default_factory=dict)


def analyze_locality(
    trace: list[TraceRecord], windows: tuple[int, ...] = (1, 4, 16)
) -> LocalityReport:
    """Measure value locality over ``trace`` for the given history windows."""
    if not windows or any(w < 1 for w in windows):
        raise ValueError("windows must be positive")
    max_window = max(windows)
    recent: dict[int, deque[int]] = {}
    distinct: dict[int, set[int]] = {}
    hits = {w: 0 for w in windows}
    eligible = 0

    for rec in trace:
        if not rec.writes_register:
            continue
        eligible += 1
        pc, value = rec.pc, rec.dest_value
        history = recent.get(pc)
        if history is None:
            history = deque(maxlen=max_window)
            recent[pc] = history
            distinct[pc] = set()
        items = list(history)
        for w in windows:
            if value in items[-w:]:
                hits[w] += 1
        # keep the window as *distinct* recent values, most recent last
        if value in history:
            history.remove(value)
        history.append(value)
        distinct[pc].add(value)

    distinct_counts = {pc: len(values) for pc, values in distinct.items()}
    constant_pcs = sum(1 for count in distinct_counts.values() if count == 1)
    mean_distinct = (
        sum(distinct_counts.values()) / len(distinct_counts)
        if distinct_counts
        else 0.0
    )
    return LocalityReport(
        eligible=eligible,
        window_hit_rates={
            w: (hits[w] / eligible if eligible else 0.0) for w in windows
        },
        constant_pcs=constant_pcs,
        mean_distinct_values=mean_distinct,
        distinct_by_pc=distinct_counts,
    )
