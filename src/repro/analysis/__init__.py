"""Workload analysis: value predictability, locality, dependence structure.

The paper's motivation rests on two empirical claims — register dataflow
values are predictable, and true dependences limit ILP.  This package
quantifies both for any trace, without running the timing simulator:

* :mod:`repro.analysis.predictability` replays idealized predictors
  (last-value, stride, order-k FCM) over a trace, per static instruction —
  the methodology of Sazeides & Smith's "The Predictability of Data
  Values", the paper's companion work.
* :mod:`repro.analysis.locality` measures value locality (distinct-value
  working sets per static instruction).
* :mod:`repro.analysis.dependence` computes dataflow-dependence distances
  and the trace's dataflow-limited critical path, the bound value
  speculation tries to break.
"""

from repro.analysis.predictability import (
    PredictabilityReport,
    analyze_predictability,
)
from repro.analysis.locality import LocalityReport, analyze_locality
from repro.analysis.dependence import DependenceReport, analyze_dependence
from repro.analysis.limits import LimitPoint, limit_study, render_limit_study
from repro.analysis.report import render_workload_report

__all__ = [
    "PredictabilityReport",
    "analyze_predictability",
    "LocalityReport",
    "analyze_locality",
    "DependenceReport",
    "analyze_dependence",
    "LimitPoint",
    "limit_study",
    "render_limit_study",
    "render_workload_report",
]
