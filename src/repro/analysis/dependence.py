"""Dataflow-dependence structure of a trace.

"Fundamentally, true dependences limit the amount of ILP that can be
extracted from a program" (paper Section 1).  This module measures that
limit: dependence distances (how far back each consumed value was
produced) and the dataflow-limited critical path — the minimum cycles an
infinitely wide machine would need, with and without perfectly predicted
register values.  Their ratio is the theoretical headroom that value
speculation attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.funits import execution_latency
from repro.trace.record import TraceRecord


@dataclass
class DependenceReport:
    """Dataflow statistics for one trace."""

    total: int
    #: histogram of register dependence distances (producer->consumer, in
    #: dynamic instructions), bucketed
    distance_histogram: dict[str, int]
    mean_distance: float
    #: dataflow critical path with functional-unit latencies (cycles)
    critical_path: int
    #: the same with every register-writing instruction's output available
    #: at no cost (perfect value prediction): only memory/control edges and
    #: execution latencies remain
    critical_path_perfect_vp: int
    #: average dataflow-limited ILP (instructions / critical path)
    dataflow_ilp: float
    max_chain_pc: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def vp_headroom(self) -> float:
        """Critical-path contraction from perfect value prediction."""
        if self.critical_path_perfect_vp == 0:
            return 1.0
        return self.critical_path / self.critical_path_perfect_vp


_BUCKETS = ((1, "1"), (2, "2"), (4, "3-4"), (8, "5-8"), (16, "9-16"),
            (64, "17-64"), (float("inf"), ">64"))


def _bucket(distance: int) -> str:
    for bound, label in _BUCKETS:
        if distance <= bound:
            return label
    return ">64"


def analyze_dependence(trace: list[TraceRecord]) -> DependenceReport:
    """Measure dependence distances and dataflow critical paths."""
    last_writer_seq: dict[int, int] = {}
    finish: dict[int, int] = {}  # seq -> dataflow finish time
    finish_vp: dict[int, int] = {}
    #: finish time of the last store covering each 8-byte-aligned chunk,
    #: for the memory dependence edges that survive perfect value
    #: prediction (a load's value flows from the store that produced it)
    store_finish: dict[int, int] = {}
    store_finish_vp: dict[int, int] = {}
    histogram: dict[str, int] = {}
    distance_sum = 0
    distance_count = 0
    critical = 0
    critical_vp = 0
    load_access = 2  # L1D hit time on top of address generation

    for index, rec in enumerate(trace):
        ready = 0
        ready_vp = 0
        for reg in rec.src_regs:
            producer = last_writer_seq.get(reg)
            if producer is None:
                continue
            distance = index - producer
            histogram[_bucket(distance)] = histogram.get(_bucket(distance), 0) + 1
            distance_sum += distance
            distance_count += 1
            ready = max(ready, finish[producer])
            # perfect VP removes the register edge entirely
        chunks: tuple[int, ...] = ()
        if rec.is_memory and rec.mem_addr is not None:
            first = rec.mem_addr >> 3
            last = (rec.mem_addr + (rec.mem_size or 1) - 1) >> 3
            chunks = tuple(range(first, last + 1))
        if rec.is_load:
            for chunk in chunks:
                ready = max(ready, store_finish.get(chunk, 0))
                ready_vp = max(ready_vp, store_finish_vp.get(chunk, 0))
        latency = execution_latency(rec.opclass)
        if rec.is_load:
            latency += load_access
        done = ready + latency
        done_vp = ready_vp + latency
        finish[index] = done
        finish_vp[index] = done_vp
        critical = max(critical, done)
        critical_vp = max(critical_vp, done_vp)
        if rec.is_store:
            for chunk in chunks:
                store_finish[chunk] = done
                store_finish_vp[chunk] = done_vp
        if rec.writes_register:
            last_writer_seq[rec.dest_reg] = index

    mean_distance = distance_sum / distance_count if distance_count else 0.0
    total = len(trace)
    return DependenceReport(
        total=total,
        distance_histogram=dict(
            sorted(histogram.items(), key=lambda kv: _order(kv[0]))
        ),
        mean_distance=mean_distance,
        critical_path=critical,
        critical_path_perfect_vp=critical_vp,
        dataflow_ilp=(total / critical if critical else 0.0),
    )


def _order(label: str) -> int:
    for position, (__, name) in enumerate(_BUCKETS):
        if name == label:
            return position
    return len(_BUCKETS)
