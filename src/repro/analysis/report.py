"""Combined workload-characterization report."""

from __future__ import annotations

from repro.analysis.dependence import analyze_dependence
from repro.analysis.locality import analyze_locality
from repro.analysis.predictability import analyze_predictability
from repro.trace.record import TraceRecord
from repro.trace.stats import compute_stats


def render_workload_report(trace: list[TraceRecord], label: str = "") -> str:
    """Full characterization of one trace: mix, predictability, locality,
    dependence structure."""
    stats = compute_stats(trace)
    predictability = analyze_predictability(trace)
    locality = analyze_locality(trace)
    dependence = analyze_dependence(trace)

    lines: list[str] = []
    if label:
        lines.append(f"workload: {label}")
    lines.append(
        f"  {stats.total} instructions over {stats.unique_pcs} static PCs; "
        f"{stats.prediction_eligible_fraction:.0%} write a register"
    )
    lines.append(
        f"  mix: {stats.branch_fraction:.0%} branches, "
        f"{stats.load_fraction:.0%} loads, {stats.store_fraction:.0%} stores"
    )
    lines.append("  predictability ceilings (perfect tables/update):")
    lines.append(
        f"    last-value {predictability.last_value_rate:6.1%}   "
        f"stride {predictability.stride_rate:6.1%}   "
        f"fcm({predictability.fcm_order}) {predictability.fcm_rate:6.1%}   "
        f"best-of {predictability.best_rate:6.1%}"
    )
    classes = {}
    for pc in predictability.by_pc:
        kind = predictability.classify_pc(pc)
        classes[kind] = classes.get(kind, 0) + 1
    summary = ", ".join(f"{count} {kind}" for kind, count in sorted(classes.items()))
    lines.append(f"    static instruction classes: {summary}")
    lines.append("  value locality (hit in last-N distinct values):")
    lines.append(
        "    "
        + "   ".join(
            f"N={window}: {rate:6.1%}"
            for window, rate in locality.window_hit_rates.items()
        )
    )
    lines.append(
        f"    {locality.constant_pcs} constant-output PCs; "
        f"{locality.mean_distinct_values:.1f} distinct values/PC on average"
    )
    lines.append("  dependence structure:")
    lines.append(
        f"    mean producer->consumer distance "
        f"{dependence.mean_distance:.1f} instructions"
    )
    lines.append(
        f"    dataflow critical path {dependence.critical_path} cycles "
        f"(ILP {dependence.dataflow_ilp:.1f}); with perfect value "
        f"prediction {dependence.critical_path_perfect_vp} cycles "
        f"(headroom {dependence.vp_headroom:.2f}x)"
    )
    return "\n".join(lines)
