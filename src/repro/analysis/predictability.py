"""Idealized value-predictability measurement.

Replays three reference predictors over a trace with immediate, perfect
update — the predictability *ceiling* for each model class:

* **last-value**: predicts the previous dynamic value of the same static
  instruction,
* **stride**: previous value + last confirmed delta (two-delta rule),
* **fcm(k)**: an order-k finite-context-method predictor with unbounded
  tables — what the paper's context-based predictor would achieve with no
  table aliasing or update-timing effects.

Results are reported overall, per operation class and per static
instruction, so kernels can be characterized the way Sazeides & Smith
characterized SPECint95.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord


@dataclass
class _PCStats:
    """Per-static-instruction outcome counters."""

    opclass: OpClass
    count: int = 0
    last_hits: int = 0
    stride_hits: int = 0
    fcm_hits: int = 0


@dataclass
class PredictabilityReport:
    """Predictability ceilings for one trace."""

    total: int
    eligible: int
    last_value_rate: float
    stride_rate: float
    fcm_rate: float
    best_rate: float  # per-instance oracle over the three models
    fcm_order: int
    by_class: dict[OpClass, tuple[int, float, float, float]] = field(
        default_factory=dict
    )
    by_pc: dict[int, _PCStats] = field(default_factory=dict)

    def classify_pc(self, pc: int) -> str:
        """Coarse behavioural class of one static instruction."""
        stats = self.by_pc[pc]
        if stats.count < 4:
            return "rare"
        last = stats.last_hits / stats.count
        stride = stats.stride_hits / stats.count
        fcm = stats.fcm_hits / stats.count
        if last > 0.9:
            return "constant"
        if stride > 0.9:
            return "stride"
        if fcm > 0.8:
            return "periodic"
        if max(last, stride, fcm) < 0.2:
            return "unpredictable"
        return "mixed"


class _IdealStride:
    __slots__ = ("last", "stride", "pending")

    def __init__(self) -> None:
        self.last = None
        self.stride = 0
        self.pending = None

    def predict(self):
        if self.last is None:
            return None
        return (self.last + self.stride) & ((1 << 64) - 1)

    def update(self, actual: int) -> None:
        if self.last is not None:
            delta = (actual - self.last) & ((1 << 64) - 1)
            if delta == self.stride:
                self.pending = None
            elif self.pending == delta:
                self.stride = delta
                self.pending = None
            else:
                self.pending = delta
        self.last = actual


def analyze_predictability(
    trace: list[TraceRecord], fcm_order: int = 4
) -> PredictabilityReport:
    """Measure predictability ceilings over ``trace``.

    The FCM model uses exact (hashless, unbounded) context lookup, so it
    upper-bounds any finite implementation of the same order.
    """
    if fcm_order < 1:
        raise ValueError("fcm_order must be >= 1")
    last_values: dict[int, int] = {}
    strides: dict[int, _IdealStride] = {}
    histories: dict[int, tuple[int, ...]] = {}
    fcm_table: dict[tuple[int, tuple[int, ...]], int] = {}

    by_pc: dict[int, _PCStats] = {}
    eligible = 0
    last_hits = stride_hits = fcm_hits = best_hits = 0

    for rec in trace:
        if not rec.writes_register:
            continue
        eligible += 1
        pc, actual = rec.pc, rec.dest_value
        stats = by_pc.get(pc)
        if stats is None:
            stats = _PCStats(rec.opclass)
            by_pc[pc] = stats
        stats.count += 1

        hit_any = False
        if last_values.get(pc) == actual:
            stats.last_hits += 1
            last_hits += 1
            hit_any = True
        stride = strides.get(pc)
        if stride is None:
            stride = _IdealStride()
            strides[pc] = stride
        if stride.predict() == actual:
            stats.stride_hits += 1
            stride_hits += 1
            hit_any = True
        history = histories.get(pc, ())
        if len(history) == fcm_order and fcm_table.get((pc, history)) == actual:
            stats.fcm_hits += 1
            fcm_hits += 1
            hit_any = True
        if hit_any:
            best_hits += 1

        # perfect immediate update
        last_values[pc] = actual
        stride.update(actual)
        if len(history) == fcm_order:
            fcm_table[(pc, history)] = actual
        histories[pc] = (history + (actual,))[-fcm_order:]

    by_class: dict[OpClass, tuple[int, float, float, float]] = {}
    for stats in by_pc.values():
        entry = by_class.get(stats.opclass, (0, 0.0, 0.0, 0.0))
        by_class[stats.opclass] = (
            entry[0] + stats.count,
            entry[1] + stats.last_hits,
            entry[2] + stats.stride_hits,
            entry[3] + stats.fcm_hits,
        )
    by_class = {
        cls: (n, lh / n, sh / n, fh / n)
        for cls, (n, lh, sh, fh) in by_class.items()
        if n
    }

    def rate(hits: int) -> float:
        return hits / eligible if eligible else 0.0

    return PredictabilityReport(
        total=len(trace),
        eligible=eligible,
        last_value_rate=rate(last_hits),
        stride_rate=rate(stride_hits),
        fcm_rate=rate(fcm_hits),
        best_rate=rate(best_hits),
        fcm_order=fcm_order,
        by_class=by_class,
        by_pc=by_pc,
    )
