"""Declarative registry of ablatable components.

The paper is itself a design-space study: its tables and figures exist
to show which machine-model variables actually buy speedup.  This
module makes that question declarative.  A :class:`Component` names one
mechanism of the speculative machine — the verification network, the
selective invalidation scheme, confidence gating, delayed (realistic)
predictor update, predictor table depth, the wakeup/selection policies,
and the harness's engine features — together with how to *lesion* it:
rewrite an :class:`AblationPoint` so the mechanism is removed, disabled
or replaced by its cheapest alternative.

The planner (:mod:`repro.ablation.plan`) turns a registry into the
baseline + leave-one-out (and opt-in pairwise) run set; components are
always iterated in sorted-name order, so run IDs are insensitive to the
order components were registered in.

Two component kinds exist:

* ``model`` — the lesion edits the simulated machine (model variables,
  confidence estimator, update timing, predictor factory).  Lesioned
  runs simulate a *different* machine, so their job keys differ from
  the baseline's and their speedup deltas measure the mechanism.
* ``engine`` — the lesion edits only how the harness *executes* the
  same jobs (scalar instead of batched, generic instead of specialized
  codegen).  Results must be bit-identical by construction, so the
  reported importance is exactly ``0.0`` — these components are
  registered as always-on differential tests of the engine features,
  not as machine mechanisms.

A lesion that does not apply to the baseline being ablated (the
baseline already runs complete invalidation, or carries a predictor the
depth lesion does not know) raises :class:`NotApplicable`; the planner
records a skipped-with-reason entry instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable

from repro.core.model import SpeculativeExecutionModel
from repro.core.variables import (
    InvalidationScheme,
    SelectionPolicy,
    VerificationScheme,
    WakeupPolicy,
)
from repro.engine.config import ProcessorConfig
from repro.harness.parallel import SimJob
from repro.vp.confidence import AlwaysConfidentEstimator
from repro.vp.context import ContextValuePredictor


class NotApplicable(Exception):
    """A component's lesion does not apply to this baseline point.

    The message is the human-readable reason the planner records in its
    skipped-with-reason entry.
    """


@dataclass(frozen=True)
class AblationPoint:
    """Everything about one speculative run except the benchmark.

    This is the unit a lesion rewrites: the planner expands a point into
    one :class:`~repro.harness.parallel.SimJob` per benchmark (plus the
    no-speculation base job its speedups are normalised against).
    ``confidence`` and ``predictor`` follow the ``SimJob`` conventions —
    a kind string or a picklable zero-argument factory.
    """

    config: ProcessorConfig
    model: SpeculativeExecutionModel
    confidence: object = "R"
    update_timing: str = "D"
    predictor: Callable | None = None

    def job(self, benchmark: str, max_instructions: int | None) -> SimJob:
        """The speculative run for one benchmark at this point."""
        return SimJob(
            benchmark=benchmark,
            config=self.config,
            model=self.model,
            max_instructions=max_instructions,
            confidence=self.confidence,
            update_timing=self.update_timing,
            predictor=self.predictor,
        )

    def base_job(self, benchmark: str, max_instructions: int | None) -> SimJob:
        """The matching no-speculation baseline-machine run."""
        return SimJob(
            benchmark=benchmark,
            config=self.config,
            model=None,
            max_instructions=max_instructions,
        )

    def with_variables(self, **overrides) -> "AblationPoint":
        """This point with some model variables replaced (model renamed
        so labels and job fingerprints stay self-describing)."""
        variables = replace(self.model.variables, **overrides)
        suffix = ",".join(f"{k}={v.value}" for k, v in sorted(overrides.items()))
        model = SpeculativeExecutionModel(
            f"{self.model.name}[{suffix}]", variables, self.model.latencies
        )
        return replace(self, model=model)


@dataclass(frozen=True)
class Component:
    """One ablatable mechanism: a config axis with its baseline meaning
    and the lesioned value the leave-one-out run substitutes.

    ``lesion`` maps the baseline :class:`AblationPoint` to the lesioned
    one (raising :class:`NotApplicable` when the baseline does not carry
    the mechanism); ``engine_overrides`` instead names execution-level
    settings (``batch``, ``specialize``) for ``kind="engine"``
    components, whose lesioned runs execute the *same* jobs.
    """

    name: str
    title: str
    description: str
    lesion_label: str
    kind: str = "model"
    lesion: Callable[[AblationPoint], AblationPoint] | None = None
    engine_overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("model", "engine"):
            raise ValueError(f"component kind must be model|engine, got {self.kind!r}")
        if self.kind == "model" and self.lesion is None:
            raise ValueError(f"model component {self.name!r} needs a lesion callable")
        if self.kind == "engine" and not self.engine_overrides:
            raise ValueError(
                f"engine component {self.name!r} needs engine_overrides"
            )

    def apply(self, point: AblationPoint) -> AblationPoint:
        """The lesioned point (identity for engine components)."""
        if self.lesion is None:
            return point
        return self.lesion(point)


class ComponentRegistry:
    """A named set of :class:`Component` entries.

    Iteration order is always sorted by component name, so plans and run
    IDs built from a registry never depend on registration order.
    """

    def __init__(self, components: list[Component] | None = None):
        self._components: dict[str, Component] = {}
        for component in components or []:
            self.register(component)

    def register(self, component: Component) -> Component:
        if component.name in self._components:
            raise ValueError(f"component {component.name!r} already registered")
        self._components[component.name] = component
        return component

    def get(self, name: str) -> Component:
        component = self._components.get(name)
        if component is None:
            raise KeyError(
                f"unknown component {name!r}; know {self.names()}"
            )
        return component

    def names(self) -> list[str]:
        return sorted(self._components)

    def components(self) -> list[Component]:
        """All components in sorted-name order (the planner's order)."""
        return [self._components[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._components)

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __iter__(self):
        return iter(self.components())


# -- the default component set ---------------------------------------------


def _lesion_verification(point: AblationPoint) -> AblationPoint:
    current = point.model.variables.verification
    if current is not VerificationScheme.PARALLEL_NETWORK:
        raise NotApplicable(
            "baseline has no parallel verification network to remove "
            f"(verification={current.value})"
        )
    return point.with_variables(verification=VerificationScheme.RETIREMENT_BASED)


def _lesion_invalidation(point: AblationPoint) -> AblationPoint:
    current = point.model.variables.invalidation
    if current is InvalidationScheme.COMPLETE:
        raise NotApplicable(
            "baseline already squashes completely on misspeculation "
            "(invalidation=complete); nothing selective to remove"
        )
    return point.with_variables(invalidation=InvalidationScheme.COMPLETE)


def _lesion_confidence(point: AblationPoint) -> AblationPoint:
    confidence = point.confidence
    if confidence is AlwaysConfidentEstimator or isinstance(
        confidence, AlwaysConfidentEstimator
    ):
        raise NotApplicable(
            "baseline already predicts unconditionally; confidence gating is off"
        )
    return replace(point, confidence=AlwaysConfidentEstimator)


def _lesion_update_timing(point: AblationPoint) -> AblationPoint:
    if point.update_timing.strip().upper() == "I":
        raise NotApplicable(
            "baseline already updates the predictor immediately "
            "(update_timing=I); no delay to remove"
        )
    return replace(point, update_timing="I")


def _lesion_predictor_depth(point: AblationPoint) -> AblationPoint:
    predictor = point.predictor
    factory = predictor.func if isinstance(predictor, partial) else predictor
    if predictor is not None and factory is not ContextValuePredictor:
        raise NotApplicable(
            "baseline predictor is not the two-level context predictor; "
            "the depth lesion does not know how to shrink "
            f"{getattr(factory, '__name__', factory)!r}"
        )
    return replace(
        point,
        predictor=partial(ContextValuePredictor, history_bits=8, context_bits=8),
    )


def _lesion_selective_reissue(point: AblationPoint) -> AblationPoint:
    current = point.model.variables.wakeup
    if current is not WakeupPolicy.VALID_OR_SPECULATIVE:
        raise NotApplicable(
            "baseline wakeup is not the paper's valid-or-speculative policy "
            f"(wakeup={current.value}); no selective reissue gating to remove"
        )
    return point.with_variables(wakeup=WakeupPolicy.ANY_VALUE)


def _lesion_selection_priority(point: AblationPoint) -> AblationPoint:
    current = point.model.variables.selection
    if current is not SelectionPolicy.PAPER:
        raise NotApplicable(
            "baseline selection policy is not the paper's "
            f"(selection={current.value}); no non-speculative preference to remove"
        )
    return point.with_variables(selection=SelectionPolicy.SPECULATIVE_EQUAL)


def default_registry() -> ComponentRegistry:
    """The registry `repro ablate` ships with: the paper's mechanism
    axes plus the harness's engine features as zero-delta differential
    tests.  Returns a fresh registry so callers may mutate their copy.
    """
    return ComponentRegistry([
        Component(
            name="verification-network",
            title="Parallel verification network",
            description=(
                "Flattened-hierarchical verification over a dedicated "
                "network (Section 3.2): all successors of a correct "
                "prediction validated in parallel."
            ),
            lesion_label="retirement-based verification",
            lesion=_lesion_verification,
        ),
        Component(
            name="selective-invalidation",
            title="Selective invalidation",
            description=(
                "Only the dependence successors of a misprediction are "
                "invalidated (Section 3.1), instead of squashing all "
                "younger instructions like a branch mispredict."
            ),
            lesion_label="complete squash",
            lesion=_lesion_invalidation,
        ),
        Component(
            name="confidence-gating",
            title="Confidence estimation",
            description=(
                "The resetting-counter confidence table gating which "
                "predictions are used (Section 3.6)."
            ),
            lesion_label="always predict (gating off)",
            lesion=_lesion_confidence,
        ),
        Component(
            name="delayed-update",
            title="Delayed (realistic) predictor update",
            description=(
                "Predictor tables learn outcomes at retirement with "
                "speculative history extension (Section 5.2).  Lesioning "
                "substitutes the immediate-update idealization, so a "
                "positive delta here means the realism *costs* speedup "
                "and the run is flagged harmful by construction."
            ),
            lesion_label="immediate (idealized) update",
            lesion=_lesion_update_timing,
        ),
        Component(
            name="predictor-depth",
            title="Full-depth context predictor tables",
            description=(
                "The two-level context predictor's full L1/L2 geometry; "
                "lesioning shrinks both levels to minimal 256-entry "
                "tables and lets aliasing erode coverage."
            ),
            lesion_label="minimal L1/L2 tables (2^8 entries)",
            lesion=_lesion_predictor_depth,
        ),
        Component(
            name="selective-reissue",
            title="Selective reissue gating",
            description=(
                "Wakeup restricted to valid-or-speculative operands on "
                "not-yet-issued instructions; lesioning wakes on any "
                "arriving value (the Rotenberg-style scheme), reissuing "
                "eagerly and needlessly."
            ),
            lesion_label="any-value wakeup",
            lesion=_lesion_selective_reissue,
        ),
        Component(
            name="selection-priority",
            title="Non-speculative selection preference",
            description=(
                "The paper's issue selection prefers non-speculative "
                "instructions among branch/load-first oldest-first "
                "candidates (Section 3.5)."
            ),
            lesion_label="speculative-equal selection",
            lesion=_lesion_selection_priority,
        ),
        Component(
            name="engine-batching",
            title="Batched multi-config engine",
            description=(
                "Execution-level feature: N compatible sweep points per "
                "trace pass (docs/PERFORMANCE.md #8).  Lesioned runs "
                "execute the identical jobs scalar, so the delta is "
                "0.0 by construction — a differential test, not a "
                "machine mechanism."
            ),
            lesion_label="scalar execution (batch=1)",
            kind="engine",
            engine_overrides=(("batch", 1),),
        ),
        Component(
            name="engine-specialization",
            title="Config-specialized engine codegen",
            description=(
                "Execution-level feature: constant-folded per-config "
                "engine classes (docs/PERFORMANCE.md #9).  Lesioned "
                "runs execute the identical jobs on the generic "
                "interpreter, so the delta is 0.0 by construction."
            ),
            lesion_label="generic interpreter (REPRO_ENGINE_SPECIALIZE=0)",
            kind="engine",
            engine_overrides=(("specialize", False),),
        ),
    ])
