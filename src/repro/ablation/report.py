"""Ablation reporting: per-component importance, ranked three ways.

The importance of a component is what the machine loses when it is
removed: ``baseline_speedup − lesioned_speedup``, where each speedup is
the harmonic mean (the paper's Section 5.1 averaging convention) over
the benchmark set of base-machine cycles / speculative-machine cycles.
Runs are deterministic, so the deltas are exact — no confidence
intervals, no repetitions.

A *harmful* component is one whose lesioning **helps** (importance
< 0): the baseline is paying for a mechanism that costs speedup on this
workload.  The canonical example is ``delayed-update`` — its lesion
substitutes the immediate-update idealization, so a negative importance
there just restates the paper's realistic-update penalty.  Engine
components (``engine-*``) execute identical jobs and must land at
exactly 0.0; any other value is an engine bug, which is why the
executor's differential check feeds the report.

The JSON document leads with the same ``{v, revision, fingerprint}``
header block the throughput record (``BENCH_engine_perf.json``) uses,
so ``scripts/perf_diff.py`` can render an ablation block with the same
old-schema tolerance it applies everywhere else.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

from repro.ablation.execute import RunResults
from repro.ablation.plan import AblationPlan
from repro.metrics.speedup import harmonic_mean, speedup

#: Bumped when the report schema changes shape.
REPORT_VERSION = 1


def git_revision() -> str:
    """Current commit (short hash, ``-dirty`` suffixed), or ``unknown``."""
    root = Path(__file__).resolve().parents[3]
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        ).stdout.strip()
        if not revision:
            return "unknown"
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=10,
        ).stdout
        return revision + ("-dirty" if status.strip() else "")
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _run_metrics(item: RunResults) -> dict:
    """Speedup/IPC aggregates for one executed run."""
    per_benchmark = {}
    ratios = []
    for base, vp in zip(item.base_results, item.results):
        benchmark = item.run.jobs[len(ratios)].benchmark
        ratio = speedup(base.cycles, vp.cycles)
        ratios.append(ratio)
        per_benchmark[benchmark] = {
            "base_cycles": base.cycles,
            "vp_cycles": vp.cycles,
            "speedup": ratio,
            "ipc": vp.ipc,
        }
    total_cycles = sum(r.cycles for r in item.results)
    total_retired = sum(r.counters.retired for r in item.results)
    return {
        "run_id": item.run.run_id,
        "label": item.run.label,
        "components": list(item.run.components),
        "speedup": harmonic_mean(ratios),
        "ipc": total_retired / total_cycles if total_cycles else 0.0,
        "benchmarks": per_benchmark,
    }


def build_report(
    plan: AblationPlan,
    executed: list[RunResults],
    *,
    engine_mismatches: list[str] | None = None,
    revision: str | None = None,
) -> dict:
    """The versioned ablation report document.

    ``executed`` must align with ``plan.runs`` (baseline first) — the
    shape :func:`~repro.ablation.execute.execute_plan` returns.
    """
    baseline = _run_metrics(executed[0])
    components = []
    for item in executed[1:]:
        metrics = _run_metrics(item)
        importance = baseline["speedup"] - metrics["speedup"]
        components.append({
            **metrics,
            "importance": importance,
            "ipc_delta": baseline["ipc"] - metrics["ipc"],
            "harmful": importance < 0,
            "engine": bool(item.run.engine_overrides),
        })
    components.sort(key=lambda c: c["importance"], reverse=True)
    spec = plan.spec
    return {
        "v": REPORT_VERSION,
        "kind": "ablation",
        "revision": git_revision() if revision is None else revision,
        "fingerprint": plan.fingerprint,
        "spec": {
            "benchmarks": list(spec.benchmarks),
            "config": f"{spec.point.config.issue_width}/"
                      f"{spec.point.config.window_size}",
            "model": spec.point.model.name,
            "update_timing": spec.point.update_timing,
            "max_instructions": spec.max_instructions,
        },
        "baseline": baseline,
        "components": components,
        "skipped": [
            {"components": list(entry.components), "reason": entry.reason}
            for entry in plan.skipped
        ],
        "runs_dropped": plan.runs_dropped,
        "engine_mismatches": list(engine_mismatches or []),
    }


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless ``report`` is a well-formed v1
    ablation document (the smoke job's schema gate)."""
    if not isinstance(report, dict):
        raise ValueError("ablation report must be a JSON object")
    for field in ("v", "kind", "revision", "fingerprint", "spec",
                  "baseline", "components", "skipped", "runs_dropped"):
        if field not in report:
            raise ValueError(f"ablation report missing field {field!r}")
    if report["kind"] != "ablation":
        raise ValueError(f"not an ablation report (kind={report['kind']!r})")
    if report["v"] != REPORT_VERSION:
        raise ValueError(f"unsupported ablation report version {report['v']!r}")
    baseline = report["baseline"]
    for field in ("run_id", "label", "speedup", "ipc", "benchmarks"):
        if field not in baseline:
            raise ValueError(f"baseline block missing field {field!r}")
    for entry in report["components"]:
        for field in ("run_id", "label", "components", "speedup",
                      "importance", "harmful"):
            if field not in entry:
                raise ValueError(
                    f"component block missing field {field!r}: {entry}"
                )
        if not isinstance(entry["run_id"], str) or len(entry["run_id"]) != 24:
            raise ValueError(f"malformed run_id {entry['run_id']!r}")
    for entry in report["skipped"]:
        if "components" not in entry or "reason" not in entry:
            raise ValueError(f"malformed skipped entry: {entry}")


def render_text(report: dict) -> str:
    """The ranked importance table, human-shaped."""
    lines = [
        f"ablation report v{report['v']}  "
        f"revision={report['revision']}  fingerprint={report['fingerprint']}",
        f"spec: {report['spec']['model']} model @ {report['spec']['config']}"
        f"  benchmarks={','.join(report['spec']['benchmarks'])}",
        f"baseline speedup {report['baseline']['speedup']:.4f}  "
        f"ipc {report['baseline']['ipc']:.4f}",
        "",
        f"{'rank':>4}  {'component':<34} {'speedup':>8} "
        f"{'importance':>10}  flags",
    ]
    for rank, entry in enumerate(report["components"], start=1):
        flags = []
        if entry["harmful"]:
            flags.append("HARMFUL")
        if entry.get("engine"):
            flags.append("engine")
        lines.append(
            f"{rank:>4}  {'+'.join(entry['components']):<34} "
            f"{entry['speedup']:>8.4f} {entry['importance']:>+10.4f}  "
            f"{' '.join(flags)}".rstrip()
        )
    for entry in report["skipped"]:
        lines.append(
            f"  skipped {'+'.join(entry['components'])}: {entry['reason']}"
        )
    if report["runs_dropped"]:
        lines.append(
            f"  ({report['runs_dropped']} planned run(s) dropped by --limit)"
        )
    for mismatch in report.get("engine_mismatches", []):
        lines.append(f"  ENGINE MISMATCH: {mismatch}")
    return "\n".join(lines)


def render_csv(report: dict) -> str:
    """One row per ranked component (plus the baseline), machine-shaped."""
    rows = [
        "rank,run_id,label,components,speedup,ipc,importance,ipc_delta,"
        "harmful,engine"
    ]
    baseline = report["baseline"]
    rows.append(
        f"0,{baseline['run_id']},{baseline['label']},,"
        f"{baseline['speedup']:.6f},{baseline['ipc']:.6f},0.0,0.0,False,False"
    )
    for rank, entry in enumerate(report["components"], start=1):
        rows.append(
            f"{rank},{entry['run_id']},{entry['label']},"
            f"{'+'.join(entry['components'])},"
            f"{entry['speedup']:.6f},{entry['ipc']:.6f},"
            f"{entry['importance']:.6f},{entry['ipc_delta']:.6f},"
            f"{entry['harmful']},{entry['engine']}"
        )
    return "\n".join(rows)


def report_record(report: dict) -> dict:
    """The compact block a throughput record embeds under ``"ablation"``
    for :mod:`scripts.perf_diff` rendering."""
    return {
        "fingerprint": report["fingerprint"],
        "baseline_speedup": report["baseline"]["speedup"],
        "importance": {
            "+".join(entry["components"]): entry["importance"]
            for entry in report["components"]
        },
        "harmful": [
            "+".join(entry["components"])
            for entry in report["components"] if entry["harmful"]
        ],
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the JSON document (pretty, trailing newline) and return the
    path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
