"""Automated ablation framework over model variables.

Declare ablatable components (:mod:`repro.ablation.registry`), expand a
baseline into the leave-one-out run set with stable content-hash run
IDs (:mod:`repro.ablation.plan`), execute it on any harness backend
(:mod:`repro.ablation.execute`), and rank per-component importance
(:mod:`repro.ablation.report`).  See docs/ABLATION.md; CLI entry point:
``repro ablate``.
"""

from repro.ablation.execute import (
    RunResults,
    execute_plan,
    verify_engine_identity,
)
from repro.ablation.plan import (
    AblationPlan,
    AblationSpec,
    PlannedRun,
    SkippedRun,
    plan_ablation,
)
from repro.ablation.registry import (
    AblationPoint,
    Component,
    ComponentRegistry,
    NotApplicable,
    default_registry,
)
from repro.ablation.report import (
    build_report,
    render_csv,
    render_text,
    report_record,
    validate_report,
    write_report,
)

__all__ = [
    "AblationPlan",
    "AblationPoint",
    "AblationSpec",
    "Component",
    "ComponentRegistry",
    "NotApplicable",
    "PlannedRun",
    "RunResults",
    "SkippedRun",
    "build_report",
    "default_registry",
    "execute_plan",
    "plan_ablation",
    "render_csv",
    "render_text",
    "report_record",
    "validate_report",
    "verify_engine_identity",
    "write_report",
]
