"""Ablation execution: run a planned run set on any harness backend.

:func:`execute_plan` flattens an :class:`~repro.ablation.plan.AblationPlan`
into :func:`repro.harness.parallel.run_jobs` calls, so an ablation
inherits every execution amenity the harness already has: the local
pool, the fault-tolerant cluster, the always-on service, the trace
cache, and the persistent result store.  With ``REPRO_RESULT_STORE``
configured, re-running an ablation after one component change
recomputes only the runs whose jobs changed — everything else is served
warm, and the baseline jobs shared by every leave-one-out run execute
exactly once thanks to the harness's duplicate-key dedup.

Runs are grouped by their engine overrides: the (usually dominant)
no-override group goes to the backend as one flattened job list, while
each engine-lesioned group (``batch=1``, ``specialize=False``) runs as
its own call with the override applied — the jobs are identical, only
the execution strategy differs, which is exactly what those components
measure.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

from repro.ablation.plan import AblationPlan, PlannedRun
from repro.cluster.serial import job_key
from repro.engine.sim import SimulationResult
from repro.engine.specialize import SPECIALIZE_ENV_VAR
from repro.harness.parallel import SimJob, run_jobs


@dataclass(frozen=True)
class RunResults:
    """One planned run with its computed (base, speculative) results,
    positionally aligned with ``run.jobs`` / ``run.base_jobs``."""

    run: PlannedRun
    base_results: tuple[SimulationResult, ...]
    results: tuple[SimulationResult, ...]


@contextmanager
def _specialize_disabled():
    """Temporarily force the generic interpreter (the specialization
    lesion).  Serial execution reads the variable per job; pool workers
    inherit the environment when they start."""
    previous = os.environ.get(SPECIALIZE_ENV_VAR)
    os.environ[SPECIALIZE_ENV_VAR] = "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[SPECIALIZE_ENV_VAR]
        else:
            os.environ[SPECIALIZE_ENV_VAR] = previous


def _run_group(
    group: list[PlannedRun],
    *,
    jobs: int,
    backend: str | None,
    batch: int | None,
) -> dict[str, list[SimulationResult]]:
    """Execute one override-group's runs as a single flattened job list
    and hand back results keyed by run_id (base results first)."""
    flat: list[SimJob] = []
    spans: list[tuple[str, int, int]] = []
    for run in group:
        start = len(flat)
        flat.extend(run.base_jobs)
        flat.extend(run.jobs)
        spans.append((run.run_id, start, len(flat)))
    overrides = dict(group[0].engine_overrides)
    effective_batch = overrides.get("batch", batch)
    if overrides.get("specialize", True) is False:
        with _specialize_disabled():
            results = run_jobs(
                flat, jobs, backend=backend, batch=effective_batch
            )
    else:
        results = run_jobs(flat, jobs, backend=backend, batch=effective_batch)
    return {
        run_id: results[start:stop] for run_id, start, stop in spans
    }


def execute_plan(
    plan: AblationPlan,
    *,
    jobs: int = 1,
    backend: str | None = None,
    batch: int | None = None,
) -> list[RunResults]:
    """Execute every planned run and return results aligned with
    ``plan.runs`` (baseline first).

    ``jobs``/``backend``/``batch`` follow the
    :func:`~repro.harness.parallel.run_jobs` conventions (environment
    fallbacks included), except that engine-lesioned runs pin their own
    overrides regardless of the caller's settings.
    """
    groups: dict[tuple[tuple[str, object], ...], list[PlannedRun]] = {}
    for run in plan.runs:
        groups.setdefault(run.engine_overrides, []).append(run)
    by_run: dict[str, list[SimulationResult]] = {}
    for group in groups.values():
        by_run.update(
            _run_group(group, jobs=jobs, backend=backend, batch=batch)
        )
    out: list[RunResults] = []
    for run in plan.runs:
        results = by_run[run.run_id]
        count = len(run.base_jobs)
        out.append(
            RunResults(
                run=run,
                base_results=tuple(results[:count]),
                results=tuple(results[count:]),
            )
        )
    return out


def verify_engine_identity(executed: list[RunResults]) -> list[str]:
    """Cross-check engine-lesioned runs against the baseline.

    Engine components execute the *same* jobs with a different strategy,
    so their results must be bit-identical to the baseline's wherever
    the job keys match.  Returns a list of mismatch descriptions (empty
    means the differential test passed); the reporter attaches these to
    the run records.
    """
    by_key: dict[str, SimulationResult] = {}
    baseline = executed[0]
    for job, result in zip(
        baseline.run.base_jobs + baseline.run.jobs,
        baseline.base_results + baseline.results,
    ):
        by_key[job_key(job)] = result
    mismatches: list[str] = []
    for item in executed[1:]:
        if not item.run.engine_overrides:
            continue
        for job, result in zip(
            item.run.base_jobs + item.run.jobs,
            item.base_results + item.results,
        ):
            reference = by_key.get(job_key(job))
            if reference is not None and reference != result:
                mismatches.append(
                    f"{item.run.label}: {job.benchmark} diverged from "
                    "the baseline execution of the identical job"
                )
    return mismatches
