"""Ablation planning: baseline + leave-one-out run-set generation.

:func:`plan_ablation` expands an :class:`AblationSpec` (one baseline
point over a benchmark set) against a component registry into the run
set an ablation study needs: the unmodified baseline, one run per
applicable component with that component lesioned, and — with
``pairs=True`` — one run per component pair with both lesioned
(interaction probing).  Components whose lesion raises
:class:`~repro.ablation.registry.NotApplicable` become skipped-with-
reason entries instead of runs.

Every run carries a stable content-hash run ID built from the same
canonical-representation discipline as
:func:`repro.cluster.serial.job_key`: the ID digests the benchmark
list, the lesioned component names, the engine overrides and the full
job fingerprints of every (base, speculative) job the run executes.
Two processes planning the same spec — regardless of the order
components were registered in — produce byte-identical IDs, so reports
from different machines and revisions are directly comparable and the
result store recognises re-planned runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import combinations

from repro.ablation.registry import (
    AblationPoint,
    Component,
    ComponentRegistry,
    NotApplicable,
    default_registry,
)
from repro.cluster.serial import job_fingerprint
from repro.harness.parallel import SimJob

#: Bumped when the canonical run-ID text changes shape.
PLAN_VERSION = 1

_ID_CHARS = 24  # matches job_key's truncation


@dataclass(frozen=True)
class AblationSpec:
    """What to ablate: one baseline point over a benchmark set."""

    benchmarks: tuple[str, ...]
    point: AblationPoint
    max_instructions: int | None = None

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("an ablation needs at least one benchmark")


@dataclass(frozen=True)
class PlannedRun:
    """One run of the ablation set: a point (baseline or lesioned) with
    its expanded jobs and a stable content-hash ``run_id``."""

    run_id: str
    label: str
    components: tuple[str, ...]  # lesioned components; () = baseline
    point: AblationPoint
    jobs: tuple[SimJob, ...]  # speculative runs, one per benchmark
    base_jobs: tuple[SimJob, ...]  # matching no-speculation runs
    engine_overrides: tuple[tuple[str, object], ...] = ()

    @property
    def is_baseline(self) -> bool:
        return not self.components


@dataclass(frozen=True)
class SkippedRun:
    """A component (set) whose lesion did not apply to the baseline."""

    components: tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class AblationPlan:
    """The full planned run set: baseline first, then lesioned runs in
    sorted-component-name order, plus skipped entries and a plan-level
    fingerprint digesting every run ID."""

    spec: AblationSpec
    runs: tuple[PlannedRun, ...]
    skipped: tuple[SkippedRun, ...] = ()
    runs_dropped: int = 0
    fingerprint: str = ""

    @property
    def baseline(self) -> PlannedRun:
        return self.runs[0]

    @property
    def lesioned(self) -> tuple[PlannedRun, ...]:
        return self.runs[1:]


def run_id_text(
    spec: AblationSpec,
    components: tuple[str, ...],
    engine_overrides: tuple[tuple[str, object], ...],
    jobs: tuple[SimJob, ...],
    base_jobs: tuple[SimJob, ...],
) -> str:
    """The canonical text a run ID digests (exposed for tests/docs)."""
    lines = [
        f"vsablate v{PLAN_VERSION}",
        "components=" + ",".join(sorted(components)),
        "engine=" + ",".join(f"{k}={v!r}" for k, v in sorted(engine_overrides)),
    ]
    for benchmark, base, job in zip(spec.benchmarks, base_jobs, jobs):
        lines.append(f"benchmark={benchmark}")
        lines.append("base:" + job_fingerprint(base))
        lines.append("vp:" + job_fingerprint(job))
    return "\n".join(lines)


def _make_run(
    spec: AblationSpec,
    components: tuple[Component, ...],
) -> PlannedRun:
    """Build one run with every component in ``components`` lesioned
    (the empty tuple builds the baseline).  Raises ``NotApplicable``
    when any lesion does not apply."""
    point = spec.point
    overrides: dict[str, object] = {}
    for component in components:
        point = component.apply(point)
        overrides.update(component.engine_overrides)
    names = tuple(sorted(component.name for component in components))
    jobs = tuple(
        point.job(benchmark, spec.max_instructions)
        for benchmark in spec.benchmarks
    )
    base_jobs = tuple(
        point.base_job(benchmark, spec.max_instructions)
        for benchmark in spec.benchmarks
    )
    engine_overrides = tuple(sorted(overrides.items()))
    text = run_id_text(spec, names, engine_overrides, jobs, base_jobs)
    run_id = hashlib.sha256(text.encode()).hexdigest()[:_ID_CHARS]
    label = "baseline" if not names else "no-" + "+".join(names)
    return PlannedRun(
        run_id=run_id,
        label=label,
        components=names,
        point=point,
        jobs=jobs,
        base_jobs=base_jobs,
        engine_overrides=engine_overrides,
    )


def plan_ablation(
    spec: AblationSpec,
    registry: ComponentRegistry | None = None,
    *,
    pairs: bool = False,
    limit: int | None = None,
) -> AblationPlan:
    """Expand ``spec`` into the baseline + leave-one-out run set.

    ``pairs=True`` appends every applicable two-component lesion after
    the singles.  ``limit`` caps the number of *lesioned* runs (the
    baseline never counts against it); dropped runs are counted in
    ``runs_dropped`` so a capped report is visibly partial, never
    silently truncated.

    Components are always expanded in sorted-name order — plans and
    their run IDs are invariant to registry registration order.
    """
    registry = default_registry() if registry is None else registry
    runs: list[PlannedRun] = [_make_run(spec, ())]
    skipped: list[SkippedRun] = []
    groups: list[tuple[Component, ...]] = [
        (component,) for component in registry.components()
    ]
    if pairs:
        groups.extend(combinations(registry.components(), 2))
    dropped = 0
    for group in groups:
        try:
            run = _make_run(spec, group)
        except NotApplicable as reason:
            skipped.append(
                SkippedRun(
                    components=tuple(sorted(c.name for c in group)),
                    reason=str(reason),
                )
            )
            continue
        if limit is not None and len(runs) - 1 >= limit:
            dropped += 1
            continue
        runs.append(run)
    digest = hashlib.sha256(
        "\n".join(run.run_id for run in runs).encode()
    ).hexdigest()[:_ID_CHARS]
    return AblationPlan(
        spec=spec,
        runs=tuple(runs),
        skipped=tuple(skipped),
        runs_dropped=dropped,
        fingerprint=digest,
    )
