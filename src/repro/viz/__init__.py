"""Textual visualization of simulation behaviour.

Terminal-friendly renderings: sparkline time series of IPC and window
occupancy (from engine samples) and side-by-side run comparisons.
"""

from repro.viz.timeline import (
    sparkline,
    samples_from_tracer,
    render_timeline,
    render_ipc_comparison,
)

__all__ = [
    "sparkline",
    "samples_from_tracer",
    "render_timeline",
    "render_ipc_comparison",
]
