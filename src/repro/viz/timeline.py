"""Sparkline time-series rendering of engine samples.

Samples are cumulative ``(cycle, retired, occupancy)`` triples.  They
come either from the engine's own periodic sampling
(``ProcessorConfig.sample_interval``) or, via
:func:`samples_from_tracer`, reconstructed from an observability
tracer's lifecycle marks — so any instrumented run can be rendered
without re-running it with sampling enabled.
"""

from __future__ import annotations

from typing import Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render values as a unicode sparkline, resampled to ``width``."""
    if not values:
        return ""
    if width < 1:
        raise ValueError("width must be positive")
    # resample by bucket means
    buckets: list[float] = []
    count = min(width, len(values))
    for i in range(count):
        lo = i * len(values) // count
        hi = max(lo + 1, (i + 1) * len(values) // count)
        chunk = values[lo:hi]
        buckets.append(sum(chunk) / len(chunk))
    top = max(buckets)
    bottom = min(buckets)
    span = top - bottom
    if span <= 0:
        return _BLOCKS[4] * count
    out = []
    for value in buckets:
        index = int((value - bottom) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def _ipc_series(samples: Sequence[tuple[int, int, int]]) -> list[float]:
    """Per-interval IPC from cumulative (cycle, retired, occupancy)."""
    series: list[float] = []
    prev_cycle = prev_retired = 0
    for cycle, retired, __ in samples:
        dc = cycle - prev_cycle
        if dc > 0:
            series.append((retired - prev_retired) / dc)
        prev_cycle, prev_retired = cycle, retired
    return series


def render_timeline(
    samples: Sequence[tuple[int, int, int]], label: str = "", width: int = 60
) -> str:
    """IPC and window-occupancy sparklines for one run's samples."""
    if not samples:
        return f"{label}: no samples (set ProcessorConfig.sample_interval)"
    ipc = _ipc_series(samples)
    occupancy = [float(s[2]) for s in samples]
    lines = []
    if label:
        lines.append(label)
    lines.append(
        f"  IPC       [{min(ipc):4.1f}..{max(ipc):4.1f}] "
        + sparkline(ipc, width)
    )
    lines.append(
        f"  occupancy [{min(occupancy):4.0f}..{max(occupancy):4.0f}] "
        + sparkline(occupancy, width)
    )
    return "\n".join(lines)


def samples_from_tracer(
    tracer, interval: int = 100
) -> list[tuple[int, int, int]]:
    """Reconstruct cumulative (cycle, retired, occupancy) samples from a
    tracer's lifecycle marks.

    Dispatch marks grow window occupancy; retire and squash marks shrink
    it (retire also advances the retired count).  One sample is emitted
    per ``interval`` cycles, carrying the state at the end of that
    interval, so the output plugs straight into :func:`render_timeline`.
    Marks beyond the tracer's ring capacity are dropped oldest-first,
    in which case the series covers only the retained suffix of the run.
    """
    if interval < 1:
        raise ValueError("interval must be positive")
    deltas: dict[int, tuple[int, int]] = {}  # cycle -> (d_retired, d_occupancy)
    for mark in tracer.lifecycle_marks():
        if mark.phase == "dispatch":
            d_ret, d_occ = deltas.get(mark.cycle, (0, 0))
            deltas[mark.cycle] = (d_ret, d_occ + 1)
        elif mark.phase == "retire":
            d_ret, d_occ = deltas.get(mark.cycle, (0, 0))
            deltas[mark.cycle] = (d_ret + 1, d_occ - 1)
        elif mark.phase == "squash":
            d_ret, d_occ = deltas.get(mark.cycle, (0, 0))
            deltas[mark.cycle] = (d_ret, d_occ - 1)
    if not deltas:
        return []
    samples: list[tuple[int, int, int]] = []
    retired = occupancy = 0
    boundary = interval
    for cycle in sorted(deltas):
        while cycle >= boundary:
            samples.append((boundary, retired, max(occupancy, 0)))
            boundary += interval
        d_ret, d_occ = deltas[cycle]
        retired += d_ret
        occupancy += d_occ
    samples.append((boundary, retired, max(occupancy, 0)))
    return samples


def render_ipc_comparison(
    runs: dict[str, Sequence[tuple[int, int, int]]], width: int = 60
) -> str:
    """Aligned IPC sparklines for several runs (e.g. base vs models)."""
    label_width = max((len(label) for label in runs), default=0)
    lines = []
    for label, samples in runs.items():
        ipc = _ipc_series(samples)
        if not ipc:
            continue
        mean = sum(ipc) / len(ipc)
        lines.append(
            f"{label.ljust(label_width)}  mean IPC {mean:5.2f}  "
            + sparkline(ipc, width)
        )
    return "\n".join(lines)
