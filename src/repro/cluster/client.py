"""Client side of the cluster service: submit, wait, fetch, spawn.

Two ways in:

* **Service mode** — a scheduler is already running (``repro cluster
  serve``) with its own long-lived workers; point
  ``REPRO_CLUSTER_ADDR`` (or ``address=``) at it and
  :func:`run_jobs_cluster` submits the grid there.  The client is
  stateless and restart-proof: every request rides a fresh connection,
  and if the scheduler bounces mid-sweep the client simply resubmits —
  the journal makes resubmission free for completed points.
* **Ephemeral mode** — no address configured: :class:`LocalCluster`
  stands up an in-process scheduler plus N worker *subprocesses*, runs
  the grid, and tears everything down.  This is what
  ``run_jobs(..., backend="cluster")`` uses, giving any harness entry
  point worker-death survival without deployment ceremony.

Merging is by submission order, exactly like
:func:`repro.harness.parallel.run_jobs`: results come back positionally
aligned with the submitted job list, so callers cannot tell the two
backends apart (and the tests assert they are bit-identical).
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster import protocol
from repro.cluster.faults import FAULTS_ENV_VAR, FaultPlan
from repro.cluster.scheduler import ClusterScheduler, SchedulerConfig, SchedulerTracer
from repro.cluster.serial import job_key, job_to_blob, result_from_wire
from repro.engine.sim import SimulationResult
from repro.harness.parallel import SimJob

#: Env var: ``host:port`` of a running scheduler for service mode.
ADDR_ENV_VAR = "REPRO_CLUSTER_ADDR"

#: Env var: journal path used by ephemeral local clusters (so even
#: one-shot ``backend="cluster"`` sweeps can resume across invocations).
JOURNAL_ENV_VAR = "REPRO_CLUSTER_JOURNAL"


class ClusterSweepError(RuntimeError):
    """The sweep cannot complete: jobs exhausted their attempt budget."""

    def __init__(self, failures: list[dict]):
        self.failures = failures
        detail = "; ".join(
            f"{f.get('key')}: {f.get('error')} (attempts={f.get('attempts')})"
            for f in failures[:5]
        )
        more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        super().__init__(f"{len(failures)} job(s) failed: {detail}{more}")


class ClusterClient:
    """Thin request client for one scheduler address."""

    def __init__(self, address: tuple[str, int], *, timeout: float = 30.0):
        self.address = address
        self.timeout = timeout

    def _request(self, message: dict) -> dict:
        """One request on a fresh connection (restart-proof statelessness
        matters more than connection reuse at client rates)."""
        with protocol.connect(self.address, timeout=self.timeout) as sock:
            return protocol.request(sock, message)

    # -- primitives --------------------------------------------------------

    def submit(self, job_list: list[SimJob], sweep_id: str | None = None) -> dict:
        """Submit a grid; returns the receipt (sweep_id/total/replayed)."""
        entries = [
            {"key": job_key(job), "blob": job_to_blob(job)} for job in job_list
        ]
        message: dict = {"type": "submit", "jobs": entries}
        if sweep_id is not None:
            message["sweep_id"] = sweep_id
        reply = self._request(message)
        if reply.get("type") != "ok":
            raise RuntimeError(f"submit rejected: {reply.get('reason', reply)!r}")
        return reply

    def status(self) -> dict:
        return self._request({"type": "status"})

    def fetch(self, sweep_id: str) -> list[SimulationResult] | None:
        """The sweep's results in submission order, or ``None`` while
        jobs are still outstanding.  Raises :class:`ClusterSweepError`
        once any job has exhausted its attempt budget."""
        reply = self._request({"type": "fetch", "sweep_id": sweep_id})
        kind = reply.get("type")
        if kind == "results":
            return [result_from_wire(doc) for doc in reply["results"]]
        if kind == "pending":
            return None
        if reply.get("failures"):
            raise ClusterSweepError(reply["failures"])
        raise RuntimeError(f"fetch failed: {reply.get('reason', reply)!r}")

    def shutdown(self, *, drain: bool = False) -> dict:
        return self._request({"type": "shutdown", "drain": drain})

    # -- the sweep loop ----------------------------------------------------

    def run(
        self,
        job_list: list[SimJob],
        *,
        poll: float = 0.1,
        timeout: float | None = None,
    ) -> list[SimulationResult]:
        """Submit a grid and wait for its results.

        Survives a scheduler restart mid-sweep: when the service drops
        (connection refused) or forgets the sweep (restarted with only
        the journal), the client resubmits the identical grid — the
        journal replays every completed point, so resubmission costs
        nothing and recomputes nothing.
        """
        if not job_list:
            return []
        deadline = None if timeout is None else time.monotonic() + timeout
        receipt: dict | None = None
        while True:
            results = None
            if receipt is None:
                try:
                    receipt = self.submit(job_list)
                except (OSError, protocol.ProtocolError):
                    receipt = None  # scheduler down/restarting: retry
            if receipt is not None:
                try:
                    results = self.fetch(receipt["sweep_id"])
                except ClusterSweepError:
                    raise
                except (OSError, protocol.ProtocolError, RuntimeError):
                    # Dropped connection, or a restarted scheduler that
                    # no longer knows the sweep: resubmit (free — the
                    # journal replays completed points).
                    receipt = None
            if results is not None:
                return results
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"cluster sweep incomplete after {timeout}s"
                )
            time.sleep(poll)


# -- worker process management --------------------------------------------


def spawn_worker(
    address: tuple[str, int],
    *,
    faults: FaultPlan | None = None,
    strict: bool = False,
    reconnect_deadline: float = 30.0,
    quiet: bool = True,
) -> subprocess.Popen:
    """Start one worker subprocess pointed at ``address``.

    The child gets this interpreter and this checkout (``src`` is put on
    ``PYTHONPATH`` explicitly, so spawning works from any cwd), inherits
    the environment — trace-cache location included — and carries its
    fault plan, if any, in ``REPRO_CLUSTER_FAULTS``.
    """
    env = os.environ.copy()
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if faults is not None and faults.any():
        env[FAULTS_ENV_VAR] = faults.to_env()
    else:
        env.pop(FAULTS_ENV_VAR, None)
    command = [
        sys.executable,
        "-m",
        "repro.cluster.worker",
        "--connect",
        f"{address[0]}:{address[1]}",
        "--reconnect-deadline",
        str(reconnect_deadline),
    ]
    if strict:
        command.append("--strict")
    return subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.DEVNULL if quiet else None,
        stderr=subprocess.DEVNULL if quiet else None,
    )


class LocalCluster:
    """An ephemeral scheduler + N worker subprocesses on this host.

    Context-manager shaped: entering starts everything, exiting drains
    the workers (they exit at their next lease), then reaps and stops.
    ``worker_faults`` assigns a :class:`FaultPlan` per worker slot —
    how the tests and the CI smoke arrange a mid-sweep worker kill.
    """

    def __init__(
        self,
        config: SchedulerConfig,
        workers: int = 2,
        *,
        worker_faults: dict[int, FaultPlan] | None = None,
        tracer: SchedulerTracer | None = None,
        reconnect_deadline: float = 30.0,
    ):
        self.scheduler = ClusterScheduler(config, tracer=tracer)
        self.n_workers = max(1, workers)
        self.worker_faults = worker_faults or {}
        self.reconnect_deadline = reconnect_deadline
        self.processes: list[subprocess.Popen] = []

    @property
    def address(self) -> tuple[str, int]:
        assert self.scheduler.address is not None
        return self.scheduler.address

    def client(self) -> ClusterClient:
        return ClusterClient(self.address)

    def start(self) -> "LocalCluster":
        address = self.scheduler.start()
        for slot in range(self.n_workers):
            self.processes.append(
                spawn_worker(
                    address,
                    faults=self.worker_faults.get(slot),
                    reconnect_deadline=self.reconnect_deadline,
                )
            )
        return self

    def stop(self) -> None:
        self.scheduler.drain()
        deadline = time.monotonic() + 5.0
        for proc in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self.processes.clear()
        self.scheduler.stop()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _warm_local_cache(job_list: list[SimJob]) -> None:
    """Capture each distinct trace once, parent-side, into the shared
    disk cache, so every worker's first touch is a warm ``mmap`` (and
    strict workers never trip on a cold cache)."""
    from repro.trace import cache as trace_cache

    if not trace_cache.cache_enabled():
        return
    for benchmark, limit in dict.fromkeys(
        (job.benchmark, job.max_instructions) for job in job_list
    ):
        trace_cache.cached_trace(benchmark, limit)


def run_jobs_cluster(
    job_list: list[SimJob],
    jobs: int | None = None,
    *,
    address: tuple[str, int] | None = None,
    timeout: float | None = None,
) -> list[SimulationResult]:
    """Execute a grid on the cluster backend.

    With an address (argument or ``REPRO_CLUSTER_ADDR``), the grid goes
    to that running service and ``jobs`` is ignored — capacity belongs
    to the service's workers.  Otherwise an ephemeral local cluster
    with ``jobs`` workers runs it; ``REPRO_CLUSTER_JOURNAL`` may pin
    the journal so even ephemeral sweeps resume across invocations.
    """
    if not job_list:
        return []
    if address is None:
        configured = os.environ.get(ADDR_ENV_VAR, "").strip()
        if configured:
            address = protocol.parse_address(configured)
    if address is not None:
        return ClusterClient(address).run(job_list, timeout=timeout)

    from repro.harness.parallel import effective_jobs

    _warm_local_cache(job_list)
    workers = effective_jobs(jobs if jobs is not None else 1, len(job_list))
    journal_override = os.environ.get(JOURNAL_ENV_VAR, "").strip()
    tmpdir: tempfile.TemporaryDirectory | None = None
    if journal_override:
        journal_path = Path(journal_override)
    else:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        journal_path = Path(tmpdir.name) / "journal.jsonl"
    config = SchedulerConfig(
        journal_path=journal_path,
        heartbeat_interval=0.2,
        heartbeat_timeout=2.0,
        lease_timeout=120.0,
        poll_interval=0.05,
        monitor_interval=0.1,
    )
    try:
        with LocalCluster(config, workers=workers) as cluster:
            return cluster.client().run(
                job_list, poll=0.05, timeout=timeout
            )
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
