"""Fault injection for the cluster service.

Recovery code that is never exercised is broken code waiting for a bad
night, so every failure path the scheduler claims to survive has a knob
here that forces it on demand: the unit tests, the e2e tests and the CI
``cluster-smoke`` job all drive real injected faults through the real
service rather than mocking the failure.

A :class:`FaultPlan` is carried by the *faulty party*: worker-side knobs
ride to the worker process in the ``REPRO_CLUSTER_FAULTS`` environment
variable (JSON), scheduler-side knobs sit on the
:class:`~repro.cluster.scheduler.SchedulerConfig`.  All knobs default
to "off"; a default plan is exactly a production run.

Worker-side knobs
-----------------
``kill_on_lease = n``      SIGKILL ourselves upon receiving the *n*-th
                           lease (1-based) — a worker dying mid-job.
``drop_heartbeats_after``  stop sending heartbeats after that many beats
                           while continuing to work — a wedged/partitioned
                           worker the scheduler must presume dead.
``corrupt_result = n``     flip bytes in the *n*-th result frame so the
                           scheduler receives garbage — a framing-level
                           corruption the protocol must reject safely.
``delay_frame_s``          sleep before every frame send — slow links;
                           shakes out timeout races.

Scheduler-side knobs
--------------------
``fail_leases = n``        reject the first *n* lease requests with an
                           injected error — workers must back off and
                           retry rather than die.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

#: Environment variable carrying a worker's JSON-encoded fault plan.
FAULTS_ENV_VAR = "REPRO_CLUSTER_FAULTS"


@dataclass(frozen=True)
class FaultPlan:
    """Which failures to inject, and when.  Zero values mean "never"."""

    kill_on_lease: int = 0
    drop_heartbeats_after: int = 0
    corrupt_result: int = 0
    delay_frame_s: float = 0.0
    fail_leases: int = 0

    def any(self) -> bool:
        return any(v for v in asdict(self).values())

    def to_env(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan in ``REPRO_CLUSTER_FAULTS``, or the no-fault plan.

        An unreadable value is treated as no faults: injection is a test
        facility and must never take a production worker down by itself.
        """
        raw = (environ or os.environ).get(FAULTS_ENV_VAR, "")
        if not raw.strip():
            return cls()
        try:
            doc = json.loads(raw)
            known = {f: doc[f] for f in doc if f in cls.__dataclass_fields__}
            return cls(**known)
        except (json.JSONDecodeError, TypeError, ValueError):
            return cls()


def corrupt_bytes(frame: bytes) -> bytes:
    """Deterministically mangle a frame's payload (header left intact so
    the receiver reads the full payload, then fails to decode it)."""
    if len(frame) <= 4:
        return frame
    payload = bytes(b ^ 0x5A for b in frame[4:])
    return frame[:4] + payload
