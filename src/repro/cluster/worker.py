"""The cluster worker: lease, execute, report, heartbeat.

A worker is a long-lived process that repeatedly leases one job from
the scheduler, executes it with *exactly* the local harness's job
runner (:func:`repro.harness.parallel._execute` — same content-derived
per-job RNG, same collaborator factories), and reports the result.  A
parallel heartbeat thread proves liveness on a second connection so a
worker busy inside a long simulation still beats.

Execution inherits the config-specialized engine
(:mod:`repro.engine.specialize`): each worker process builds and
memoizes specialized classes *locally*, keyed by the same canonical
fingerprint discipline as :func:`repro.cluster.serial.job_key` — classes
never cross the wire, and ``REPRO_ENGINE_SPECIALIZE=0`` in a worker's
environment forces its runs generic (the result's ``engine_path`` field
travels back for attribution).

Traces come from the persistent VSRT v3 disk cache
(:mod:`repro.trace.cache`): a warm entry is ``mmap``-ed with zero parse
cost, a cold miss falls back to functional capture *unless*
``REPRO_TRACE_STRICT`` is set, in which case the job fails rather than
silently re-materialize (the same strictness contract the local pool
workers honor).

Workers are crash-first: any connection failure — scheduler restart,
network blip, a corrupt frame the scheduler refused — is handled by
reconnecting (with the worker's stable, self-generated id) and
retrying, up to a reconnect deadline.  Results are safe to resend: the
scheduler treats duplicates as idempotent because re-execution is
deterministic.

Run one with ``repro cluster work --connect HOST:PORT`` or
``python -m repro.cluster.worker --connect HOST:PORT``.  Fault
injection (tests/CI only) arrives via ``REPRO_CLUSTER_FAULTS``.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time

from repro.cluster import protocol
from repro.cluster.faults import FaultPlan, corrupt_bytes
from repro.cluster.serial import job_from_blob, result_to_wire
from repro.harness import parallel


class WorkerShutdown(Exception):
    """The worker should exit (drain, or reconnect deadline exceeded)."""

    def __init__(self, message: str, code: int = 0):
        super().__init__(message)
        self.code = code


def make_worker_id() -> str:
    """A stable, globally unique worker identity, generated worker-side
    so it survives scheduler restarts and reconnects."""
    host = socket.gethostname().split(".", 1)[0]
    return f"w-{host}-{os.getpid()}-{os.urandom(3).hex()}"


class ClusterWorker:
    """One worker's connection state and execution loop."""

    def __init__(
        self,
        address: tuple[str, int],
        *,
        strict: bool | None = None,
        faults: FaultPlan | None = None,
        reconnect_deadline: float = 30.0,
    ):
        self.address = address
        self.worker_id = make_worker_id()
        self.strict = parallel.strict_no_capture() if strict is None else strict
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.reconnect_deadline = reconnect_deadline
        self.heartbeat_interval = 1.0
        self.poll_interval = 0.25
        self.jobs_done = 0
        self._sock: socket.socket | None = None
        self._stop = threading.Event()
        self._lease_count = 0
        self._result_count = 0

    # -- connection management --------------------------------------------

    def _connect(self) -> None:
        """(Re)open the control connection and register."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        sock = protocol.connect(self.address, timeout=10.0)
        reply = protocol.request(sock, {
            "type": "register",
            "worker_id": self.worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
        })
        if reply.get("type") != "ok":
            sock.close()
            raise OSError(f"register rejected: {reply!r}")
        self.heartbeat_interval = float(
            reply.get("heartbeat_interval", self.heartbeat_interval)
        )
        self.poll_interval = float(reply.get("poll_interval", self.poll_interval))
        self._sock = sock

    def _reconnect_until_deadline(self, deadline: float) -> None:
        while True:
            try:
                self._connect()
                return
            except (OSError, protocol.ProtocolError):
                if time.monotonic() > deadline:
                    raise WorkerShutdown(
                        "scheduler unreachable past reconnect deadline", code=3
                    ) from None
                self._stop.wait(0.2)
                if self._stop.is_set():
                    raise WorkerShutdown("stopped while reconnecting") from None

    def _request(self, message: dict, *, corrupt_once: bool = False) -> dict:
        """Send one request, reconnecting/resending as needed.

        ``corrupt_once`` injects the corrupt-frame fault: the first
        transmission is mangled (the scheduler must reject it and stay
        healthy), then the clean frame is resent on a fresh connection —
        which is exactly the recovery a real corrupting link needs.
        """
        deadline = time.monotonic() + self.reconnect_deadline
        corrupted = not (corrupt_once and self._take_corrupt_slot(message))
        while True:
            try:
                if self._sock is None:
                    self._reconnect_until_deadline(deadline)
                assert self._sock is not None
                if self.faults.delay_frame_s > 0:
                    time.sleep(self.faults.delay_frame_s)
                frame = protocol.encode_frame(message)
                if not corrupted:
                    corrupted = True
                    self._sock.sendall(corrupt_bytes(frame))
                    try:
                        protocol.recv_frame(self._sock)  # error or EOF
                    except protocol.ProtocolError:
                        pass
                    raise OSError("resend after injected frame corruption")
                self._sock.sendall(frame)
                reply = protocol.recv_frame(self._sock)
                if reply is None:
                    raise OSError("scheduler closed the connection")
                return reply
            except (OSError, protocol.ProtocolError):
                self._sock = None
                self._reconnect_until_deadline(deadline)

    def _take_corrupt_slot(self, message: dict) -> bool:
        if message.get("type") != "result" or self.faults.corrupt_result <= 0:
            return False
        return self._result_count + 1 == self.faults.corrupt_result

    # -- heartbeats --------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        beats = 0
        sock: socket.socket | None = None
        while not self._stop.wait(self.heartbeat_interval):
            if (
                self.faults.drop_heartbeats_after
                and beats >= self.faults.drop_heartbeats_after
            ):
                continue  # injected partition: alive but silent
            try:
                if sock is None:
                    sock = protocol.connect(self.address, timeout=5.0)
                protocol.request(sock, {
                    "type": "heartbeat",
                    "worker_id": self.worker_id,
                })
                beats += 1
            except (OSError, protocol.ProtocolError):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                sock = None  # retry on the next tick
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- execution ---------------------------------------------------------

    def _ensure_trace(self, benchmark: str, max_instructions: int | None) -> None:
        """Warm the process-local memo from the disk cache so
        :func:`parallel._execute` finds the trace without capturing."""
        key = (benchmark, max_instructions)
        if key in parallel._TRACE_CACHE:
            return
        from repro.programs.suite import kernel
        from repro.trace import cache as trace_cache

        trace = None
        if trace_cache.cache_enabled():
            trace = trace_cache.load_trace(
                benchmark, kernel(benchmark).source, max_instructions
            )
        if trace is None:
            if self.strict:
                raise RuntimeError(
                    f"{parallel.STRICT_ENV_VAR}: no warm disk-cache entry "
                    f"for {key!r} and capture is forbidden in workers"
                )
            trace = trace_cache.cached_trace(benchmark, max_instructions)
        parallel._TRACE_CACHE[key] = trace

    def _run_job(self, lease: dict) -> None:
        key = lease["key"]
        attempt = int(lease.get("attempt", 1))
        report = {
            "type": "result",
            "worker_id": self.worker_id,
            "key": key,
            "attempt": attempt,
        }
        try:
            job = job_from_blob(lease["blob"])
            self._ensure_trace(job.benchmark, job.max_instructions)
            result = parallel._execute(job)
            report["ok"] = True
            report["result"] = result_to_wire(result)
        except Exception as error:
            report["ok"] = False
            report["error"] = f"{type(error).__name__}: {error}"
        self._request(report, corrupt_once=True)
        self._result_count += 1
        if report["ok"]:
            self.jobs_done += 1

    # -- main loop ---------------------------------------------------------

    def run(self) -> int:
        try:
            self._connect()
        except (OSError, protocol.ProtocolError):
            deadline = time.monotonic() + self.reconnect_deadline
            try:
                self._reconnect_until_deadline(deadline)
            except WorkerShutdown as shutdown:
                return shutdown.code
        heartbeats = threading.Thread(
            target=self._heartbeat_loop, name="worker-heartbeat", daemon=True
        )
        heartbeats.start()
        try:
            while True:
                reply = self._request({
                    "type": "lease",
                    "worker_id": self.worker_id,
                })
                kind = reply.get("type")
                if kind == "shutdown":
                    return 0
                if kind == "job":
                    self._lease_count += 1
                    if self.faults.kill_on_lease == self._lease_count:
                        # Injected mid-job death: no cleanup, no goodbye —
                        # exactly what OOM-kill or a node loss looks like.
                        os.kill(os.getpid(), signal.SIGKILL)
                    self._run_job(reply)
                    continue
                # idle, or an injected/transient lease error: back off.
                delay = float(reply.get("retry_after", self.poll_interval))
                self._stop.wait(min(delay, 2.0))
        except WorkerShutdown as shutdown:
            return shutdown.code
        finally:
            self._stop.set()
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass


def worker_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cluster work",
        description="Run one cluster sweep worker (see docs/CLUSTER.md)",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="scheduler address",
    )
    parser.add_argument(
        "--reconnect-deadline", type=float, default=30.0,
        help="seconds to keep retrying an unreachable scheduler",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help=f"fail jobs on cold traces (same as {parallel.STRICT_ENV_VAR}=1)",
    )
    args = parser.parse_args(argv)
    worker = ClusterWorker(
        protocol.parse_address(args.connect),
        strict=True if args.strict else None,
        reconnect_deadline=args.reconnect_deadline,
    )
    return worker.run()


if __name__ == "__main__":
    sys.exit(worker_main())
