"""Job identity and wire/journal serialization.

Three concerns live here because they must agree with each other:

* :func:`job_key` — the *content hash* of a :class:`SimJob`.  It is the
  journal key and the scheduler's dedup key, so it must be stable across
  processes, interpreter restarts and hosts (no ``id()``, no
  ``PYTHONHASHSEED``-dependent ``hash()``, no pickle memo accidents):
  it hashes a canonical *text* rendering of the job built from frozen
  dataclass reprs and qualified callable names.
* :func:`job_to_blob` / :func:`job_from_blob` — how a job's full fidelity
  (nested config/model dataclasses, factory callables) crosses the wire:
  pickled, base64-armored so it embeds in a JSON frame.
* :func:`result_to_wire` / :func:`result_from_wire` — how a
  :class:`SimulationResult` travels back and is journaled: plain JSON.
  Every counter is an int and JSON round-trips Python ints and floats
  exactly (``repr`` based), so a result that came over the wire or out
  of the journal compares equal — bit-identical — to one computed
  inline.  Keeping results JSON (not pickle) also makes the journal
  greppable and schema-checkable.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
from dataclasses import asdict
from functools import partial

from repro.engine.config import ProcessorConfig
from repro.engine.sim import SimulationResult
from repro.harness.parallel import BatchJob, SimJob
from repro.metrics.counters import SimCounters

#: Hex digits of the job hash kept as the key (96 bits: collision-safe
#: for any conceivable grid, short enough to read in journal lines).
_KEY_CHARS = 24


def _canonical_callable(obj) -> str:
    """A stable text identity for the factories a job may carry.

    Jobs restrict callables to picklable ones — top-level classes,
    functions, or :func:`functools.partial` over them — exactly the
    shapes this renders deterministically.
    """
    if isinstance(obj, partial):
        inner = _canonical_callable(obj.func)
        kwargs = ",".join(f"{k}={v!r}" for k, v in sorted(obj.keywords.items()))
        return f"partial({inner},args={obj.args!r},kwargs=[{kwargs}])"
    name = getattr(obj, "__qualname__", None) or getattr(obj, "__name__", None)
    if name is not None:
        return f"{getattr(obj, '__module__', '?')}.{name}"
    # A pre-built instance (unusual but allowed for `confidence`): fall
    # back to its type + repr, which frozen collaborators keep stable.
    return f"{type(obj).__module__}.{type(obj).__qualname__}:{obj!r}"


def job_fingerprint(job: SimJob | BatchJob) -> str:
    """The canonical text a job's content hash is computed from.

    A :class:`BatchJob` unit fingerprints as the ordered member
    fingerprints under a ``batch`` header: the same lanes in the same
    order are the same unit (so journals replay it), while any member
    or ordering change produces a fresh key.
    """
    if isinstance(job, BatchJob):
        return "\n---\n".join(
            ["batch"] + [job_fingerprint(member) for member in job.jobs]
        )
    model = job.model
    model_text = (
        "baseline"
        if model is None
        else f"{model.name}|{model.variables!r}|{model.latencies!r}"
    )
    confidence = (
        _canonical_callable(job.confidence)
        if callable(job.confidence)
        else repr(job.confidence)
    )
    predictor = (
        "default" if job.predictor is None else _canonical_callable(job.predictor)
    )
    return "\n".join(
        (
            f"benchmark={job.benchmark}",
            f"config={job.config!r}",
            f"model={model_text}",
            f"max_instructions={job.max_instructions!r}",
            f"confidence={confidence}",
            f"update_timing={job.update_timing}",
            f"predictor={predictor}",
            f"seed={job.seed!r}",
        )
    )


def job_key(job: SimJob | BatchJob) -> str:
    """Content hash of one execution unit — the journal, dedup and
    result-store key (:mod:`repro.service.results`).

    Two jobs with equal settings hash equal no matter which process,
    host or session computed the hash; any setting change (config field,
    model latency, predictor factory argument) changes the key, so a
    journal or result store can never serve stale results for an edited
    sweep.
    """
    digest = hashlib.sha256(job_fingerprint(job).encode("utf-8")).hexdigest()
    return digest[:_KEY_CHARS]


def job_to_blob(job: SimJob) -> str:
    """A job's full fidelity as a JSON-embeddable string."""
    return base64.b64encode(pickle.dumps(job, protocol=4)).decode("ascii")


def job_from_blob(blob: str) -> SimJob:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


def result_to_wire(result: SimulationResult | list) -> dict:
    """A result's JSON form (wire frames and journal records).

    A batched unit's result is a *list* of per-lane results; it rides
    the same opaque result slot as ``{"batch": [...]}`` so the
    scheduler and journal need no schema change.
    """
    if isinstance(result, list):
        return {"batch": [result_to_wire(lane) for lane in result]}
    return {
        "counters": asdict(result.counters),
        "config": asdict(result.config),
        "model_name": result.model_name,
        "confidence_kind": result.confidence_kind,
        "update_timing": result.update_timing,
        "extra": dict(result.extra),
        "engine_path": result.engine_path,
    }


def result_from_wire(doc: dict) -> SimulationResult | list:
    """Rebuild a result; inverse of :func:`result_to_wire`."""
    if "batch" in doc:
        return [result_from_wire(lane) for lane in doc["batch"]]
    counters_doc = dict(doc["counters"])
    extra = counters_doc.pop("extra", {}) or {}
    counters = SimCounters(**counters_doc)
    counters.extra.update(extra)
    return SimulationResult(
        counters=counters,
        config=ProcessorConfig(**doc["config"]),
        model_name=doc.get("model_name"),
        confidence_kind=doc.get("confidence_kind"),
        update_timing=doc.get("update_timing"),
        extra=dict(doc.get("extra") or {}),
        # .get: journals written before engine-path attribution existed
        # replay cleanly as None.
        engine_path=doc.get("engine_path"),
    )
