"""Fault-tolerant cluster sweep service.

The harness's grids — every figure, table and ablation — reduce to a
batch of independent :class:`~repro.harness.parallel.SimJob` points.
``harness.parallel.run_jobs`` fans such a batch over a local process
pool; this package turns the same batch into a *service*: a TCP
scheduler hands jobs to long-lived worker processes (on one host or
many) under lease/heartbeat supervision, retries jobs whose worker died,
and journals every completed point to disk so an interrupted sweep —
worker crash, scheduler crash, whole-host reboot — resumes without
recomputing anything.

Layering (each module usable and testable on its own):

* :mod:`repro.cluster.protocol` — length-prefixed JSON frames and the
  message vocabulary (register / lease / heartbeat / result / submit /
  status / fetch / shutdown).
* :mod:`repro.cluster.serial`   — canonical job content hashes, job
  blobs, and the JSON wire form of :class:`SimulationResult`.
* :mod:`repro.cluster.journal`  — the append-only, fsynced, torn-tail
  tolerant sweep journal keyed by job content hash.
* :mod:`repro.cluster.faults`   — the fault-injection plan used by the
  tests and the CI smoke to prove the recovery paths.
* :mod:`repro.cluster.scheduler` — the service: lease-based assignment,
  heartbeat-driven dead-worker detection, bounded retry with
  exponential backoff + jitter, journal replay, obs event recording.
* :mod:`repro.cluster.worker`   — the worker loop (``python -m
  repro.cluster.worker`` or ``repro cluster work``).
* :mod:`repro.cluster.client`   — submit/wait/fetch, plus the ephemeral
  local cluster behind ``run_jobs(..., backend="cluster")``.

Determinism: a cluster sweep is bit-identical to ``jobs=1``.  Jobs are
the same stateless descriptions ``run_jobs`` executes inline, workers
run the same ``_execute`` (same per-job seeded RNG, same trace tiers),
results merge by submission key, and retried attempts are pure
re-executions whose results are identical — so duplicate completions
are trivially idempotent.
"""

from repro.cluster.client import (
    ClusterClient,
    ClusterSweepError,
    LocalCluster,
    run_jobs_cluster,
)
from repro.cluster.faults import FaultPlan
from repro.cluster.journal import SweepJournal
from repro.cluster.protocol import ProtocolError
from repro.cluster.scheduler import ClusterScheduler, SchedulerConfig, SchedulerTracer
from repro.cluster.serial import job_key

__all__ = [
    "ClusterClient",
    "ClusterScheduler",
    "ClusterSweepError",
    "FaultPlan",
    "LocalCluster",
    "ProtocolError",
    "SchedulerConfig",
    "SchedulerTracer",
    "SweepJournal",
    "job_key",
    "run_jobs_cluster",
]
