"""The cluster wire protocol: length-prefixed JSON frames.

Every message between scheduler, workers and clients is one *frame*: a
4-byte big-endian payload length followed by that many bytes of UTF-8
JSON encoding a single object with a ``"type"`` field.  JSON keeps the
control plane human-readable (``tcpdump``-able, and the journal reuses
the same records); the one opaque field is a job's pickled
:class:`~repro.harness.parallel.SimJob`, carried base64-encoded inside
the ``submit``/``job`` messages (see :mod:`repro.cluster.serial`).

Message vocabulary (the scheduler answers every request with exactly
one response frame):

==============  =======================  ==================================
direction       type                     reply
==============  =======================  ==================================
worker → sched  ``register``             ``ok`` (heartbeat/poll intervals)
worker → sched  ``heartbeat``            ``ok``
worker → sched  ``lease``                ``job`` | ``idle`` | ``shutdown``
worker → sched  ``result``               ``ok`` (``duplicate`` flagged)
client → sched  ``submit``               ``ok`` (total/replayed counts)
client → sched  ``status``               ``status``
client → sched  ``fetch``                ``results`` | ``pending`` | ``error``
client → sched  ``shutdown``             ``ok``
==============  =======================  ==================================

Anything else draws ``{"type": "error", "reason": "unknown-message-type"}``.

Framing is defended on both ends: a declared length above
:data:`MAX_FRAME` is rejected *before* reading the payload (one rogue
or corrupt peer cannot make the scheduler allocate gigabytes), a
connection that closes mid-frame raises :class:`TruncatedFrame`, and a
payload that is not valid JSON raises :class:`FrameCorrupt` — the
scheduler answers what it can and drops the connection, and the
fault-injection tests drive every one of these paths.

The protocol trusts its network: job blobs are pickles, so the service
must only be exposed to hosts that are already trusted to run the code
(the same trust a shared batch queue requires).  See docs/CLUSTER.md.
"""

from __future__ import annotations

import json
import re
import socket
import struct

#: Hard ceiling on one frame's payload (declared-length check).  Large
#: grids fit comfortably: a SimJob blob is a few KB, so ~10k-point
#: submissions stay under this.
MAX_FRAME = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A peer violated the framing or message rules."""


class TruncatedFrame(ProtocolError):
    """The connection closed mid-frame (header or payload)."""


class OversizedFrame(ProtocolError):
    """A frame declared a payload larger than :data:`MAX_FRAME`."""


class FrameCorrupt(ProtocolError):
    """A complete frame's payload was not a JSON object."""


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise OversizedFrame(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return _HEADER.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: dict) -> None:
    """Send one message as a single frame."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF *before* any byte,
    :class:`TruncatedFrame` on EOF mid-read."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise TruncatedFrame(
                f"connection closed {n - remaining}/{n} bytes into a read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame; ``None`` when the peer closed at a frame
    boundary (the normal end of a connection)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise OversizedFrame(
            f"peer declared a {length}-byte frame (MAX_FRAME={MAX_FRAME})"
        )
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise TruncatedFrame("connection closed between header and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameCorrupt(f"undecodable frame payload: {error}") from error
    if not isinstance(message, dict):
        raise FrameCorrupt(f"frame payload is {type(message).__name__}, not object")
    return message


def request(sock: socket.socket, message: dict) -> dict:
    """Send one frame and read its response frame."""
    send_frame(sock, message)
    reply = recv_frame(sock)
    if reply is None:
        raise TruncatedFrame("peer closed without answering")
    return reply


def connect(address: tuple[str, int], timeout: float | None = None) -> socket.socket:
    """Open a protocol connection (TCP_NODELAY — frames are small and
    latency-sensitive)."""
    sock = socket.create_connection(address, timeout=timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - exotic transports
        pass
    return sock


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``host:port`` string (the CLI's ``--connect`` form).

    IPv6 literals use the standard bracketed form — ``[::1]:9000``
    parses to ``("::1", 9000)`` — since a bare ``rpartition(":")``
    would otherwise hand the bracketed host straight to the socket
    layer, which rejects it.  Hostnames and IPv4 stay ``host:port``.
    """
    bracketed = re.match(r"^\[([^\[\]]+)\]:(\d+)$", text)
    if bracketed:
        return bracketed.group(1), int(bracketed.group(2))
    if text.startswith("["):
        raise ValueError(
            f"expected [v6-literal]:port, got {text!r} "
            "(bracket the host and follow it with :port)"
        )
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected host:port, got {text!r}")
    return host, int(port)
