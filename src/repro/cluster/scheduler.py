"""The cluster scheduler: lease-based assignment with crash recovery.

One scheduler process owns a sweep's truth: the set of jobs, who is
computing what, and the journal of durably completed points.  Workers
are *leased* jobs one at a time and prove liveness with heartbeats; a
worker that stops heartbeating (killed, wedged, partitioned) has its
lease revoked and its job requeued with exponential backoff and a
bounded attempt budget.  Completed results are fsynced to the journal
*before* the worker is acknowledged, so a scheduler crash never loses
an acknowledged point — restarting the scheduler over the same journal
and resubmitting the same grid replays every completed job from disk
and recomputes nothing.

Correctness stance: because jobs are deterministic pure functions
(:func:`repro.harness.parallel._execute` with a content-derived seed),
*at-least-once* execution plus first-result-wins merging is exactly
as good as exactly-once — duplicate completions of a job carry
bit-identical results, so the scheduler just keeps the first and flags
later ones as duplicates.  Fault tolerance therefore never trades away
the repo's core invariant (cluster == ``jobs=1``, bit for bit).

Threading model: an accept loop spawns one (daemon) thread per
connection; every handler runs under one lock over the job/worker/sweep
tables (hold times are microseconds — the heavy work happens in the
workers); a monitor thread expires dead workers and stale leases.
"""

from __future__ import annotations

import hashlib
import os
import random
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.faults import FaultPlan
from repro.cluster.journal import SweepJournal
from repro.cluster.protocol import (
    ProtocolError,
    recv_frame,
    send_frame,
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables for one scheduler instance.

    The defaults suit a real deployment (seconds-scale supervision);
    tests and the CI smoke shrink the intervals to keep fault-recovery
    walls under a second.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from .address
    journal_path: str | os.PathLike | None = None
    #: Workers are told to beat this often...
    heartbeat_interval: float = 2.0
    #: ...and are presumed dead after this long without a beat.
    heartbeat_timeout: float = 8.0
    #: Fallback revocation for a leased job whose worker never
    #: heartbeats at all (heartbeats extend the lease).
    lease_timeout: float = 60.0
    #: Total attempts a job may consume before the sweep fails.
    max_attempts: int = 3
    #: Exponential backoff between a job's attempts: base * 2^(n-1),
    #: capped, with multiplicative jitter in [1, 1+jitter].
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    backoff_jitter: float = 0.25
    #: Suggested idle-worker poll interval (sent in lease/idle replies).
    poll_interval: float = 0.25
    monitor_interval: float = 0.1
    #: Scheduler-side fault injection (see repro.cluster.faults).
    faults: FaultPlan = field(default_factory=FaultPlan)


class SchedulerTracer:
    """Optional observability hook: scheduler lifecycle events.

    Events land in a bounded :class:`repro.obs.tracer.EventRing` as
    ``(wall_time, kind, detail)`` tuples — the same oldest-overwrite
    discipline the pipeline tracer uses, so a tracer left attached to a
    long-lived service keeps the most recent window and bounded memory.
    """

    def __init__(self, capacity: int = 4096):
        from repro.obs.tracer import EventRing

        self.events = EventRing(capacity)

    def record(self, kind: str, **detail) -> None:
        self.events.append((time.time(), kind, detail))

    def items(self) -> list:
        return self.events.items()

    def kinds(self) -> set[str]:
        return {kind for _, kind, _ in self.events.items()}


@dataclass
class _JobState:
    key: str
    blob: str | None  # None for journal-replayed/orphan-adopted entries
    status: str = "pending"  # pending | leased | done | failed
    attempts: int = 0  # leases granted so far
    next_eligible: float = 0.0
    worker: str | None = None
    lease_deadline: float = 0.0
    result: dict | None = None  # wire form (serial.result_to_wire)
    error: str | None = None
    replayed: bool = False  # served from the journal, not computed here


@dataclass
class _WorkerState:
    worker_id: str
    last_beat: float
    leased: str | None = None


def sweep_id_for(keys: list[str]) -> str:
    """Deterministic sweep id: a hash of the submitted keys in order.

    Resubmitting the same grid (the resume path) maps to the same sweep
    without the client having to remember anything across restarts.
    """
    digest = hashlib.sha256("\n".join(keys).encode("ascii")).hexdigest()
    return f"sweep-{digest[:12]}"


class ClusterScheduler:
    """The sweep service.  See the module docstring for the design."""

    def __init__(self, config: SchedulerConfig | None = None,
                 tracer: SchedulerTracer | None = None):
        self.config = config or SchedulerConfig()
        self.tracer = tracer
        self._lock = threading.RLock()
        self._jobs: dict[str, _JobState] = {}
        self._workers: dict[str, _WorkerState] = {}
        self._sweeps: dict[str, list[str]] = {}
        self._journal: SweepJournal | None = None
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._stopping = threading.Event()
        self._draining = False
        self._rng = random.Random()
        self._fail_leases_left = self.config.faults.fail_leases
        self.address: tuple[str, int] | None = None
        if self.config.journal_path is not None:
            self._journal = SweepJournal(self.config.journal_path)
            for key, record in self._journal.replay().items():
                self._jobs[key] = _JobState(
                    key=key,
                    blob=None,
                    status="done",
                    attempts=record.get("attempt", 1),
                    result=record["result"],
                    replayed=True,
                )
            if self._jobs:
                self._trace("journal-replayed", records=len(self._jobs),
                            path=str(self._journal.path))

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, listen, and start the accept + monitor threads."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()
        for target, name in (
            (self._accept_loop, "cluster-accept"),
            (self._monitor_loop, "cluster-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        self._trace("scheduler-started", host=self.address[0], port=self.address[1])
        return self.address

    def stop(self) -> None:
        """Stop serving.  The journal is closed last, after the fsync of
        any in-flight append completed under the lock."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()
        if self._journal is not None:
            self._journal.close()
        self._trace("scheduler-stopped")

    def drain(self) -> None:
        """Tell workers to exit: subsequent lease requests get
        ``shutdown`` instead of ``idle``/``job``."""
        with self._lock:
            self._draining = True
        self._trace("drain-requested")

    def __enter__(self) -> "ClusterScheduler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _trace(self, kind: str, **detail) -> None:
        if self.tracer is not None:
            self.tracer.record(kind, **detail)

    # -- socket plumbing ---------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="cluster-conn", daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    message = recv_frame(conn)
                except OSError:
                    break  # connection reset, or closed under us by stop()
                except ProtocolError as error:
                    # Corrupt/truncated/oversized frame: answer if the
                    # socket still works, then drop the connection — one
                    # bad peer must not wedge the service.
                    self._trace("protocol-error", error=str(error))
                    try:
                        send_frame(conn, {"type": "error",
                                          "reason": f"protocol: {error}"})
                    except OSError:
                        pass
                    break
                if message is None:
                    break
                try:
                    reply = self._dispatch(message)
                except Exception as error:  # defensive: never kill the loop
                    reply = {"type": "error", "reason": f"internal: {error}"}
                    self._trace("handler-error", error=repr(error))
                try:
                    send_frame(conn, reply)
                except OSError:
                    break
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, message: dict) -> dict:
        handlers = {
            "register": self._handle_register,
            "heartbeat": self._handle_heartbeat,
            "lease": self._handle_lease,
            "result": self._handle_result,
            "submit": self._handle_submit,
            "status": self._handle_status,
            "fetch": self._handle_fetch,
            "shutdown": self._handle_shutdown,
        }
        handler = handlers.get(message.get("type"))
        if handler is None:
            self._trace("unknown-message", type=str(message.get("type")))
            return {
                "type": "error",
                "reason": f"unknown-message-type: {message.get('type')!r}",
            }
        return handler(message)

    # -- worker plane ------------------------------------------------------

    def _touch_worker(self, worker_id: str) -> _WorkerState:
        """Upsert a worker record (heartbeats auto-register, so worker
        identity survives scheduler restarts without a re-register
        dance — worker ids are generated worker-side)."""
        state = self._workers.get(worker_id)
        if state is None:
            state = _WorkerState(worker_id=worker_id, last_beat=time.monotonic())
            self._workers[worker_id] = state
        else:
            state.last_beat = time.monotonic()
        return state

    def _handle_register(self, message: dict) -> dict:
        worker_id = str(message.get("worker_id", ""))
        if not worker_id:
            return {"type": "error", "reason": "register without worker_id"}
        with self._lock:
            self._touch_worker(worker_id)
        self._trace("worker-registered", worker=worker_id,
                    pid=message.get("pid"), host=message.get("host"))
        return {
            "type": "ok",
            "worker_id": worker_id,
            "heartbeat_interval": self.config.heartbeat_interval,
            "poll_interval": self.config.poll_interval,
        }

    def _handle_heartbeat(self, message: dict) -> dict:
        worker_id = str(message.get("worker_id", ""))
        with self._lock:
            state = self._touch_worker(worker_id)
            if state.leased is not None:
                job = self._jobs.get(state.leased)
                if job is not None and job.status == "leased":
                    # A live worker keeps its lease: heartbeats extend
                    # the deadline so long jobs aren't revoked mid-run.
                    job.lease_deadline = (
                        time.monotonic() + self.config.lease_timeout
                    )
        return {"type": "ok"}

    def _handle_lease(self, message: dict) -> dict:
        worker_id = str(message.get("worker_id", ""))
        now = time.monotonic()
        with self._lock:
            self._touch_worker(worker_id)
            if self._draining:
                return {"type": "shutdown"}
            if self._fail_leases_left > 0:
                self._fail_leases_left -= 1
                self._trace("lease-fault-injected", worker=worker_id,
                            remaining=self._fail_leases_left)
                return {"type": "error", "reason": "injected-lease-fault"}
            job = self._next_eligible(now)
            if job is None:
                return {"type": "idle",
                        "retry_after": self.config.poll_interval}
            job.status = "leased"
            job.attempts += 1
            job.worker = worker_id
            job.lease_deadline = now + self.config.lease_timeout
            self._workers[worker_id].leased = job.key
            self._trace("lease-granted", worker=worker_id, key=job.key,
                        attempt=job.attempts)
            return {
                "type": "job",
                "key": job.key,
                "blob": job.blob,
                "attempt": job.attempts,
            }

    def _next_eligible(self, now: float) -> _JobState | None:
        best: _JobState | None = None
        for job in self._jobs.values():
            if job.status != "pending" or job.next_eligible > now:
                continue
            if best is None or job.next_eligible < best.next_eligible:
                best = job
        return best

    def _handle_result(self, message: dict) -> dict:
        key = str(message.get("key", ""))
        worker_id = str(message.get("worker_id", ""))
        ok = bool(message.get("ok", False))
        with self._lock:
            worker = self._touch_worker(worker_id)
            if worker.leased == key:
                worker.leased = None
            job = self._jobs.get(key)
            if job is None:
                if not ok:
                    return {"type": "ok", "known": False}
                # An orphan result: the worker finished a job this
                # scheduler never issued (it was leased by a previous
                # incarnation before a restart).  The journal is keyed
                # by content hash, so the result is adoptable as-is —
                # the resubmitted sweep will find it already done.
                job = _JobState(key=key, blob=None, status="done",
                                attempts=int(message.get("attempt", 1)),
                                worker=worker_id,
                                result=message.get("result"))
                self._jobs[key] = job
                self._journal_append(job)
                self._trace("orphan-result-adopted", key=key, worker=worker_id)
                return {"type": "ok", "adopted": True}
            if job.status == "done":
                # Deterministic re-execution: a duplicate completion is
                # bit-identical to the journaled one.  Keep the first.
                self._trace("result-duplicate", key=key, worker=worker_id)
                return {"type": "ok", "duplicate": True}
            if ok:
                job.status = "done"
                job.worker = worker_id
                job.result = message.get("result")
                job.error = None
                self._journal_append(job, attempt=int(message.get("attempt",
                                                                  job.attempts)))
                self._trace("result-recorded", key=key, worker=worker_id,
                            attempt=job.attempts)
                return {"type": "ok"}
            self._fail_attempt(job, str(message.get("error", "worker error")))
            return {"type": "ok", "requeued": job.status == "pending"}

    def _journal_append(self, job: _JobState, attempt: int | None = None) -> None:
        if self._journal is not None and job.result is not None:
            self._journal.append(
                job.key,
                job.result,
                attempt=attempt if attempt is not None else job.attempts,
                worker=job.worker or "",
            )

    def _fail_attempt(self, job: _JobState, error: str) -> None:
        """One attempt burned (worker error, death, or lease expiry):
        requeue with backoff, or fail the job at the attempt budget."""
        if job.attempts >= self.config.max_attempts:
            job.status = "failed"
            job.error = error
            job.worker = None
            self._trace("job-failed", key=job.key, attempts=job.attempts,
                        error=error)
            return
        cfg = self.config
        delay = min(cfg.backoff_cap,
                    cfg.backoff_base * (2 ** max(0, job.attempts - 1)))
        delay *= 1.0 + cfg.backoff_jitter * self._rng.random()
        job.status = "pending"
        job.worker = None
        job.next_eligible = time.monotonic() + delay
        job.error = error
        self._trace("job-requeued", key=job.key, attempt=job.attempts,
                    backoff=round(delay, 3), error=error)

    # -- client plane ------------------------------------------------------

    def _handle_submit(self, message: dict) -> dict:
        jobs = message.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            return {"type": "error", "reason": "submit without jobs"}
        keys: list[str] = []
        replayed = completed = fresh = 0
        with self._lock:
            for entry in jobs:
                key = str(entry.get("key", ""))
                blob = entry.get("blob")
                if not key or not isinstance(blob, str):
                    return {"type": "error",
                            "reason": "submit entry without key/blob"}
                keys.append(key)
                job = self._jobs.get(key)
                if job is None:
                    self._jobs[key] = _JobState(key=key, blob=blob)
                    fresh += 1
                    continue
                if job.blob is None:
                    job.blob = blob  # replayed/orphan entries learn their spec
                if job.status == "done":
                    completed += 1
                    if job.replayed:
                        replayed += 1
                elif job.status == "failed":
                    # A resubmission asks for another try with a fresh
                    # attempt budget (the operator's retry button).
                    job.status = "pending"
                    job.attempts = 0
                    job.next_eligible = 0.0
                    job.error = None
            sweep_id = str(message.get("sweep_id") or sweep_id_for(keys))
            self._sweeps[sweep_id] = keys
        self._trace("sweep-submitted", sweep=sweep_id, total=len(keys),
                    completed=completed, replayed=replayed, fresh=fresh)
        return {
            "type": "ok",
            "sweep_id": sweep_id,
            "total": len(keys),
            "completed": completed,
            "replayed": replayed,
        }

    def _handle_status(self, message: dict) -> dict:
        with self._lock:
            counts = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
            for job in self._jobs.values():
                counts[job.status] += 1
            sweeps = {}
            for sweep_id, keys in self._sweeps.items():
                done = sum(
                    1 for k in keys if self._jobs[k].status == "done"
                )
                failed = sum(
                    1 for k in keys if self._jobs[k].status == "failed"
                )
                sweeps[sweep_id] = {
                    "total": len(keys), "done": done, "failed": failed,
                }
            workers = {
                w.worker_id: {
                    "leased": w.leased,
                    "age": round(time.monotonic() - w.last_beat, 3),
                }
                for w in self._workers.values()
            }
        journal = None
        if self._journal is not None:
            journal = {"path": str(self._journal.path)}
        return {
            "type": "status",
            "jobs": counts,
            "sweeps": sweeps,
            "workers": workers,
            "draining": self._draining,
            "journal": journal,
        }

    def _handle_fetch(self, message: dict) -> dict:
        sweep_id = str(message.get("sweep_id", ""))
        with self._lock:
            keys = self._sweeps.get(sweep_id)
            if keys is None:
                return {"type": "error", "reason": f"unknown sweep {sweep_id!r}"}
            failures = [
                {"key": k, "error": self._jobs[k].error, "attempts":
                 self._jobs[k].attempts}
                for k in keys if self._jobs[k].status == "failed"
            ]
            if failures:
                return {"type": "error", "reason": "sweep has failed jobs",
                        "failures": failures}
            done = sum(1 for k in keys if self._jobs[k].status == "done")
            if done < len(keys):
                return {"type": "pending", "done": done, "total": len(keys)}
            results = [self._jobs[k].result for k in keys]
        self._trace("sweep-fetched", sweep=sweep_id, total=len(keys))
        return {"type": "results", "sweep_id": sweep_id, "results": results}

    def _handle_shutdown(self, message: dict) -> dict:
        if message.get("drain"):
            self.drain()
            return {"type": "ok", "draining": True}
        self._trace("shutdown-requested")
        # Reply first, then stop from a helper thread so this handler's
        # send still goes out on a live socket.
        threading.Thread(target=self.stop, daemon=True).start()
        return {"type": "ok", "stopping": True}

    # -- supervision -------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.config.monitor_interval):
            now = time.monotonic()
            with self._lock:
                self._expire_workers(now)
                self._expire_leases(now)

    def _expire_workers(self, now: float) -> None:
        for worker_id in list(self._workers):
            state = self._workers[worker_id]
            if now - state.last_beat <= self.config.heartbeat_timeout:
                continue
            del self._workers[worker_id]
            self._trace("worker-dead", worker=worker_id, leased=state.leased)
            if state.leased is not None:
                job = self._jobs.get(state.leased)
                if job is not None and job.status == "leased" and \
                        job.worker == worker_id:
                    self._fail_attempt(job, f"worker {worker_id} stopped "
                                            "heartbeating")

    def _expire_leases(self, now: float) -> None:
        for job in self._jobs.values():
            if job.status == "leased" and now > job.lease_deadline:
                self._fail_attempt(job, f"lease expired on {job.worker}")
