"""The append-only, crash-safe sweep journal.

One record per *completed* job, appended and ``fsync``-ed before the
scheduler acknowledges the worker's result — so a record's existence
means the result durably survived, and a job with no record is safe to
re-run (re-execution is deterministic, so the worst a crash costs is
recomputing in-flight points, never wrong results).

Format: JSON lines.  Each line is one object::

    {"v": 1, "key": <job content hash>, "attempt": n, "worker": id,
     "result": {...}, "crc": <crc32 of the line minus the crc field>}

The per-record CRC plus the trailing newline give two independent
torn-write detectors: a crash mid-append leaves either a line without a
terminator or a terminated line whose CRC does not match, and *both*
are silently discarded by :meth:`SweepJournal.replay` (a torn tail is
the expected crash artifact, not corruption worth failing over).  A bad
record followed by further well-formed lines is different — that means
the file was damaged, not torn — so replay stops at the first bad
record and reports how many trailing records it discarded, and the
next append truncates the file back to the last good byte so the
journal never grows an unreadable middle.

Keys are content hashes (:func:`repro.cluster.serial.job_key`), so a
journal outlives any single scheduler process, sweep submission or
client: resubmitting an interrupted grid replays every already-journaled
point from disk and recomputes nothing.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

_VERSION = 1


class JournalError(Exception):
    """The journal file cannot be used (I/O failure, not torn records)."""


def _record_crc(doc: dict) -> int:
    """CRC of a record's canonical text, excluding the crc field itself."""
    body = {k: doc[k] for k in sorted(doc) if k != "crc"}
    return zlib.crc32(json.dumps(body, separators=(",", ":"), sort_keys=True).encode())


class SweepJournal:
    """Append/replay access to one journal file.

    The file is opened lazily on first append; replay of a missing file
    is an empty journal (a fresh sweep).  One instance is single-writer
    (the scheduler); readers (tests, tooling) may replay concurrently.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._fh = None
        #: Filled by :meth:`replay`: records discarded because the file
        #: was damaged mid-stream (0 for a clean or merely torn file).
        self.discarded = 0
        #: Byte offset of the end of the last good record seen by replay.
        self._good_end = 0

    # -- read side ---------------------------------------------------------

    def replay(self) -> dict[str, dict]:
        """Load every intact record, keyed by job content hash.

        Duplicate keys keep the *first* record (results are
        deterministic, so later duplicates are identical; first-wins
        matches the scheduler's idempotent-result rule).  A torn or
        corrupt tail is dropped; a corrupt record with valid records
        after it truncates replay there and counts the rest in
        :attr:`discarded`.
        """
        records: dict[str, dict] = {}
        self.discarded = 0
        self._good_end = 0
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return records
        except OSError as error:
            raise JournalError(f"cannot read journal {self.path}: {error}") from error
        lines = data.split(b"\n")
        lines.pop()  # bytes after the last newline: a torn append, dropped
        offset = 0
        bad_seen = False
        for raw in lines:
            line_end = offset + len(raw) + 1  # include the newline
            offset = line_end
            if not raw:
                continue
            doc = self._parse(raw)
            if doc is None:
                bad_seen = True  # CRC mismatch / undecodable: damaged
            elif bad_seen:
                # Valid records after a bad one: a damaged middle, not a
                # torn tail.  Replay stops at the damage; count the rest.
                self.discarded += 1
            else:
                records.setdefault(doc["key"], doc)
                self._good_end = line_end
        return records

    @staticmethod
    def _parse(raw: bytes) -> dict | None:
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or "key" not in doc or "result" not in doc:
            return None
        if _record_crc(doc) != doc.get("crc"):
            return None
        return doc

    def records(self) -> list[dict]:
        """Every intact record in append order (tooling/tests view)."""
        out: list[dict] = []
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return out
        lines = data.split(b"\n")
        lines.pop()
        for raw in lines:
            if not raw:
                continue
            doc = self._parse(raw)
            if doc is None:
                break
            out.append(doc)
        return out

    # -- write side --------------------------------------------------------

    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Re-scan so a writer attached to an existing journal trims a
            # torn/damaged tail instead of appending after it.
            self.replay()
            self._fh = open(self.path, "r+b" if self.path.exists() else "w+b")
            self._fh.seek(0, os.SEEK_END)
            if self._fh.tell() > self._good_end:
                self._fh.truncate(self._good_end)
                self._fh.seek(self._good_end)
        return self._fh

    def append(self, key: str, result: dict, *, attempt: int = 1,
               worker: str = "", meta: dict | None = None) -> dict:
        """Durably append one completed-job record; returns the record.

        The write is flushed and ``fsync``-ed before returning — the
        scheduler's acknowledgement of a result *is* this fsync.
        """
        doc = {
            "v": _VERSION,
            "key": key,
            "attempt": attempt,
            "worker": worker,
            "result": result,
        }
        if meta:
            doc["meta"] = meta
        doc["crc"] = _record_crc(doc)
        line = json.dumps(doc, separators=(",", ":"), sort_keys=True) + "\n"
        fh = self._open()
        try:
            fh.write(line.encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())
        except OSError as error:
            raise JournalError(f"journal append failed: {error}") from error
        self._good_end = fh.tell()
        return doc

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
