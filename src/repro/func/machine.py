"""The VSR functional machine: architected state + instruction semantics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.assembler import Program, STACK_TOP
from repro.func import alu
from repro.func.memory_image import MemoryImage
from repro.isa.instruction import Instruction
from repro.isa.opcodes import INSTRUCTION_BYTES, InstrFormat, OpClass, Opcode
from repro.isa.registers import NUM_REGS


class MachineError(RuntimeError):
    """Raised on execution faults (bad pc, runaway programs, ...)."""


_LOAD_SIZES = {Opcode.LD: 8, Opcode.LW: 4, Opcode.LBU: 1}
_STORE_SIZES = {Opcode.SD: 8, Opcode.SW: 4, Opcode.SB: 1}


@dataclass(frozen=True)
class StepResult:
    """Everything observable about one architecturally executed instruction.

    This is the raw material for dynamic trace records: the timing simulator
    needs the destination value (for value-prediction equality checks), the
    effective address (for cache/LSQ modeling) and the control outcome (for
    branch-prediction modeling).
    """

    pc: int
    instr: Instruction
    next_pc: int
    dest_reg: int | None = None
    dest_value: int | None = None
    mem_addr: int | None = None
    mem_size: int | None = None
    store_value: int | None = None
    branch_taken: bool | None = None
    halted: bool = False


class Machine:
    """Architected-state interpreter for assembled VSR programs."""

    def __init__(self, program: Program):
        self.program = program
        self.regs: list[int] = [0] * NUM_REGS
        self.regs[29] = STACK_TOP  # sp
        self.mem = MemoryImage()
        if program.data:
            self.mem.store_bytes(program.data_base, program.data)
        self.pc = program.entry
        self.halted = False
        self.instruction_count = 0
        self.output: list[int] = []  # values emitted by PRINT

    # -- register helpers -------------------------------------------------

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & alu.MASK64

    # -- execution ---------------------------------------------------------

    def step(self) -> StepResult:
        """Execute one instruction and return its observable effects."""
        if self.halted:
            raise MachineError("machine is halted")
        pc = self.pc
        instr = self.program.instruction_at(pc)
        result = self._execute(pc, instr)
        self.pc = result.next_pc
        self.halted = result.halted
        self.instruction_count += 1
        return result

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run until HALT; returns the dynamic instruction count."""
        while not self.halted:
            if self.instruction_count >= max_instructions:
                raise MachineError(
                    f"exceeded instruction budget ({max_instructions}); "
                    "runaway program?"
                )
            self.step()
        return self.instruction_count

    def _execute(self, pc: int, instr: Instruction) -> StepResult:
        opcode = instr.opcode
        opclass = instr.opclass
        fall_through = pc + INSTRUCTION_BYTES

        if opcode is Opcode.NOP:
            return StepResult(pc, instr, fall_through)
        if opcode is Opcode.HALT:
            return StepResult(pc, instr, fall_through, halted=True)
        if opcode is Opcode.PRINT:
            self.output.append(self.read_reg(instr.rs))
            return StepResult(pc, instr, fall_through)

        fmt = instr.format
        if fmt is InstrFormat.R:
            value = alu.apply_binop(
                opcode, self.read_reg(instr.rs), self.read_reg(instr.rt)
            )
            self.write_reg(instr.rd, value)
            return StepResult(
                pc, instr, fall_through, dest_reg=instr.rd, dest_value=value
            )
        if fmt is InstrFormat.I:
            value = alu.apply_immop(opcode, self.read_reg(instr.rs), instr.imm)
            self.write_reg(instr.rd, value)
            return StepResult(
                pc, instr, fall_through, dest_reg=instr.rd, dest_value=value
            )
        if fmt is InstrFormat.LI:
            value = (
                alu.to_unsigned(instr.imm << 16)
                if opcode is Opcode.LUI
                else alu.to_unsigned(instr.imm)
            )
            self.write_reg(instr.rd, value)
            return StepResult(
                pc, instr, fall_through, dest_reg=instr.rd, dest_value=value
            )
        if opclass is OpClass.LOAD:
            address = alu.to_unsigned(self.read_reg(instr.rs) + instr.imm)
            size = _LOAD_SIZES[opcode]
            raw = self.mem.load_uint(address, size)
            if opcode is Opcode.LW and raw & (1 << 31):
                raw = alu.to_unsigned(raw - (1 << 32))
            self.write_reg(instr.rd, raw)
            return StepResult(
                pc,
                instr,
                fall_through,
                dest_reg=instr.rd,
                dest_value=raw,
                mem_addr=address,
                mem_size=size,
            )
        if opclass is OpClass.STORE:
            address = alu.to_unsigned(self.read_reg(instr.rs) + instr.imm)
            size = _STORE_SIZES[opcode]
            value = self.read_reg(instr.rt)
            self.mem.store_uint(address, value, size)
            return StepResult(
                pc,
                instr,
                fall_through,
                mem_addr=address,
                mem_size=size,
                store_value=value & ((1 << (8 * size)) - 1),
            )
        if opclass is OpClass.BRANCH:
            taken = alu.branch_taken(
                opcode,
                self.read_reg(instr.rs),
                self.read_reg(instr.rt) if instr.rt is not None else 0,
            )
            next_pc = instr.imm if taken else fall_through
            return StepResult(pc, instr, next_pc, branch_taken=taken)
        if opcode is Opcode.J:
            return StepResult(pc, instr, instr.imm, branch_taken=True)
        if opcode is Opcode.JAL:
            self.write_reg(instr.rd, fall_through)
            return StepResult(
                pc,
                instr,
                instr.imm,
                dest_reg=instr.rd,
                dest_value=fall_through,
                branch_taken=True,
            )
        if opcode is Opcode.JR:
            return StepResult(pc, instr, self.read_reg(instr.rs), branch_taken=True)
        if opcode is Opcode.JALR:
            target = self.read_reg(instr.rs)
            self.write_reg(instr.rd, fall_through)
            return StepResult(
                pc,
                instr,
                target,
                dest_reg=instr.rd,
                dest_value=fall_through,
                branch_taken=True,
            )
        raise MachineError(f"unimplemented opcode: {opcode}")
