"""Arithmetic/logic operation semantics for the VSR ISA.

All register values are 64-bit.  Helpers convert between the unsigned
representation stored in the register file and Python's unbounded signed
integers.  Floating-point opcodes operate on Q32.32 fixed-point encodings so
the whole machine stays integer-valued and bit-exact across platforms — the
timing study only cares about their multi-cycle latency, not IEEE semantics.
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode

MASK64 = (1 << 64) - 1
_FIXED_SHIFT = 32


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    value &= MASK64
    return value - (1 << 64) if value & (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Truncate a Python integer into the 64-bit unsigned representation."""
    return value & MASK64


def _shift_amount(value: int) -> int:
    return value & 0x3F


def _div_trunc(a: int, b: int) -> int:
    """Signed division truncating toward zero (C semantics)."""
    if b == 0:
        return -1 & MASK64  # division by zero yields all-ones, like RISC-V
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return to_unsigned(q)


def _rem_trunc(a: int, b: int) -> int:
    """Signed remainder with the sign of the dividend (C semantics)."""
    if b == 0:
        return to_unsigned(a)
    r = abs(a) % abs(b)
    if a < 0:
        r = -r
    return to_unsigned(r)


def _fixed_mul(a: int, b: int) -> int:
    return to_unsigned((to_signed(a) * to_signed(b)) >> _FIXED_SHIFT)


def _fixed_div(a: int, b: int) -> int:
    sb = to_signed(b)
    if sb == 0:
        return MASK64
    return to_unsigned((to_signed(a) << _FIXED_SHIFT) // sb)


_BINOPS = {
    Opcode.ADD: lambda a, b: to_unsigned(a + b),
    Opcode.SUB: lambda a, b: to_unsigned(a - b),
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.NOR: lambda a, b: to_unsigned(~(a | b)),
    Opcode.SLL: lambda a, b: to_unsigned(a << _shift_amount(b)),
    Opcode.SRL: lambda a, b: a >> _shift_amount(b),
    Opcode.SRA: lambda a, b: to_unsigned(to_signed(a) >> _shift_amount(b)),
    Opcode.SLT: lambda a, b: int(to_signed(a) < to_signed(b)),
    Opcode.SLTU: lambda a, b: int(a < b),
    Opcode.MIN: lambda a, b: a if to_signed(a) <= to_signed(b) else b,
    Opcode.MAX: lambda a, b: a if to_signed(a) >= to_signed(b) else b,
    Opcode.MUL: lambda a, b: to_unsigned(to_signed(a) * to_signed(b)),
    Opcode.MULH: lambda a, b: to_unsigned((to_signed(a) * to_signed(b)) >> 64),
    Opcode.DIV: lambda a, b: _div_trunc(to_signed(a), to_signed(b)),
    Opcode.REM: lambda a, b: _rem_trunc(to_signed(a), to_signed(b)),
    Opcode.FADD: lambda a, b: to_unsigned(a + b),
    Opcode.FSUB: lambda a, b: to_unsigned(a - b),
    Opcode.FMUL: _fixed_mul,
    Opcode.FDIV: _fixed_div,
}

_IMM_TO_BINOP = {
    Opcode.ADDI: Opcode.ADD,
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLLI: Opcode.SLL,
    Opcode.SRLI: Opcode.SRL,
    Opcode.SRAI: Opcode.SRA,
    Opcode.SLTI: Opcode.SLT,
}

_BRANCH_CONDITIONS = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Opcode.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Opcode.BLTZ: lambda a, b: to_signed(a) < 0,
    Opcode.BGEZ: lambda a, b: to_signed(a) >= 0,
    Opcode.BEQZ: lambda a, b: a == 0,
    Opcode.BNEZ: lambda a, b: a != 0,
}


def apply_binop(opcode: Opcode, a: int, b: int) -> int:
    """Apply a register-register (or FP) operation to two 64-bit values."""
    fn = _BINOPS.get(opcode)
    if fn is None:
        raise ValueError(f"not a binary ALU opcode: {opcode}")
    return fn(a & MASK64, b & MASK64)


def apply_immop(opcode: Opcode, a: int, imm: int) -> int:
    """Apply a register-immediate operation."""
    base = _IMM_TO_BINOP.get(opcode)
    if base is None:
        raise ValueError(f"not an immediate ALU opcode: {opcode}")
    return apply_binop(base, a, to_unsigned(imm))


def branch_taken(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a branch condition on 64-bit register values."""
    fn = _BRANCH_CONDITIONS.get(opcode)
    if fn is None:
        raise ValueError(f"not a branch opcode: {opcode}")
    return fn(a & MASK64, b & MASK64)


def float_to_fixed(value: float) -> int:
    """Encode a Python float into the Q32.32 fixed-point register format."""
    return to_unsigned(int(round(value * (1 << _FIXED_SHIFT))))


def fixed_to_float(value: int) -> float:
    """Decode a Q32.32 register value to a Python float."""
    return to_signed(value) / (1 << _FIXED_SHIFT)
