"""Functional (architectural) simulator for VSR programs.

Executes an assembled :class:`~repro.asm.assembler.Program` instruction by
instruction, maintaining architected register and memory state.  It is the
golden reference for instruction semantics and the producer of the dynamic
instruction traces replayed by the timing simulator.
"""

from repro.func.memory_image import MemoryImage
from repro.func.machine import Machine, MachineError, StepResult

__all__ = ["MemoryImage", "Machine", "MachineError", "StepResult"]
