"""Sparse byte-addressable memory for the functional simulator."""

from __future__ import annotations

_CHUNK_BITS = 12
_CHUNK_SIZE = 1 << _CHUNK_BITS


class MemoryImage:
    """Sparse memory image backed by fixed-size bytearray chunks.

    Reads of untouched memory return zero, so ``.space`` regions and the
    stack need no explicit initialization.
    """

    def __init__(self) -> None:
        self._chunks: dict[int, bytearray] = {}

    def _chunk_for(self, address: int) -> tuple[bytearray, int]:
        base = address >> _CHUNK_BITS
        chunk = self._chunks.get(base)
        if chunk is None:
            chunk = bytearray(_CHUNK_SIZE)
            self._chunks[base] = chunk
        return chunk, address & (_CHUNK_SIZE - 1)

    def load_bytes(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``address``."""
        if address < 0 or size < 0:
            raise ValueError(f"bad memory read: addr={address:#x} size={size}")
        out = bytearray(size)
        pos = 0
        while pos < size:
            chunk, offset = self._chunk_for(address + pos)
            take = min(size - pos, _CHUNK_SIZE - offset)
            out[pos : pos + take] = chunk[offset : offset + take]
            pos += take
        return bytes(out)

    def store_bytes(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at ``address``."""
        if address < 0:
            raise ValueError(f"bad memory write: addr={address:#x}")
        pos = 0
        while pos < len(data):
            chunk, offset = self._chunk_for(address + pos)
            take = min(len(data) - pos, _CHUNK_SIZE - offset)
            chunk[offset : offset + take] = data[pos : pos + take]
            pos += take

    def load_uint(self, address: int, size: int) -> int:
        """Read a ``size``-byte little-endian unsigned integer."""
        return int.from_bytes(self.load_bytes(address, size), "little")

    def store_uint(self, address: int, value: int, size: int) -> None:
        """Write a ``size``-byte little-endian unsigned integer."""
        self.store_bytes(address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def load_cstring(self, address: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string (debug/inspection helper)."""
        raw = bytearray()
        for i in range(limit):
            byte = self.load_uint(address + i, 1)
            if byte == 0:
                break
            raw.append(byte)
        return raw.decode("latin-1")

    def touched_chunks(self) -> int:
        """Number of backing chunks allocated (memory-footprint metric)."""
        return len(self._chunks)
