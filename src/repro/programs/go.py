"""go stand-in: board scanning with branchy positional heuristics.

Behaviour class: 2-D array walks, neighbour inspection with many
data-dependent (poorly predictable) branches, and small-integer scoring
arithmetic.  SPEC's go predicted-instruction fraction: 78.7%, with the
suite's worst branch behaviour.
"""

SOURCE = """
# go: score a 19x19 board by counting liberties of each stone and applying
# pattern bonuses, several evaluation passes with a mutating board.
.data
board:  .space 2888           # 19*19 cells, 8 bytes each (0 empty 1 black 2 white)
.text
main:
    li   s7, 0                # checksum / total score
    li   s5, 0                # pass
    li   s6, 6                # passes
    # seed the board with a deterministic pattern:
    # cell(x, y) = (x*7 + y*13 + 5) mod 3 == (x + y + 2) mod 3,
    # tracked incrementally (+1 mod 3 per step in x and in y)
    la   t8, board            # write cursor
    li   t3, 0                # y
    li   t7, 2                # row-start cell value
seedy:
    li   t4, 0                # x
    mv   t6, t7
seedx:
    sd   t6, 0(t8)
    addi t8, t8, 8
    inc  t6
    li   t5, 3
    blt  t6, t5, seednx
    li   t6, 0
seednx:
    inc  t4
    li   t5, 19
    blt  t4, t5, seedx
    inc  t7
    li   t5, 3
    blt  t7, t5, seedny
    li   t7, 0
seedny:
    inc  t3
    li   t5, 19
    blt  t3, t5, seedy

passes:
    li   s0, 1                # y in 1..17 (skip edges)
yloop:
    li   s1, 1                # x
xloop:
    # idx = y*19 + x
    li   t0, 19
    mul  t1, s0, t0
    add  t1, t1, s1
    slli t2, t1, 3
    la   t3, board
    add  t2, t2, t3
    ld   t4, 0(t2)            # stone
    beqz t4, nextx            # empty: no score
    # count empty neighbours (liberties)
    li   a0, 0                # liberties
    ld   t5, -8(t2)           # west
    bnez t5, n1
    inc  a0
n1: ld   t5, 8(t2)            # east
    bnez t5, n2
    inc  a0
n2: ld   t5, -152(t2)         # north (19*8)
    bnez t5, n3
    inc  a0
n3: ld   t5, 152(t2)          # south
    bnez t5, n4
    inc  a0
n4:
    # score: stones in atari (1 liberty) matter most
    li   t6, 1
    bne  a0, t6, notatari
    slli a1, t4, 2            # atari bonus by colour
    add  s7, s7, a1
    # flip stones in atari (board mutates across passes)
    li   t7, 3
    sub  t7, t7, t4
    sd   t7, 0(t2)
    j    scored
notatari:
    add  s7, s7, a0           # liberties feed the score
    beqz a0, dead
    # positional bonus: centre-weighted influence (pure arithmetic)
    li   a2, 9
    sub  a3, s0, a2           # dy from centre
    sub  t5, s1, a2           # dx from centre
    mul  a3, a3, a3
    mul  t5, t5, t5
    add  a3, a3, t5
    li   t5, 81
    sub  a3, t5, a3
    mul  a3, a3, t4           # scaled by stone colour
    srai a3, a3, 4
    add  s7, s7, a3
    j    scored
dead:
    sd   r0, 0(t2)            # no liberties: remove
scored:
nextx:
    inc  s1
    li   t0, 18
    blt  s1, t0, xloop
    inc  s0
    li   t0, 18
    blt  s0, t0, yloop
    inc  s5
    blt  s5, s6, passes
    print s7
    halt
"""
