"""Benchmark kernels: SPECint95 stand-ins written in VSR assembly.

The paper evaluates SPECint95 (Table 1).  Those binaries are unavailable
offline, so each benchmark is represented by a kernel exercising the
behaviour class that drives its value predictability and branch behaviour
(see DESIGN.md, substitutions).  Every kernel prints a checksum before
halting so functional tests can pin its architectural behaviour.
"""

from repro.programs.suite import (
    KernelSpec,
    benchmark_suite,
    kernel,
    kernel_names,
    PAPER_TABLE1,
)
from repro.programs.micro import MICRO_KERNELS, micro_kernel

__all__ = [
    "KernelSpec",
    "benchmark_suite",
    "kernel",
    "kernel_names",
    "PAPER_TABLE1",
    "MICRO_KERNELS",
    "micro_kernel",
]
