"""ijpeg stand-in: fixed-point DCT-like multiply-accumulate kernel.

Behaviour class: dense arithmetic over 8x8 blocks with a constant
coefficient table — long strings of register-writing instructions,
few branches (all loop-closing and well-predicted), highly repetitive
load values.  SPEC's ijpeg has the suite's highest predicted-instruction
fraction: 82.0%.
"""

SOURCE = """
# ijpeg: 1-D DCT-ish transform applied to rows of an 8x8 block, repeated
# over a stream of blocks with periodically repeating content.
.data
coeff:  .word 64, 89, 83, 75, 64, 50, 36, 18
block:  .space 512            # 8x8 input (filled per block)
out:    .space 512
.text
main:
    li   s0, 0                # block index
    li   s1, 24               # number of blocks
    li   s7, 0                # checksum
blocks:
    # fill the block with a period-4 pattern: v = (r*8+c+blk) & 3
    la   t0, block
    li   t1, 0                # linear index
fill:
    add  t2, t1, s0
    andi t2, t2, 3
    slli t3, t1, 3
    add  t3, t3, t0
    sd   t2, 0(t3)
    inc  t1
    slti t4, t1, 64
    bnez t4, fill

    # transform each row: out[r][k] = sum_c coeff[c] * block[r][c] (k folded)
    li   t1, 0                # row
rows:
    slli t5, t1, 6            # row offset (8 entries * 8 bytes)
    la   t6, block
    add  t6, t6, t5
    la   t7, out
    add  t7, t7, t5
    la   t8, coeff
    # unrolled 8-tap multiply-accumulate
    ld   a0, 0(t6)
    ld   a1, 0(t8)
    mul  s2, a0, a1
    ld   a0, 8(t6)
    ld   a1, 8(t8)
    mul  a2, a0, a1
    add  s2, s2, a2
    ld   a0, 16(t6)
    ld   a1, 16(t8)
    mul  a2, a0, a1
    add  s2, s2, a2
    ld   a0, 24(t6)
    ld   a1, 24(t8)
    mul  a2, a0, a1
    add  s2, s2, a2
    ld   a0, 32(t6)
    ld   a1, 32(t8)
    mul  a2, a0, a1
    add  s2, s2, a2
    ld   a0, 40(t6)
    ld   a1, 40(t8)
    mul  a2, a0, a1
    add  s2, s2, a2
    ld   a0, 48(t6)
    ld   a1, 48(t8)
    mul  a2, a0, a1
    add  s2, s2, a2
    ld   a0, 56(t6)
    ld   a1, 56(t8)
    mul  a2, a0, a1
    add  s2, s2, a2
    # descale and store
    srai s2, s2, 3
    sd   s2, 0(t7)
    add  s7, s7, s2
    inc  t1
    slti t4, t1, 8
    bnez t4, rows

    inc  s0
    blt  s0, s1, blocks
    print s7
    halt
"""
