"""Parameterized micro-kernels for controlled experiments.

Unlike the SPECint95 stand-ins (fixed programs with realistic mixes),
these generators produce minimal workloads that isolate one behaviour —
a serial reduction, a pointer chase, independent streaming arithmetic,
recursion, or the canonical value-predictable periodic chain — with the
knobs tests and ablations need.

Every generator returns VSR assembly source; assemble/trace it with
:func:`repro.trace.trace_program`.
"""

from __future__ import annotations


def reduction(n: int = 200, op: str = "add") -> str:
    """A serial dependence chain: ``acc = acc <op> i`` for ``n`` steps.

    The accumulator values are non-repeating, so value prediction cannot
    break this chain — the control workload for VP studies.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if op not in ("add", "xor", "mul"):
        raise ValueError(f"unsupported op {op!r}")
    # Exactly one chain operation per iteration: a second operation that
    # reproduces the accumulator's value (e.g. a mask) would itself become
    # predictable through level-2 context sharing and halve the chain.
    return f"""
.text
main:
    li   t0, 0                # i
    li   t1, {n}
    li   t2, 1                # acc (1 so mul chains stay nonzero)
loop:
    bge  t0, t1, done
    {op}  t2, t2, t0
    inc  t0
    j    loop
done:
    andi t2, t2, 0xffff
    print t2
    halt
"""


def periodic_chain(
    period: int = 4, iterations: int = 200, chain_ops: int = 3
) -> str:
    """The canonical VP-friendly loop: a period-``period`` loop-carried
    value feeding a chain of ``chain_ops`` dependent operations.

    Correct value prediction of the table load collapses the chain; the
    super/great/good gap on this kernel is the latency model in isolation.
    """
    if period < 1 or iterations < 1 or chain_ops < 1:
        raise ValueError("period, iterations and chain_ops must be positive")
    values = ", ".join(str(17 + 10 * i) for i in range(period))
    # The chain restarts from the predicted value each iteration (t6 = t5
    # then chain_ops dependent steps), so a correct prediction of the
    # table load collapses the whole chain; only the s7 accumulation is
    # loop-carried.
    chain = "    mv   t6, t5\n" + "\n".join(
        "    add  t6, t6, t5" if i % 2 == 0 else "    xor  t6, t6, t5"
        for i in range(chain_ops)
    )
    return f"""
.data
table: .word {values}
.text
main:
    li   t0, 0
    li   t1, {iterations}
    li   t6, 0
    li   s7, 0
loop:
    bge  t0, t1, done
    li   t2, {period}
    rem  t3, t0, t2
    slli t3, t3, 3
    la   t4, table
    add  t4, t4, t3
    ld   t5, 0(t4)            # the predictable producer
{chain}
    add  s7, s7, t6
    andi s7, s7, 0xffffff
    inc  t0
    j    loop
done:
    print s7
    halt
"""


def pointer_chase(nodes: int = 32, iterations: int = 30) -> str:
    """Traverse a ring of linked nodes: serial loads with constant (hence
    perfectly predictable) pointer values — prediction turns a
    load-latency-bound walk into parallel execution."""
    if nodes < 2 or iterations < 1:
        raise ValueError("nodes must be >= 2 and iterations positive")
    return f"""
.data
ring: .space {nodes * 16}
.text
main:
    # build the ring: node i -> node i+1, payload i; last -> first
    la   t0, ring
    li   t1, 0
build:
    slli t2, t1, 4
    add  t2, t2, t0
    addi t3, t1, 1
    li   t4, {nodes}
    blt  t3, t4, notwrap
    li   t3, 0
notwrap:
    slli t5, t3, 4
    add  t5, t5, t0
    sd   t5, 0(t2)            # next pointer
    sd   t1, 8(t2)            # payload
    inc  t1
    blt  t1, t4, build

    li   s0, 0                # iteration
    li   s1, {iterations}
    li   s7, 0                # checksum
    la   t6, ring
walk:
    bge  s0, s1, done
    li   t1, 0
step:
    ld   t7, 8(t6)            # payload
    add  s7, s7, t7
    ld   t6, 0(t6)            # chase
    inc  t1
    li   t2, {nodes}
    blt  t1, t2, step
    inc  s0
    j    walk
done:
    andi s7, s7, 0xffffff
    print s7
    halt
"""


def streaming(n: int = 64, passes: int = 6) -> str:
    """Independent element-wise arithmetic over an array (daxpy-like):
    abundant ILP without prediction, so value speculation gains little —
    the upper-bound control."""
    if n < 1 or passes < 1:
        raise ValueError("n and passes must be positive")
    return f"""
.data
src: .space {n * 8}
dst: .space {n * 8}
.text
main:
    # initialize src[i] = i * 3
    la   t0, src
    li   t1, 0
init:
    li   t2, 3
    mul  t3, t1, t2
    slli t4, t1, 3
    add  t4, t4, t0
    sd   t3, 0(t4)
    inc  t1
    li   t5, {n}
    blt  t1, t5, init

    li   s0, 0
    li   s1, {passes}
    li   s7, 0
pass_loop:
    bge  s0, s1, done
    li   t1, 0
elem:
    slli t4, t1, 3
    la   t0, src
    add  t0, t0, t4
    ld   t2, 0(t0)
    slli t3, t2, 1
    add  t3, t3, s0
    la   t6, dst
    add  t6, t6, t4
    sd   t3, 0(t6)
    add  s7, s7, t3
    inc  t1
    li   t5, {n}
    blt  t1, t5, elem
    inc  s0
    j    pass_loop
done:
    andi s7, s7, 0xffffff
    print s7
    halt
"""


def fib(n: int = 13) -> str:
    """Naive recursive Fibonacci: deep call trees, stack traffic, and
    return values with strong locality at the leaves."""
    if not 1 <= n <= 25:
        raise ValueError("n must be in 1..25 (exponential work)")
    return f"""
.text
main:
    li   a0, {n}
    call fib
    print v0
    halt

fib:
    li   t0, 2
    blt  a0, t0, base
    addi sp, sp, -24
    sd   ra, 0(sp)
    sd   a0, 8(sp)
    addi a0, a0, -1
    call fib
    sd   v0, 16(sp)
    ld   a0, 8(sp)
    addi a0, a0, -2
    call fib
    ld   t1, 16(sp)
    add  v0, v0, t1
    ld   ra, 0(sp)
    addi sp, sp, 24
    ret
base:
    mv   v0, a0
    ret
"""


#: Generator registry for tests and tooling.
MICRO_KERNELS = {
    "reduction": reduction,
    "periodic_chain": periodic_chain,
    "pointer_chase": pointer_chase,
    "streaming": streaming,
    "fib": fib,
}


def micro_kernel(name: str, **params) -> str:
    """Generate a micro-kernel's assembly by name."""
    generator = MICRO_KERNELS.get(name)
    if generator is None:
        raise KeyError(f"unknown micro-kernel {name!r}; know {sorted(MICRO_KERNELS)}")
    return generator(**params)
