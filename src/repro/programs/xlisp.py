"""xlisp stand-in: recursive 7-queens search (the paper's own input).

Behaviour class: deep recursion (call/return, stack traffic), a
conflict-check loop with data-dependent branches, and small-integer
values cycling through recursion levels.  SPEC's xlisp shows the suite's
lowest predicted-instruction fraction: 61.7%.
"""

SOURCE = """
# xlisp: count solutions to the 7-queens problem with plain recursion.
# board[i] = column of the queen on row i.
.data
board:   .space 64
count:   .word 0
.text
main:
    li   a0, 0                # starting row
    li   s6, 7                # N = 7 queens
    call place
    la   t0, count
    ld   s7, 0(t0)
    print s7
    halt

# place(row in a0): try each column on this row.
place:
    addi sp, sp, -32
    sd   ra, 0(sp)
    sd   s0, 8(sp)
    sd   s1, 16(sp)
    mv   s0, a0               # s0 = row
    bne  s0, s6, tryrow
    # row == N: found a solution
    la   t0, count
    ld   t1, 0(t0)
    inc  t1
    sd   t1, 0(t0)
    j    unwind
tryrow:
    li   s1, 0                # s1 = candidate column
trycol:
    # conflict check against rows 0..row-1
    li   t0, 0                # t0 = prior row index
check:
    bge  t0, s0, safe
    slli t1, t0, 3
    la   t2, board
    add  t1, t1, t2
    ld   t3, 0(t1)            # column of queen on prior row
    beq  t3, s1, clash        # same column
    sub  t4, s0, t0           # row distance
    sub  t5, s1, t3           # column distance
    bltz t5, negd
    beq  t4, t5, clash        # same diagonal
    j    nextchk
negd:
    neg  t5, t5
    beq  t4, t5, clash
nextchk:
    inc  t0
    j    check
safe:
    # place queen and recurse
    slli t1, s0, 3
    la   t2, board
    add  t1, t1, t2
    sd   s1, 0(t1)
    addi a0, s0, 1
    call place
clash:
    inc  s1
    blt  s1, s6, trycol
unwind:
    ld   ra, 0(sp)
    ld   s0, 8(sp)
    ld   s1, 16(sp)
    addi sp, sp, 32
    ret
"""
