"""m88ksim stand-in: an instruction-set interpreter interpreting a loop.

Behaviour class: the classic fetch-decode-execute interpreter — field
extraction (shifts/masks produce highly repetitive values because the
interpreted program is itself a loop), a decode branch chain, and a
memory-resident guest register file.  SPEC's m88ksim predicted fraction:
70.6%.
"""

SOURCE = """
# m88ksim: interpret a tiny RISC guest.  Guest ops (op<<12)|(rd<<8)|(ra<<4)|rb:
# 0 halt, 1 li (rd, imm=rb), 2 add, 3 sub, 4 and, 5 beqz-back (ra, offset rb)
.data
guest:
    # guest program: r1=7; r2=0; r3=12; loop: r2=r2+r1; r3=r3-1(via r4=1);
    # if r3 != 0 goto loop ... encoded below
    .word 0x1117              # li  r1, 7
    .word 0x1200              # li  r2, 0
    .word 0x130c              # li  r3, 12
    .word 0x1401              # li  r4, 1
    .word 0x2221              # add r2, r2, r1
    .word 0x3334              # sub r3, r3, r4
    .word 0x5032              # beqz r3 -> fallthrough else loop back 2 (to add)
    .word 0x0000              # halt
gregs:  .space 128            # 16 guest registers
.text
main:
    li   s5, 0                # outer reruns of the guest
    li   s6, 60
    li   s7, 0                # checksum
rerun:
    li   s0, 0                # guest pc (word index)
    # clear guest registers
    la   t0, gregs
    li   t1, 0
clrg:
    slli t2, t1, 3
    add  t2, t2, t0
    sd   r0, 0(t2)
    inc  t1
    li   t3, 16
    blt  t1, t3, clrg
fetch:
    slli t0, s0, 3
    la   t1, guest
    add  t0, t0, t1
    ld   t2, 0(t0)            # guest instruction word
    srli t3, t2, 12
    andi t3, t3, 0xf          # opcode
    srli t4, t2, 8
    andi t4, t4, 0xf          # rd
    srli t5, t2, 4
    andi t5, t5, 0xf          # ra
    andi t6, t2, 0xf          # rb / imm
    la   t7, gregs
    # decode chain (branch ladder, mostly predictable)
    beqz t3, ghalt
    li   t8, 1
    beq  t3, t8, gli
    li   t8, 2
    beq  t3, t8, gadd
    li   t8, 3
    beq  t3, t8, gsub
    li   t8, 4
    beq  t3, t8, gand
    j    gbeqz
gli:
    slli a0, t4, 3
    add  a0, a0, t7
    sd   t6, 0(a0)
    j    adv
gadd:
    slli a0, t5, 3
    add  a0, a0, t7
    ld   a1, 0(a0)
    slli a0, t6, 3
    add  a0, a0, t7
    ld   a2, 0(a0)
    add  a3, a1, a2
    slli a0, t4, 3
    add  a0, a0, t7
    sd   a3, 0(a0)
    add  s7, s7, a3
    j    adv
gsub:
    slli a0, t5, 3
    add  a0, a0, t7
    ld   a1, 0(a0)
    slli a0, t6, 3
    add  a0, a0, t7
    ld   a2, 0(a0)
    sub  a3, a1, a2
    slli a0, t4, 3
    add  a0, a0, t7
    sd   a3, 0(a0)
    j    adv
gand:
    slli a0, t5, 3
    add  a0, a0, t7
    ld   a1, 0(a0)
    slli a0, t6, 3
    add  a0, a0, t7
    ld   a2, 0(a0)
    and  a3, a1, a2
    slli a0, t4, 3
    add  a0, a0, t7
    sd   a3, 0(a0)
    j    adv
gbeqz:
    # beqz guest-style: if greg[ra]==0 fall through, else jump back rb words
    slli a0, t5, 3
    add  a0, a0, t7
    ld   a1, 0(a0)
    beqz a1, adv
    sub  s0, s0, t6
    j    fetch
adv:
    # exception / watchpoint checks after every guest instruction
    bltz s0, ghalt            # guest pc underflow guard
    li   t8, 64
    bge  s0, t8, ghalt        # guest pc overflow guard
    la   t8, gregs
    sd   t2, 120(t8)          # last-executed-instruction register
    inc  s0
    j    fetch
ghalt:
    inc  s5
    blt  s5, s6, rerun
    print s7
    halt
"""
