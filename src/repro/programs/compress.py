"""compress stand-in: LZW-style hash-table text compression loop.

Behaviour class: byte-stream scanning over repetitive text (predictable
loads), multiplicative hashing (short-period values), hash-table probing
with data-dependent hit/miss branches, and code emission through stores.
SPEC's compress ratio of predicted instructions: 70.5%.
"""

SOURCE = """
# compress: LZW-ish dictionary compression of a repetitive text buffer.
.data
input:   .asciiz "the quick brown fox jumps over the lazy dog the quick brown fox jumps over the lazy dog the quick brown fox jumps again and again and again the lazy dog sleeps the quick brown fox jumps over the lazy dog again"
.align 3
htab:    .space 8192          # 1024 hash buckets: packed (key<<16)|code
codes:   .space 4096          # emitted code stream
nstate:  .word 256            # next free code

.text
main:
    la   s0, input            # s0 = input cursor
    la   s1, htab
    la   s2, codes            # s2 = output cursor
    li   s3, 0                # s3 = current prefix code
    li   s4, 0                # s4 = emitted count
    li   s7, 0                # s7 = checksum
    li   t9, 3                # outer passes over the text
pass:
    la   s0, input
scan:
    lbu  t0, 0(s0)            # next byte
    beqz t0, endpass
    # key = (prefix << 8) | byte
    slli t1, s3, 8
    or   t1, t1, t0
    # hash = (key * 2654435761) >> 22, 10 bits
    li   t2, 40503
    mul  t3, t1, t2
    srli t3, t3, 6
    andi t3, t3, 1023
probe:
    slli t4, t3, 3
    add  t4, t4, s1
    ld   t5, 0(t4)            # bucket: (key<<16)|code, 0 = empty
    beqz t5, miss
    srli t6, t5, 16
    bne  t6, t1, collide
    # hit: extend prefix
    andi s3, t5, 0xffff
    j    next
collide:
    addi t3, t3, 1            # linear probe
    andi t3, t3, 1023
    j    probe
miss:
    # install new code, emit prefix
    la   t6, nstate
    ld   t7, 0(t6)
    slli t5, t1, 16
    or   t5, t5, t7
    sd   t5, 0(t4)
    addi t7, t7, 1
    andi t7, t7, 0xffff
    sd   t7, 0(t6)
    # emit current prefix code
    slli t8, s4, 2
    andi t8, t8, 4095
    add  t8, t8, s2
    sw   s3, 0(t8)
    add  s7, s7, s3           # checksum accumulates emitted codes
    inc  s4
    mv   s3, t0               # restart prefix from this byte
next:
    # run-length and repeated-character checks (pure comparisons, like
    # compress's special-casing of character runs)
    beq  t0, s3, rl1
rl1:
    inc  s0
    j    scan
endpass:
    # emit trailing prefix
    add  s7, s7, s3
    li   s3, 0
    dec  t9
    bnez t9, pass
    print s7
    print s4
    halt
"""
