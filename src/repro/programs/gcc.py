"""gcc stand-in: table-driven expression evaluator (compiler-style dispatch).

Behaviour class: a bytecode-like IR walked with table dispatch — indirect
control flow, per-opcode short computations, a virtual register file in
memory, and moderately predictable values (constants and repeating
temporaries).  SPEC's gcc predicted-instruction fraction: 67.3%.
"""

SOURCE = """
# gcc: evaluate a stream of three-address IR operations over a virtual
# register file, with a handler table indexed by opcode.
.data
# IR op format: (op<<24)|(dst<<16)|(srcA<<8)|srcB, ops: 0=li(dst,imm8=srcB)
# 1=add 2=sub 3=mul-lo 4=and 5=or 6=xor 7=shl1
ir:
    .word 0x00000007, 0x00010003, 0x01020001, 0x02030201, 0x03040302
    .word 0x04050403, 0x05060004, 0x06070605, 0x07010700, 0x01020103
    .word 0x02030201, 0x03040302, 0x00050005, 0x01060504, 0x05070606
    .word 0x06010700, 0x01020001, 0x02030102, 0x03040203, 0x04050304
    .word 0x00060002, 0x01070605, 0x02010706, 0x03020107, 0x04030201
    .word 0x05040302, 0x06050403, 0x07060500, 0x00070006, 0x01010700
nir:    .word 30
vregs:  .space 64             # 8 virtual registers
handlers:
    .word 0, 0, 0, 0, 0, 0, 0, 0   # patched at runtime with label addrs

.text
main:
    # build the handler table (compilers do this via relocations)
    la   t0, handlers
    la   t1, op_li
    sd   t1, 0(t0)
    la   t1, op_add
    sd   t1, 8(t0)
    la   t1, op_sub
    sd   t1, 16(t0)
    la   t1, op_mul
    sd   t1, 24(t0)
    la   t1, op_and
    sd   t1, 32(t0)
    la   t1, op_or
    sd   t1, 40(t0)
    la   t1, op_xor
    sd   t1, 48(t0)
    la   t1, op_shl
    sd   t1, 56(t0)

    li   s5, 0                # pass counter
    li   s6, 40               # passes
    li   s7, 0                # checksum
passes:
    la   s0, ir               # instruction pointer
    la   t0, nir
    ld   s1, 0(t0)            # remaining ops
step:
    beqz s1, endpass
    ld   t0, 0(s0)            # fetch IR word
    srli t1, t0, 24
    andi t1, t1, 0xff         # opcode
    srli t2, t0, 16
    andi t2, t2, 0xff         # dst
    srli t3, t0, 8
    andi t3, t3, 0xff         # srcA
    andi t4, t0, 0xff         # srcB / imm
    # load virtual source registers
    la   t5, vregs
    slli t6, t3, 3
    add  t6, t6, t5
    ld   a0, 0(t6)            # A value
    slli t6, t4, 3
    andi t6, t6, 63
    add  t6, t6, t5
    ld   a1, 0(t6)            # B value
    # dispatch through the handler table
    la   t5, handlers
    slli t6, t1, 3
    add  t6, t6, t5
    ld   t7, 0(t6)
    jr   t7
op_li:
    mv   a2, t4
    j    writeback
op_add:
    add  a2, a0, a1
    j    writeback
op_sub:
    sub  a2, a0, a1
    j    writeback
op_mul:
    mul  a2, a0, a1
    andi a2, a2, 0xffff
    j    writeback
op_and:
    and  a2, a0, a1
    j    writeback
op_or:
    or   a2, a0, a1
    j    writeback
op_xor:
    xor  a2, a0, a1
    j    writeback
op_shl:
    slli a2, a0, 1
    andi a2, a2, 0xffff
writeback:
    la   t5, vregs
    slli t6, t2, 3
    add  t6, t6, t5
    sd   a2, 0(t6)
    # condition-code bookkeeping: branchy flag checks like a compiler's
    # constant-folding and dead-code tests
    beqz a2, zflag
    bltz a2, nflag
    andi a3, a2, 1
    beqz a3, evenflag
    j    ccdone
zflag:
    j    ccdone
nflag:
    j    ccdone
evenflag:
    beqz t3, ccdone
    bnez t4, ccdone
ccdone:
    # common-subexpression and range checks (pure comparisons)
    beq  a0, a1, cse1
    bltz a0, cse1
cse1:
    beq  a2, a0, cse2
    bgez a1, cse2
cse2:
    bne  t2, t3, cse3
cse3:
    # spill the result to a trace buffer (register-allocator spill traffic;
    # t5 still holds the vregs base from writeback)
    sd   a2, 0(t5)
    add  s7, s7, a2
    addi s0, s0, 8
    dec  s1
    j    step
endpass:
    inc  s5
    blt  s5, s6, passes
    andi s7, s7, 0xfffff
    print s7
    halt
"""
