"""The benchmark suite: SPECint95 stand-ins, one kernel per benchmark.

:func:`benchmark_suite` returns the eight kernels with the paper's Table 1
reference numbers attached, so the Table 1 harness can print paper-vs-ours
side by side.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.asm import Program, assemble
from repro.func import Machine
from repro.programs import (
    compress as _compress,
    gcc as _gcc,
    go as _go,
    ijpeg as _ijpeg,
    m88ksim as _m88ksim,
    perl as _perl,
    vortex as _vortex,
    xlisp as _xlisp,
)
from repro.trace import TraceRecord, capture_trace, iter_trace


@dataclass(frozen=True)
class KernelSpec:
    """One benchmark kernel and its paper reference data."""

    name: str
    source: str
    input_label: str
    #: Paper Table 1: dynamic instructions, in millions.
    paper_dynamic_mil: int
    #: Paper Table 1: % of dynamic instructions value-predicted.
    paper_predicted_pct: float

    def program(self) -> Program:
        return assemble(self.source)

    def trace(self, max_instructions: int | None = None) -> list[TraceRecord]:
        """Execute the kernel and capture its dynamic trace."""
        machine = Machine(self.program())
        return capture_trace(machine, max_instructions)

    def iter_trace(self, max_instructions: int | None = None):
        """Stream the kernel's dynamic trace record by record.

        The bounded-memory form of :meth:`trace`: records are yielded as
        the functional simulator executes, so a consumer that writes
        them straight to disk (the chunked trace cache) never holds the
        whole trace in memory.
        """
        machine = Machine(self.program())
        return iter_trace(machine, max_instructions)

    def run_functional(self) -> list[int]:
        """Run to completion and return the PRINT output (checksums)."""
        machine = Machine(self.program())
        machine.run()
        return machine.output


_SUITE: tuple[KernelSpec, ...] = (
    KernelSpec("compress", _compress.SOURCE, "400000 e 2231", 103, 70.5),
    KernelSpec("gcc", _gcc.SOURCE, "gcc.i", 203, 67.3),
    KernelSpec("go", _go.SOURCE, "99", 132, 78.7),
    KernelSpec("ijpeg", _ijpeg.SOURCE, "specmun.ppm", 129, 82.0),
    KernelSpec("m88ksim", _m88ksim.SOURCE, "scrabbl.in", 120, 70.6),
    KernelSpec("perl", _perl.SOURCE, "modified train", 40, 63.9),
    KernelSpec("vortex", _vortex.SOURCE, "modified train", 101, 61.9),
    KernelSpec("xlisp", _xlisp.SOURCE, "7 queens", 202, 61.7),
)

#: Paper Table 1, for reporting alongside measured values.
PAPER_TABLE1: dict[str, tuple[int, float]] = {
    spec.name: (spec.paper_dynamic_mil, spec.paper_predicted_pct) for spec in _SUITE
}


def benchmark_suite() -> tuple[KernelSpec, ...]:
    """All eight kernels, in the paper's Table 1 order."""
    return _SUITE


def kernel_names() -> list[str]:
    return [spec.name for spec in _SUITE]


#: Benchmark-name prefix selecting a synthetic micro-kernel
#: (``micro:fib`` etc.) instead of a suite member.  Resolving these here
#: lets every consumer of :func:`kernel` — the trace cache, the parallel
#: harness's staging, the cluster workers, the service — run micro
#: kernels with no special-casing of its own.
MICRO_PREFIX = "micro:"


@functools.lru_cache(maxsize=None)
def kernel(name: str) -> KernelSpec:
    """Look up a kernel by benchmark name (suite member or ``micro:*``)."""
    if name.startswith(MICRO_PREFIX):
        from repro.programs.micro import micro_kernel

        # Paper Table 1 has no row for synthetic kernels; the reference
        # fields are zeroed and reporting layers skip them.
        return KernelSpec(
            name=name,
            source=micro_kernel(name[len(MICRO_PREFIX):]),
            input_label="synthetic",
            paper_dynamic_mil=0,
            paper_predicted_pct=0.0,
        )
    for spec in _SUITE:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark {name!r}; know {kernel_names()}")
