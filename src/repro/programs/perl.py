"""perl stand-in: string hashing and associative-array lookups.

Behaviour class: byte-granularity string walks (text loads are highly
repetitive), polynomial hash accumulation, bucket-chain searches with
data-dependent exits, and frequent calls.  SPEC's perl predicted
fraction: 63.9%.
"""

SOURCE = """
# perl: hash a word list into an associative array, then re-look-up every
# word several times and tally hit bucket depths.
.data
words:
    .asciiz "foreach"
    .asciiz "my"
    .asciiz "sub"
    .asciiz "return"
    .asciiz "print"
    .asciiz "if"
    .asciiz "else"
    .asciiz "while"
    .asciiz "push"
    .asciiz "shift"
    .asciiz "local"
    .asciiz "defined"
.align 3
nwords: .word 12
table:  .space 1024           # 128 buckets of (hash<<8)|count
.text
main:
    li   s5, 0
    li   s6, 25               # lookup passes
    li   s7, 0                # checksum

    # build: hash every word, bump its bucket
    la   s0, words
    la   t0, nwords
    ld   s1, 0(t0)
build:
    beqz s1, lookups
    call hashword             # a0 <- hash, s0 advances past NUL
    andi t1, a0, 127
    slli t1, t1, 3
    la   t2, table
    add  t1, t1, t2
    ld   t3, 0(t1)
    inc  t3
    sd   t3, 0(t1)
    dec  s1
    j    build

lookups:
    la   s0, words
    la   t0, nwords
    ld   s1, 0(t0)
lkloop:
    beqz s1, endpass
    call hashword
    andi t1, a0, 127
    slli t1, t1, 3
    la   t2, table
    add  t1, t1, t2
    ld   t3, 0(t1)            # bucket count = chain depth
    beqz t3, misskey          # defined() check
    add  s7, s7, t3
    # classify the hash (perl's string-vs-number dispatch is branchy)
    andi t4, a0, 3
    beqz t4, lkacct
    bnez t3, lkacct
lkacct:
    add  s7, s7, a0
    andi s7, s7, 0xffffff
    sd   s7, 0(t1)            # memoize back into the bucket
    ld   t3, 0(t1)            # and re-read (tie/magic fetch)
    bnez t3, lknext
misskey:
    inc  s7
lknext:
    dec  s1
    j    lkloop
endpass:
    inc  s5
    blt  s5, s6, lookups
    print s7
    halt

# hashword: polynomial hash of NUL-terminated string at s0; returns hash in
# a0 and leaves s0 pointing past the terminator.
hashword:
    li   a0, 5381
hwloop:
    lbu  t5, 0(s0)
    inc  s0
    beqz t5, hwdone
    # case classification (perl string ops branch per character class)
    li   t7, 97
    blt  t5, t7, hwmix        # below 'a'
    li   t7, 122
    bgt  t5, t7, hwmix        # above 'z'
hwmix:
    slli t6, a0, 5
    add  a0, a0, t6           # h = h * 33
    add  a0, a0, t5           # + c
    andi a0, a0, 0xffffff
    j    hwloop
hwdone:
    ret
"""
