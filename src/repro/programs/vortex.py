"""vortex stand-in: object-database record traversal and field updates.

Behaviour class: linked-record walks (pointer loads are constant once the
database is built — strong value locality), field reads/writes, and
validation branches.  SPEC's vortex predicted fraction: 61.9%.
"""

SOURCE = """
# vortex: build a linked list of fixed-layout records, then run query
# transactions that walk the list, filter on a field, and update another.
# record layout: [0]=next ptr, [8]=id, [16]=kind, [24]=balance
.data
heap:   .space 8192           # bump-allocated records (32 bytes each)
headp:  .word 0
.text
main:
    # build 48 records, kinds cycling 0..3, balance = id * 10
    la   s0, heap
    li   s1, 0                # id
    li   t6, 0                # previous record (0 = nil)
build:
    slli t0, s1, 5            # record offset
    add  t0, t0, s0
    sd   t6, 0(t0)            # next = previous (list grows backwards)
    sd   s1, 8(t0)
    andi t1, s1, 3
    sd   t1, 16(t0)
    li   t2, 10
    mul  t3, s1, t2
    sd   t3, 24(t0)
    mv   t6, t0
    inc  s1
    li   t4, 48
    blt  s1, t4, build
    la   t5, headp
    sd   t6, 0(t5)

    li   s5, 0                # transaction counter
    li   s6, 40
    li   s7, 0                # checksum
txn:
    # walk the list; records of kind (txn & 3) get a balance credit
    andi s2, s5, 3            # target kind
    la   t5, headp
    ld   t0, 0(t5)            # cursor
walk:
    beqz t0, endtxn
    # audit every record: id-weighted running total (field arithmetic)
    ld   t7, 8(t0)            # id
    ld   t8, 24(t0)           # balance
    slli a0, t7, 1
    add  a1, a0, t8
    xor  a2, a1, s5
    andi a2, a2, 0xffff
    add  s7, s7, a2
    # integrity checks: schema validation is branch-heavy in vortex
    bltz t7, skip             # id must be non-negative
    bltz t8, skip             # balance must be non-negative
    ld   t1, 16(t0)           # kind
    bltz t1, skip
    li   a3, 4
    bge  t1, a3, skip         # kind in range
    bne  t1, s2, skip
    addi t2, t8, 3
    sd   t2, 24(t0)
    sd   t7, 8(t0)            # touch the id field (write-back audit)
    add  s7, s7, t2
skip:
    ld   t0, 0(t0)            # next
    j    walk
endtxn:
    inc  s5
    blt  s5, s6, txn
    andi s7, s7, 0xffffff
    print s7
    halt
"""
