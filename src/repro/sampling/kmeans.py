"""Deterministic stdlib-only k-means for phase clustering.

The point sets here are tiny — one normalized basic-block vector per
trace chunk, so tens to a few thousand points of dimension ~32 — which
makes a plain-Python Lloyd's loop entirely adequate.  Determinism is the
hard requirement, not speed: the same trace must always cluster into the
same phases so sampled results are reproducible, hence the seeded
k-means++ initialization and the stable tie-breaking (lowest index wins)
throughout.
"""

from __future__ import annotations

import random


def _sq_dist(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def _mean(points: list[tuple[float, ...]]) -> tuple[float, ...]:
    n = len(points)
    return tuple(sum(col) / n for col in zip(*points))


def _init_plus_plus(
    points: list[tuple[float, ...]], k: int, rng: random.Random
) -> list[tuple[float, ...]]:
    """k-means++ seeding: spread the initial centroids apart by sampling
    each next centroid proportionally to squared distance from the
    nearest one already chosen."""
    centroids = [points[rng.randrange(len(points))]]
    dists = [_sq_dist(p, centroids[0]) for p in points]
    while len(centroids) < k:
        total = sum(dists)
        if total <= 0.0:
            # All remaining points coincide with a centroid; any choice
            # is equivalent — take the first for determinism.
            centroids.append(points[0])
            continue
        target = rng.random() * total
        acc = 0.0
        chosen = len(points) - 1
        for index, dist in enumerate(dists):
            acc += dist
            if acc >= target:
                chosen = index
                break
        centroid = points[chosen]
        centroids.append(centroid)
        dists = [min(d, _sq_dist(p, centroid)) for p, d in zip(points, dists)]
    return centroids


def kmeans(
    points: list[tuple[float, ...]],
    k: int,
    *,
    seed: int = 0,
    max_iterations: int = 100,
) -> tuple[list[int], list[tuple[float, ...]]]:
    """Cluster ``points`` into ``k`` groups; returns ``(assignments,
    centroids)``.

    ``k`` is clamped to the number of points.  Assignment ties break to
    the lowest centroid index, and clusters that empty out are reseeded
    with the point farthest from its centroid, so the result is a pure
    function of (points, k, seed).
    """
    if not points:
        raise ValueError("cannot cluster an empty point set")
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, len(points))
    rng = random.Random(seed)
    centroids = _init_plus_plus(points, k, rng)
    assignments = [0] * len(points)
    for _ in range(max_iterations):
        changed = False
        for index, point in enumerate(points):
            best = min(
                range(k), key=lambda c: (_sq_dist(point, centroids[c]), c)
            )
            if assignments[index] != best:
                assignments[index] = best
                changed = True
        for cluster in range(k):
            members = [
                points[i] for i, a in enumerate(assignments) if a == cluster
            ]
            if members:
                centroids[cluster] = _mean(members)
            else:
                # Reseed an empty cluster with the worst-fit point.
                farthest = max(
                    range(len(points)),
                    key=lambda i: (
                        _sq_dist(points[i], centroids[assignments[i]]),
                        -i,
                    ),
                )
                centroids[cluster] = points[farthest]
                assignments[farthest] = cluster
                changed = True
        if not changed:
            break
    return assignments, centroids
