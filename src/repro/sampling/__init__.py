"""Phase-sampled timing simulation (SimPoint-style estimate mode).

Long traces repeat themselves: programs move through a small number of
*phases* (initialization, steady-state loops, cleanup), and within a
phase the microarchitectural behavior — CPI included — is close to
stationary.  Sherwood et al.'s SimPoint observed that a basic-block
vector (BBV) fingerprint of each execution window clusters by phase, so
simulating one representative window per cluster and weighting by
cluster mass estimates whole-program metrics at a fraction of the cost.

This package implements that recipe over the chunked VSRT v4 trace
plane: chunk fingerprints come for free from capture
(:class:`repro.trace.binary.ChunkWriter` accumulates one BBV per chunk),
:mod:`repro.sampling.kmeans` clusters them with a deterministic
stdlib-only k-means, :mod:`repro.sampling.phases` picks representatives
and weights, and :mod:`repro.sampling.sample` runs the timing engine on
each representative (with warm-up, via the cycle-delta method) to
produce a CPI *estimate* with per-phase weights and error bars.

Sampled results are estimates and are always labeled as such — exact
mode remains the default everywhere; sampling is opt-in via
``--sample-phases`` / ``REPRO_SAMPLE_PHASES``.
"""

from repro.sampling.kmeans import kmeans
from repro.sampling.phases import PhasePlan, chunk_fingerprints, plan_phases
from repro.sampling.sample import (
    PHASES_ENV_VAR,
    PhaseEstimate,
    SampledResult,
    compare_sampled_exact,
    run_sampled,
    sample_phases_from_env,
)

__all__ = [
    "PHASES_ENV_VAR",
    "PhaseEstimate",
    "PhasePlan",
    "SampledResult",
    "chunk_fingerprints",
    "compare_sampled_exact",
    "kmeans",
    "plan_phases",
    "run_sampled",
    "sample_phases_from_env",
]
