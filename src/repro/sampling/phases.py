"""Phase detection: chunk fingerprints -> clusters -> representatives.

A trace chunk's fingerprint is its basic-block vector (BBV): a histogram
of executed instructions bucketed by the PC of their basic-block leader.
Chunks executing the same code mix have near-identical BBVs regardless
of the values flowing through, which is exactly the invariance phase
sampling needs.  v4 traces carry their BBVs in the chunk index (computed
during capture, zero extra cost here); other representations get
fingerprinted on the fly with the identical leader/bucket rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sampling.kmeans import _sq_dist, kmeans
from repro.trace.binary import BBV_DIM, _bbv_bucket
from repro.trace.columnar import ChunkedTrace

#: Cap on phase count: more phases than chunks is meaningless, and the
#: CLI treats 0/negative as "sampling off".
MAX_PHASES = 64


@dataclass(frozen=True)
class PhasePlan:
    """Everything sampled simulation needs to know about a trace's phases.

    ``assignments[i]`` is the phase of chunk ``i``; ``representatives[p]``
    is the chunk whose fingerprint sits closest to phase ``p``'s centroid
    (simulated as the phase's proxy); ``alternates[p]`` is the
    second-closest member (``None`` for singleton phases), used for error
    bars; ``weights[p]`` is the fraction of all *records* in phase ``p``.
    """

    k: int
    chunk_size: int
    counts: tuple[int, ...]
    assignments: tuple[int, ...]
    representatives: tuple[int, ...]
    alternates: tuple[int | None, ...]
    weights: tuple[float, ...]

    @property
    def total_records(self) -> int:
        return sum(self.counts)

    def chunk_bounds(self, index: int) -> tuple[int, int]:
        start = sum(self.counts[:index])
        return start, start + self.counts[index]


def chunk_fingerprints(
    trace, chunk_size: int | None = None
) -> tuple[list[tuple[int, ...]], list[int], int]:
    """``(bbvs, counts, chunk_size)`` for any trace representation.

    A :class:`ChunkedTrace` answers from its index without touching any
    chunk payload; anything else (record list, ``ColumnarTrace``) is
    walked in ``chunk_size`` windows applying the same leader/bucket
    rule the capture-time writer uses, so both paths fingerprint a given
    trace identically.
    """
    if isinstance(trace, ChunkedTrace):
        return list(trace.bbvs()), list(trace.counts), trace.chunk_size
    if chunk_size is None or chunk_size < 1:
        raise ValueError(
            "chunk_size is required to fingerprint a non-chunked trace"
        )
    bbvs: list[tuple[int, ...]] = []
    counts: list[int] = []
    total = len(trace)
    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        bbv = [0] * BBV_DIM
        leader: int | None = None
        for index in range(start, stop):
            rec = trace[index]
            if leader is None:
                leader = rec.pc
            bbv[_bbv_bucket(leader, BBV_DIM)] += 1
            if rec.is_control:
                leader = None
        bbvs.append(tuple(bbv))
        counts.append(stop - start)
    return bbvs, counts, chunk_size


def _normalize(bbv: tuple[int, ...]) -> tuple[float, ...]:
    total = sum(bbv)
    if not total:
        return tuple(0.0 for _ in bbv)
    return tuple(value / total for value in bbv)


def plan_phases(
    trace,
    k: int,
    *,
    chunk_size: int | None = None,
    seed: int = 0,
) -> PhasePlan:
    """Cluster a trace's chunks into (at most) ``k`` phases.

    Fingerprints are L1-normalized before clustering so a short tail
    chunk clusters by code mix, not by length.  Representatives minimize
    distance-to-centroid with lowest-chunk-index tie-breaking, keeping
    the plan a pure function of (trace, k, seed).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, MAX_PHASES)
    bbvs, counts, size = chunk_fingerprints(trace, chunk_size)
    if not bbvs:
        raise ValueError("cannot plan phases over an empty trace")
    points = [_normalize(bbv) for bbv in bbvs]
    assignments, centroids = kmeans(points, k, seed=seed)
    k = len(centroids)
    total = sum(counts)
    representatives: list[int] = []
    alternates: list[int | None] = []
    weights: list[float] = []
    for cluster in range(k):
        members = [i for i, a in enumerate(assignments) if a == cluster]
        # Ties in distance-to-centroid are the common case for a phase
        # that recurs with an identical code mix, and the candidates are
        # *not* interchangeable in time.  The estimator warms up on the
        # records immediately preceding the representative, so a chunk
        # whose predecessor belongs to the *same* phase gets same-code
        # warm-up (predictors trained on the PCs being measured), while
        # a segment-leading chunk warms up on foreign code and measures
        # a cold start the phase only pays once per recurrence.  Rank
        # equally-close candidates: same-phase predecessor first (chunk
        # 0, with no context at all, last), then nearest the phase's
        # median occurrence.
        mid = sorted(members)[len(members) // 2]
        ranked = sorted(
            members,
            key=lambda i: (
                _sq_dist(points[i], centroids[cluster]),
                i == 0 or assignments[i - 1] != cluster,
                i == 0,
                abs(i - mid),
                i,
            ),
        )
        representatives.append(ranked[0])
        alternates.append(ranked[1] if len(ranked) > 1 else None)
        weights.append(sum(counts[i] for i in members) / total)
    return PhasePlan(
        k=k,
        chunk_size=size,
        counts=tuple(counts),
        assignments=tuple(assignments),
        representatives=tuple(representatives),
        alternates=tuple(alternates),
        weights=tuple(weights),
    )
