"""Sampled timing simulation: one representative chunk per phase.

The estimator is the cycle-delta method: for each phase, simulate
``warmup + representative chunk`` and ``warmup`` alone, and attribute
the cycle difference to the chunk.  The warm-up prefix (the records
immediately preceding the representative in the real trace) charges
cold caches, predictors and branch history to the prefix run instead of
the measurement window, which is what keeps short windows honest.

The headline number is

    CPI_est = sum_p weight_p * CPI_p

with ``weight_p`` the fraction of all records in phase ``p``.  The error
bar is an empirical one: each phase's *alternate* representative (the
second-closest chunk to the centroid) is simulated the same way, and the
weighted |CPI_rep − CPI_alt| spread is reported as ``cpi_spread`` — a
direct measurement of within-phase CPI variation, which is the quantity
the estimate's accuracy actually rests on.  Everything here is an
explicitly labeled *estimate*; exact mode stays the default.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.sampling.phases import PhasePlan, plan_phases
from repro.trace.transform import renumber

#: Env var: default phase count for ``repro bench --sample-phases``
#: (unset, ``0`` or any falsy spelling = sampling off).
PHASES_ENV_VAR = "REPRO_SAMPLE_PHASES"

_OFF_VALUES = frozenset({"", "0", "off", "none", "disabled", "false", "no"})


def sample_phases_from_env() -> int | None:
    """The ``REPRO_SAMPLE_PHASES`` phase count, or ``None`` when off."""
    raw = os.environ.get(PHASES_ENV_VAR)
    if raw is None or raw.strip().lower() in _OFF_VALUES:
        return None
    try:
        value = int(raw)
    except ValueError as error:
        raise ValueError(
            f"{PHASES_ENV_VAR}={raw!r} is not an integer phase count"
        ) from error
    return value if value > 0 else None


@dataclass(frozen=True)
class PhaseEstimate:
    """One phase's contribution to the sampled estimate."""

    phase: int
    representative: int  # chunk index simulated as the phase's proxy
    weight: float  # fraction of all records in this phase
    records: int  # records in the representative chunk
    warmup: int  # warm-up records actually available and used
    cpi: float
    alternate_cpi: float | None = None  # second representative (error bar)


@dataclass(frozen=True)
class SampledResult:
    """A phase-sampled CPI *estimate* (never an exact result).

    ``cpi_spread`` is the weighted |CPI_rep − CPI_alt| across phases —
    an empirical error bar; phases with a single chunk contribute zero.
    ``simulated_records`` counts every record fed through the timing
    engine (measurement windows, warm-ups and alternates), i.e. the
    work actually done versus ``total_records`` for the exact run.
    """

    cpi: float
    cycles_estimate: int
    total_records: int
    simulated_records: int
    warmup: int
    cpi_spread: float
    plan: PhasePlan
    phases: tuple[PhaseEstimate, ...]
    extra: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return (
            f"estimate (sampled, {self.plan.k} phases, "
            f"{self.simulated_records}/{self.total_records} records)"
        )


def _simulate(records, config, model, confidence, update_timing):
    from repro.engine.sim import run_baseline, run_trace

    if model is None:
        return run_baseline(records, config)
    return run_trace(
        records,
        config,
        model,
        confidence=confidence,
        update_timing=update_timing,
    )


def _region(trace, start: int, stop: int):
    return renumber(list(trace[start:stop]))


def _chunk_cpi(
    trace,
    plan: PhasePlan,
    chunk_index: int,
    warmup: int,
    config,
    model,
    confidence,
    update_timing,
) -> tuple[float, int, int]:
    """``(cpi, warmup_used, records_simulated)`` for one chunk via the
    cycle-delta method."""
    start, stop = plan.chunk_bounds(chunk_index)
    available = min(warmup, start)
    full = _simulate(
        _region(trace, start - available, stop),
        config,
        model,
        confidence,
        update_timing,
    ).cycles
    simulated = (stop - start) + available
    if available:
        warm = _simulate(
            _region(trace, start - available, start),
            config,
            model,
            confidence,
            update_timing,
        ).cycles
        simulated += available
    else:
        warm = 0
    delta = max(full - warm, 0)
    return delta / (stop - start), available, simulated


def run_sampled(
    trace,
    config,
    model=None,
    *,
    phases: int = 3,
    warmup: int | None = None,
    chunk_size: int | None = None,
    seed: int = 0,
    confidence: str = "R",
    update_timing: str = "D",
    error_bars: bool = True,
) -> SampledResult:
    """Phase-sampled simulation of ``trace`` under ``config``/``model``.

    ``warmup`` defaults to a quarter of the chunk size (clamped to the
    records actually preceding each representative).  ``error_bars``
    additionally simulates each phase's alternate representative; turn
    it off to halve the sampled cost when only the point estimate is
    needed.  The result is deterministic for fixed inputs and ``seed``.
    """
    plan = plan_phases(trace, phases, chunk_size=chunk_size, seed=seed)
    if warmup is None:
        warmup = plan.chunk_size // 4
    estimates: list[PhaseEstimate] = []
    simulated = 0
    for phase in range(plan.k):
        representative = plan.representatives[phase]
        cpi, used, cost = _chunk_cpi(
            trace,
            plan,
            representative,
            warmup,
            config,
            model,
            confidence,
            update_timing,
        )
        simulated += cost
        alternate_cpi = None
        alternate = plan.alternates[phase]
        if error_bars and alternate is not None:
            alternate_cpi, _, cost = _chunk_cpi(
                trace,
                plan,
                alternate,
                warmup,
                config,
                model,
                confidence,
                update_timing,
            )
            simulated += cost
        estimates.append(
            PhaseEstimate(
                phase=phase,
                representative=representative,
                weight=plan.weights[phase],
                records=plan.counts[representative],
                warmup=used,
                cpi=cpi,
                alternate_cpi=alternate_cpi,
            )
        )
    cpi = sum(e.weight * e.cpi for e in estimates)
    spread = sum(
        e.weight * abs(e.cpi - e.alternate_cpi)
        for e in estimates
        if e.alternate_cpi is not None
    )
    total = plan.total_records
    return SampledResult(
        cpi=cpi,
        cycles_estimate=round(cpi * total),
        total_records=total,
        simulated_records=simulated,
        warmup=warmup,
        cpi_spread=spread,
        plan=plan,
        phases=tuple(estimates),
    )


def compare_sampled_exact(
    trace,
    config,
    model=None,
    *,
    phases: int = 3,
    warmup: int | None = None,
    chunk_size: int | None = None,
    seed: int = 0,
    confidence: str = "R",
    update_timing: str = "D",
    error_bars: bool = True,
) -> dict:
    """Run both modes and report error + speedup (the acceptance record).

    Returns a plain dict (JSON-ready) with exact/sampled CPI, the
    relative CPI error, wall-clock seconds for each mode, and the
    wall-clock speedup.
    """
    start = time.perf_counter()
    exact = _simulate(trace, config, model, confidence, update_timing)
    exact_seconds = time.perf_counter() - start
    exact_cpi = exact.cycles / len(trace)
    start = time.perf_counter()
    sampled = run_sampled(
        trace,
        config,
        model,
        phases=phases,
        warmup=warmup,
        chunk_size=chunk_size,
        seed=seed,
        confidence=confidence,
        update_timing=update_timing,
        error_bars=error_bars,
    )
    sampled_seconds = time.perf_counter() - start
    error = (
        abs(sampled.cpi - exact_cpi) / exact_cpi if exact_cpi else 0.0
    )
    return {
        "records": len(trace),
        "phases": sampled.plan.k,
        "chunk_size": sampled.plan.chunk_size,
        "warmup": sampled.warmup,
        "simulated_records": sampled.simulated_records,
        "exact_cpi": exact_cpi,
        "sampled_cpi": sampled.cpi,
        "cpi_error": error,
        "cpi_spread": sampled.cpi_spread,
        "exact_seconds": exact_seconds,
        "sampled_seconds": sampled_seconds,
        "speedup": exact_seconds / sampled_seconds
        if sampled_seconds
        else float("inf"),
    }
