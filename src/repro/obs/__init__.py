"""Latency-event observability: tracing, histograms, timeline export.

The paper's contribution is a *vocabulary* of latency events — the named
delays (Execution–Equality, Equality–Verification, …) through which value
speculation manifests — yet a simulation normally surfaces only end-of-run
aggregate counters.  This package makes the event chains themselves
visible:

* :mod:`repro.obs.tracer` — a zero-cost-when-disabled tracer bound at
  engine construction.  The default :data:`NULL_TRACER` keeps the hot
  cycle loop at one attribute check; a :class:`PipelineTracer` records
  per-instruction lifecycle marks and latency-event measurements into
  bounded ring buffers.
* :mod:`repro.obs.aggregate` — per-kind / per-opcode histograms and
  percentiles over the recorded latency events.
* :mod:`repro.obs.export` — exporters: Chrome trace-event JSON (loadable
  in Perfetto / ``chrome://tracing``, one track per RUU station slot),
  CSV/JSON metrics, and a text latency-event summary table.
* :mod:`repro.obs.run` — one-call instrumented runs of suite kernels,
  micro kernels, and harness sweep points.

Surfaced as the ``repro obs trace|histo|export`` CLI subcommand and via
:func:`repro.harness.sweeps.instrument_variant`.
"""

from repro.core.events import LatencyEventKind
from repro.obs.tracer import (
    EventRing,
    LatencyEvent,
    LifecycleMark,
    NullTracer,
    NULL_TRACER,
    PipelineTracer,
)
from repro.obs.aggregate import (
    LatencyHistogram,
    aggregate_latency_events,
    aggregate_by_opcode,
    lifecycle_spans,
)
from repro.obs.export import (
    chrome_trace,
    metrics_csv,
    metrics_dict,
    summary_table,
    validate_chrome_trace,
)
from repro.obs.run import InstrumentedRun, run_instrumented

__all__ = [
    "LatencyEventKind",
    "EventRing",
    "LatencyEvent",
    "LifecycleMark",
    "NullTracer",
    "NULL_TRACER",
    "PipelineTracer",
    "LatencyHistogram",
    "aggregate_latency_events",
    "aggregate_by_opcode",
    "lifecycle_spans",
    "chrome_trace",
    "metrics_csv",
    "metrics_dict",
    "summary_table",
    "validate_chrome_trace",
    "InstrumentedRun",
    "run_instrumented",
]
