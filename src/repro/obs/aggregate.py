"""Aggregation: latency-event histograms, percentiles, lifecycle spans."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, NamedTuple

from repro.core.events import LatencyEventKind
from repro.obs.tracer import LatencyEvent, LifecycleMark, PipelineTracer


class LatencyHistogram:
    """Distribution of one latency event's measured cycle counts."""

    __slots__ = ("counts",)

    def __init__(self, values: Iterable[int] = ()):
        self.counts: Counter[int] = Counter(values)

    def add(self, value: int) -> None:
        self.counts[value] += 1

    def merge(self, other: "LatencyHistogram") -> None:
        self.counts.update(other.counts)

    @property
    def count(self) -> int:
        return sum(self.counts.values())

    @property
    def min(self) -> int:
        return min(self.counts) if self.counts else 0

    @property
    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    @property
    def mean(self) -> float:
        total = self.count
        if not total:
            return 0.0
        return sum(value * n for value, n in self.counts.items()) / total

    def percentile(self, p: float) -> int:
        """The smallest value with at least ``p`` of the mass at or below
        it (nearest-rank); 0 for an empty histogram."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        total = self.count
        if not total:
            return 0
        rank = max(1, -(-total * p // 100))  # ceil(total * p / 100)
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= rank:
                return value
        return self.max  # pragma: no cover - defensive

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.min,
            "mean": round(self.mean, 4),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
            "values": {str(v): n for v, n in sorted(self.counts.items())},
        }

    def __repr__(self) -> str:
        return f"LatencyHistogram(count={self.count}, mean={self.mean:.2f})"


def _events_of(source) -> list[LatencyEvent]:
    if isinstance(source, PipelineTracer):
        return source.latency_events()
    return list(source)


def aggregate_latency_events(
    source: PipelineTracer | Iterable[LatencyEvent],
) -> dict[LatencyEventKind, LatencyHistogram]:
    """Per-kind histograms over a tracer's recorded latency events."""
    out: dict[LatencyEventKind, LatencyHistogram] = {}
    for event in _events_of(source):
        hist = out.get(event.kind)
        if hist is None:
            hist = out[event.kind] = LatencyHistogram()
        hist.add(event.latency)
    return out


def aggregate_by_opcode(
    source: PipelineTracer | Iterable[LatencyEvent],
) -> dict[LatencyEventKind, dict[str, LatencyHistogram]]:
    """Per-kind, per-opcode histograms (opcode = trace mnemonic)."""
    out: dict[LatencyEventKind, dict[str, LatencyHistogram]] = {}
    for event in _events_of(source):
        per_op = out.setdefault(event.kind, {})
        hist = per_op.get(event.op)
        if hist is None:
            hist = per_op[event.op] = LatencyHistogram()
        hist.add(event.latency)
    return out


class LifecycleSpan(NamedTuple):
    """One closed phase-to-phase interval of an instruction's lifecycle."""

    seq: int
    sid: int
    name: str
    start: int
    end: int
    detail: str = ""


def lifecycle_spans(
    source: PipelineTracer | Iterable[LifecycleMark],
) -> list[LifecycleSpan]:
    """Spans between consecutive lifecycle marks of each instruction.

    The recorded mark stream for a seq — fetch, dispatch, wakeup, issue,
    result, equality, verify/invalidate, reissue, retire — becomes a list
    of named ``prev→next`` spans, the raw material of the Chrome trace
    timeline.  Marks are paired in recorded order, so reissue loops
    produce one span per traversal.
    """
    marks = (
        source.lifecycle_marks()
        if isinstance(source, PipelineTracer)
        else list(source)
    )
    last: dict[int, LifecycleMark] = {}
    spans: list[LifecycleSpan] = []
    for mark in marks:
        prev = last.get(mark.seq)
        if prev is not None and mark.cycle >= prev.cycle:
            spans.append(
                LifecycleSpan(
                    mark.seq,
                    mark.sid if mark.sid >= 0 else prev.sid,
                    f"{prev.phase}→{mark.phase}",
                    prev.cycle,
                    mark.cycle,
                    mark.detail,
                )
            )
        last[mark.seq] = mark
    return spans
