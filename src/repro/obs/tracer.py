"""The tracer the engine binds at construction.

Two implementations share one duck type:

* :class:`NullTracer` (singleton :data:`NULL_TRACER`) — ``enabled`` is
  False and every hook is a no-op.  The engine hoists ``enabled`` into a
  local flag at construction, so with tracing off the hot cycle loop pays
  exactly one attribute check per instrumentation site and the golden
  counter snapshots stay bit-identical.
* :class:`PipelineTracer` — records two bounded streams into ring
  buffers: *lifecycle marks* (which pipeline phase an instruction reached
  in which cycle) and *latency events* (one measured occurrence of a
  paper latency variable, tagged with its
  :class:`~repro.core.events.LatencyEventKind`).

Recording never mutates simulation state: the tracer only reads cycles
and record metadata the engine already computed, which is what keeps an
instrumented run cycle-identical to an uninstrumented one (pinned by
tests/test_obs.py).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.events import LatencyEventKind

#: Default ring capacity: enough for every event of a ~100k-instruction
#: micro-kernel run while bounding memory on long instrumented sweeps.
DEFAULT_CAPACITY = 1 << 20


class LifecycleMark(NamedTuple):
    """One pipeline phase reached by one dynamic instruction."""

    cycle: int
    seq: int
    sid: int
    phase: str
    detail: str = ""


class LatencyEvent(NamedTuple):
    """One measured occurrence of a paper latency variable."""

    kind: LatencyEventKind
    seq: int
    sid: int
    start: int
    end: int
    op: str = ""

    @property
    def latency(self) -> int:
        return self.end - self.start


class EventRing:
    """Fixed-capacity append-only ring buffer.

    Appends past capacity overwrite the oldest entries (counted in
    ``dropped``), so a tracer left attached to an arbitrarily long run
    keeps the *most recent* window of events and bounded memory.
    """

    __slots__ = ("capacity", "_buf", "_next", "dropped")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf: list = []
        self._next = 0  # write cursor once the buffer is full
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._buf)

    def append(self, item) -> None:
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(item)
        else:
            buf[self._next] = item
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def items(self) -> list:
        """Contents in append order (oldest surviving entry first)."""
        buf = self._buf
        if len(buf) < self.capacity or self._next == 0:
            return list(buf)
        return buf[self._next:] + buf[: self._next]

    def clear(self) -> None:
        self._buf = []
        self._next = 0
        self.dropped = 0


class NullTracer:
    """Tracing disabled: one falsy attribute, no-op hooks.

    The engine never calls the hooks when ``enabled`` is False; they
    exist so a collaborator holding a tracer reference (the LSQ's
    ``on_event``, a viz helper) can call them unconditionally.
    """

    enabled = False

    def bind(self, config) -> None:  # pragma: no cover - trivial
        pass

    def mark(self, cycle, seq, sid, phase, detail="") -> None:
        pass

    def latency(self, kind, seq, sid, start, end, op="") -> None:
        pass


#: Shared disabled tracer; the engine default.
NULL_TRACER = NullTracer()


class PipelineTracer:
    """Ring-buffer recorder for lifecycle marks and latency events."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.marks = EventRing(capacity)
        self.latencies = EventRing(capacity)
        #: Filled by :meth:`bind` when the engine adopts this tracer.
        self.window_size: int | None = None
        self.config_label: str | None = None

    def bind(self, config) -> None:
        """Adopt the engine's configuration (called at construction)."""
        self.window_size = config.window_size
        self.config_label = config.label

    def mark(self, cycle: int, seq: int, sid: int, phase: str, detail: str = "") -> None:
        self.marks.append(LifecycleMark(cycle, seq, sid, phase, detail))

    def latency(
        self,
        kind: LatencyEventKind,
        seq: int,
        sid: int,
        start: int,
        end: int,
        op: str = "",
    ) -> None:
        self.latencies.append(LatencyEvent(kind, seq, sid, start, end, op))

    # -- convenience views -------------------------------------------------

    def lifecycle_marks(self) -> list[LifecycleMark]:
        return self.marks.items()

    def latency_events(self) -> list[LatencyEvent]:
        return self.latencies.items()

    def kinds_seen(self) -> set[LatencyEventKind]:
        return {event.kind for event in self.latencies.items()}
