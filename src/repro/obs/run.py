"""One-call instrumented simulation runs.

:func:`run_instrumented` resolves a benchmark name (a suite kernel such
as ``compress``, or a micro kernel via the ``micro:<name>`` form, e.g.
``micro:periodic_chain``), runs it under a :class:`PipelineTracer`, and
returns an :class:`InstrumentedRun` bundling the tracer with the normal
simulation result — the single entry point behind ``repro obs`` and
:func:`repro.harness.sweeps.instrument_variant`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import LatencyEventKind
from repro.core.model import SpeculativeExecutionModel, named_models
from repro.engine.config import ProcessorConfig, paper_config
from repro.engine.sim import SimulationResult, run_baseline, run_trace
from repro.obs.aggregate import LatencyHistogram, aggregate_latency_events
from repro.obs.tracer import DEFAULT_CAPACITY, PipelineTracer
from repro.trace.record import TraceRecord

#: Benchmark-name prefix selecting a micro kernel instead of a suite one.
MICRO_PREFIX = "micro:"

#: Default instruction budget for instrumented runs — big enough for
#: meaningful distributions, small enough to stay interactive.
DEFAULT_MAX_INSTRUCTIONS = 20_000


def resolve_trace(
    benchmark: str, max_instructions: int | None = DEFAULT_MAX_INSTRUCTIONS
) -> list[TraceRecord]:
    """The dynamic trace for a suite kernel or a ``micro:<name>`` kernel."""
    if benchmark.startswith(MICRO_PREFIX):
        from repro.programs.micro import micro_kernel
        from repro.trace.capture import trace_program

        source = micro_kernel(benchmark[len(MICRO_PREFIX):])
        _, trace = trace_program(source, max_instructions)
        return trace
    from repro.trace.cache import cached_trace

    return cached_trace(benchmark, max_instructions)


def benchmark_names() -> list[str]:
    """Every runnable benchmark name, suite kernels then micro kernels."""
    from repro.programs.micro import MICRO_KERNELS
    from repro.programs.suite import kernel_names

    return kernel_names() + [MICRO_PREFIX + name for name in sorted(MICRO_KERNELS)]


@dataclass
class InstrumentedRun:
    """Everything one instrumented simulation produced."""

    benchmark: str
    model_name: str | None
    tracer: PipelineTracer
    result: SimulationResult
    _histograms: dict[LatencyEventKind, LatencyHistogram] | None = field(
        default=None, repr=False
    )

    @property
    def histograms(self) -> dict[LatencyEventKind, LatencyHistogram]:
        if self._histograms is None:
            self._histograms = aggregate_latency_events(self.tracer)
        return self._histograms

    @property
    def kinds_seen(self) -> set[LatencyEventKind]:
        return self.tracer.kinds_seen()

    @property
    def engine_path(self) -> str:
        """Which engine produced this run (instrumented runs attach a
        live tracer, so the expected answer is the generic fallback —
        stated explicitly so perf investigations are attributable)."""
        return self.result.engine_path or "generic"


def run_instrumented(
    benchmark: str,
    *,
    config: ProcessorConfig | str = "8/48",
    model: SpeculativeExecutionModel | str | None = "good",
    max_instructions: int | None = DEFAULT_MAX_INSTRUCTIONS,
    confidence: str = "real",
    update_timing: str = "D",
    capacity: int = DEFAULT_CAPACITY,
    trace: list[TraceRecord] | None = None,
) -> InstrumentedRun:
    """Run ``benchmark`` with a :class:`PipelineTracer` attached.

    ``model`` accepts a named model ("super"/"great"/"good"), a ready
    :class:`SpeculativeExecutionModel`, or ``None`` for the base machine
    (which records lifecycle marks but, with no speculation, few latency
    events).  Pass ``trace`` to reuse an already-captured trace.
    """
    if isinstance(config, str):
        config = paper_config(config)
    if isinstance(model, str):
        models = named_models()
        if model not in models:
            raise KeyError(
                f"unknown model {model!r}; know {sorted(models)}"
            )
        model = models[model]
    if trace is None:
        trace = resolve_trace(benchmark, max_instructions)
    tracer = PipelineTracer(capacity)
    if model is None:
        result = run_baseline(trace, config, tracer=tracer)
        model_name = None
    else:
        result = run_trace(
            trace,
            config,
            model,
            confidence=confidence,
            update_timing=update_timing,
            tracer=tracer,
        )
        model_name = model.name
    return InstrumentedRun(
        benchmark=benchmark,
        model_name=model_name,
        tracer=tracer,
        result=result,
    )
