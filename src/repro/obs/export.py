"""Exporters for recorded observability data.

Three consumers, three formats:

* :func:`chrome_trace` — Chrome trace-event JSON, loadable in Perfetto or
  ``chrome://tracing``.  Lifecycle spans render as complete ("X") events
  with one track per RUU station slot; latency events render on a second
  process with one track per event kind.
* :func:`metrics_dict` / :func:`metrics_csv` — machine-readable per-kind
  histogram statistics for dashboards and diffing.
* :func:`summary_table` — the human-readable latency-event table printed
  by ``repro obs histo``.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.core.events import LatencyEventKind
from repro.obs.aggregate import (
    LatencyHistogram,
    aggregate_latency_events,
    lifecycle_spans,
)
from repro.obs.tracer import PipelineTracer

#: pid used for the per-station lifecycle tracks.
STATIONS_PID = 1
#: pid used for the per-kind latency-event tracks.
LATENCY_PID = 2

_KIND_TID = {kind: tid for tid, kind in enumerate(LatencyEventKind)}


def chrome_trace(tracer: PipelineTracer, label: str | None = None) -> dict:
    """Chrome trace-event JSON for one instrumented run.

    Returns the top-level object (``{"traceEvents": [...], ...}``); dump
    with ``json.dump`` to get a file Perfetto accepts.  Timestamps are in
    microseconds per the format, with one simulated cycle mapped to 1us.
    """
    window = tracer.window_size or 1
    label = label or tracer.config_label or "repro"
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": STATIONS_PID,
            "tid": 0,
            "args": {"name": f"RUU stations ({label})"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": LATENCY_PID,
            "tid": 0,
            "args": {"name": "latency events"},
        },
    ]
    for slot in range(window):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": STATIONS_PID,
                "tid": slot,
                "args": {"name": f"station {slot}"},
            }
        )
    for kind, tid in _KIND_TID.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": LATENCY_PID,
                "tid": tid,
                "args": {"name": kind.paper_name},
            }
        )

    for span in lifecycle_spans(tracer):
        slot = span.sid % window if span.sid >= 0 else 0
        event = {
            "name": span.name,
            "cat": "lifecycle",
            "ph": "X",
            "pid": STATIONS_PID,
            "tid": slot,
            "ts": span.start,
            "dur": max(span.end - span.start, 0),
            "args": {"seq": span.seq, "sid": span.sid},
        }
        if span.detail:
            event["args"]["detail"] = span.detail
        events.append(event)

    for rec in tracer.latency_events():
        events.append(
            {
                "name": rec.kind.value,
                "cat": "latency",
                "ph": "X",
                "pid": LATENCY_PID,
                "tid": _KIND_TID[rec.kind],
                "ts": rec.start,
                "dur": max(rec.latency, 0),
                "args": {
                    "seq": rec.seq,
                    "sid": rec.sid,
                    "op": rec.op,
                    "paper_name": rec.kind.paper_name,
                },
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro obs",
            "config": label,
            "marks_dropped": tracer.marks.dropped,
            "latencies_dropped": tracer.latencies.dropped,
        },
    }


_REQUIRED_EVENT_KEYS = ("name", "ph", "pid", "tid")


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema problems in a chrome_trace document; empty when valid.

    Used by the CLI, the CI smoke job, and tests — one shared notion of
    "loadable" so they cannot drift apart.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event[{i}] is not an object")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"event[{i}] missing '{key}'")
        ph = event.get("ph")
        if ph == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event[{i}] ph=X missing numeric 'ts'")
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event[{i}] ph=X missing non-negative 'dur'")
        elif ph == "M":
            if "args" not in event:
                problems.append(f"event[{i}] ph=M missing 'args'")
        elif ph not in ("B", "E", "i", "I", "C"):
            problems.append(f"event[{i}] has unsupported ph {ph!r}")
    return problems


def metrics_dict(
    histograms: dict[LatencyEventKind, LatencyHistogram] | PipelineTracer,
    label: str | None = None,
) -> dict:
    """JSON-ready per-kind histogram statistics."""
    if isinstance(histograms, PipelineTracer):
        if label is None:
            label = histograms.config_label
        histograms = aggregate_latency_events(histograms)
    return {
        "config": label,
        "latency_events": {
            kind.value: {
                "paper_name": kind.paper_name,
                "latency_field": kind.latency_field,
                **hist.as_dict(),
            }
            for kind, hist in sorted(
                histograms.items(), key=lambda item: item[0].value
            )
        },
    }


_CSV_COLUMNS = ("kind", "paper_name", "count", "min", "mean", "p50", "p90", "p99", "max")


def metrics_csv(
    histograms: dict[LatencyEventKind, LatencyHistogram] | PipelineTracer,
) -> str:
    """One CSV row per latency-event kind."""
    if isinstance(histograms, PipelineTracer):
        histograms = aggregate_latency_events(histograms)
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(_CSV_COLUMNS)
    for kind, hist in sorted(histograms.items(), key=lambda item: item[0].value):
        writer.writerow(
            [
                kind.value,
                kind.paper_name,
                hist.count,
                hist.min,
                f"{hist.mean:.4f}",
                hist.percentile(50),
                hist.percentile(90),
                hist.percentile(99),
                hist.max,
            ]
        )
    return out.getvalue()


def summary_table(
    histograms: dict[LatencyEventKind, LatencyHistogram] | PipelineTracer,
    title: str | None = None,
    kinds: Iterable[LatencyEventKind] = tuple(LatencyEventKind),
) -> str:
    """Text latency-event summary table, one row per kind.

    Kinds with no recorded events still get a row (count 0), so the table
    doubles as a coverage checklist for the paper's eight events.
    """
    if isinstance(histograms, PipelineTracer):
        if title is None:
            title = histograms.config_label
        histograms = aggregate_latency_events(histograms)
    rows = []
    for kind in kinds:
        hist = histograms.get(kind, LatencyHistogram())
        rows.append(
            (
                kind.paper_name,
                str(hist.count),
                str(hist.min),
                f"{hist.mean:.2f}",
                str(hist.percentile(50)),
                str(hist.percentile(90)),
                str(hist.max),
            )
        )
    header = ("latency event", "count", "min", "mean", "p50", "p90", "max")
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        for col in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(
            header[col].ljust(widths[col]) if col == 0 else header[col].rjust(widths[col])
            for col in range(len(header))
        )
    )
    lines.append("  ".join("-" * widths[col] for col in range(len(header))))
    for row in rows:
        lines.append(
            "  ".join(
                row[col].ljust(widths[col]) if col == 0 else row[col].rjust(widths[col])
                for col in range(len(header))
            )
        )
    return "\n".join(lines)


def write_chrome_trace(tracer: PipelineTracer, path, label: str | None = None) -> dict:
    """Build, validate, and write a Chrome trace; returns the document."""
    doc = chrome_trace(tracer, label=label)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError("invalid chrome trace: " + "; ".join(problems[:5]))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc
