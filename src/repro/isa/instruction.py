"""The in-memory instruction representation shared by assembler and simulators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import InstrFormat, OpClass, Opcode
from repro.isa.registers import canonical_reg_name


@dataclass(frozen=True)
class Instruction:
    """One decoded VSR instruction.

    ``rd`` is the destination register (``None`` when the instruction writes
    no register), ``rs``/``rt`` are sources.  ``imm`` carries the immediate
    for I/LI/MEM/B-format instructions; for control transfers it holds the
    byte offset or absolute target resolved by the assembler.

    The structure is frozen so instructions can be shared between the static
    program image and every dynamic trace record that references them.
    """

    opcode: Opcode
    rd: int | None = None
    rs: int | None = None
    rt: int | None = None
    imm: int = 0
    label: str | None = field(default=None, compare=False)

    @property
    def opclass(self) -> OpClass:
        return self.opcode.opclass

    @property
    def format(self) -> InstrFormat:
        return self.opcode.format

    @property
    def writes_register(self) -> bool:
        """True when this instruction produces an architecturally visible
        register value (and is therefore value-prediction eligible)."""
        return self.opcode.writes_register and self.rd not in (None, 0)

    def source_regs(self) -> tuple[int, ...]:
        """Register numbers read by this instruction, in operand order.

        Reads of ``r0`` are omitted: the zero register is constant and never
        creates a dataflow dependence.
        """
        fmt = self.format
        sources: tuple[int | None, ...]
        if fmt is InstrFormat.R:
            sources = (self.rs, self.rt)
        elif fmt in (InstrFormat.I, InstrFormat.BZ, InstrFormat.JR, InstrFormat.JLR):
            sources = (self.rs,)
        elif fmt is InstrFormat.MEM:
            # Loads read the base register; stores read base and data.
            if self.opclass is OpClass.STORE:
                sources = (self.rs, self.rt)
            else:
                sources = (self.rs,)
        elif fmt is InstrFormat.B:
            sources = (self.rs, self.rt)
        else:  # LI, J, JL, N — no register sources
            sources = ()
        return tuple(r for r in sources if r is not None and r != 0)

    def render(self) -> str:
        """Render back to assembly text."""
        op = self.opcode.mnemonic
        fmt = self.format
        r = canonical_reg_name
        target = self.label if self.label is not None else hex(self.imm)
        if fmt is InstrFormat.R:
            return f"{op} {r(self.rd)}, {r(self.rs)}, {r(self.rt)}"
        if fmt is InstrFormat.I:
            return f"{op} {r(self.rd)}, {r(self.rs)}, {self.imm}"
        if fmt is InstrFormat.LI:
            return f"{op} {r(self.rd)}, {self.imm}"
        if fmt is InstrFormat.MEM:
            data_reg = self.rd if self.opclass is OpClass.LOAD else self.rt
            return f"{op} {r(data_reg)}, {self.imm}({r(self.rs)})"
        if fmt is InstrFormat.B:
            return f"{op} {r(self.rs)}, {r(self.rt)}, {target}"
        if fmt is InstrFormat.BZ:
            return f"{op} {r(self.rs)}, {target}"
        if fmt is InstrFormat.J:
            return f"{op} {target}"
        if fmt is InstrFormat.JL:
            return f"{op} {r(self.rd)}, {target}"
        if fmt is InstrFormat.JR:
            return f"{op} {r(self.rs)}"
        if fmt is InstrFormat.JLR:
            return f"{op} {r(self.rd)}, {r(self.rs)}"
        return op

    def __str__(self) -> str:
        return self.render()
