"""A small load/store RISC instruction set used as the workload substrate.

The paper evaluates on SPECint95 binaries compiled for the SimpleScalar PISA
architecture.  Those binaries (and the SimpleScalar gcc toolchain) are not
available offline, so this package defines a compact RISC ISA — "VSR"
(Value-Speculation RISC) — with the properties the study depends on:

* fixed-length instructions fetched from an instruction cache,
* a clear separation of operation classes with distinct execution
  latencies (simple integer, complex integer, floating point, memory,
  control transfer),
* register dataflow that a value predictor can observe and predict.

Benchmark kernels written in VSR assembly (see :mod:`repro.programs`) are
executed by the functional simulator (:mod:`repro.func`) to produce dynamic
instruction traces which the timing simulator replays.
"""

from repro.isa.opcodes import (
    Opcode,
    OpClass,
    FORMAT_BY_OPCODE,
    OPCLASS_BY_OPCODE,
    InstrFormat,
)
from repro.isa.registers import (
    NUM_REGS,
    REG_NAMES,
    REG_ALIASES,
    Reg,
    canonical_reg_name,
    parse_reg,
)
from repro.isa.instruction import Instruction
from repro.isa.encoding import encode, decode, EncodingError

__all__ = [
    "Opcode",
    "OpClass",
    "InstrFormat",
    "FORMAT_BY_OPCODE",
    "OPCLASS_BY_OPCODE",
    "NUM_REGS",
    "REG_NAMES",
    "REG_ALIASES",
    "Reg",
    "canonical_reg_name",
    "parse_reg",
    "Instruction",
    "encode",
    "decode",
    "EncodingError",
]
