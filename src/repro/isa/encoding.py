"""Binary encoding of VSR instructions.

Instructions encode into a fixed 64-bit word:

    bits  0..7    opcode
    bits  8..13   rd   (0x3f when absent)
    bits 14..19   rs   (0x3f when absent)
    bits 20..25   rt   (0x3f when absent)
    bits 26..63   imm, two's-complement 38-bit

The wide immediate field is a toy-ISA convenience (real RISC ISAs split wide
constants across instruction pairs); it keeps the assembler and kernels
simple without affecting anything the timing study measures.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_BY_CODE, Opcode

_REG_ABSENT = 0x3F
_IMM_BITS = 38
_IMM_MIN = -(1 << (_IMM_BITS - 1))
_IMM_MAX = (1 << (_IMM_BITS - 1)) - 1


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or a word decoded."""


def _encode_reg(reg: int | None) -> int:
    if reg is None:
        return _REG_ABSENT
    if not 0 <= reg < 32:
        raise EncodingError(f"register out of range: {reg}")
    return reg


def _decode_reg(bits: int) -> int | None:
    return None if bits == _REG_ABSENT else bits


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 64-bit word."""
    if not _IMM_MIN <= instr.imm <= _IMM_MAX:
        raise EncodingError(
            f"immediate {instr.imm} does not fit in {_IMM_BITS} signed bits"
        )
    word = instr.opcode.code
    word |= _encode_reg(instr.rd) << 8
    word |= _encode_reg(instr.rs) << 14
    word |= _encode_reg(instr.rt) << 20
    word |= (instr.imm & ((1 << _IMM_BITS) - 1)) << 26
    return word


def decode(word: int) -> Instruction:
    """Decode a 64-bit word back into an :class:`Instruction`.

    Labels are not recoverable from the encoding; control-transfer targets
    come back as resolved immediates.
    """
    if not 0 <= word < (1 << 64):
        raise EncodingError(f"word out of range: {word:#x}")
    code = word & 0xFF
    opcode = OPCODE_BY_CODE.get(code)
    if opcode is None:
        raise EncodingError(f"unknown opcode byte: {code:#x}")
    imm = (word >> 26) & ((1 << _IMM_BITS) - 1)
    if imm & (1 << (_IMM_BITS - 1)):
        imm -= 1 << _IMM_BITS
    return Instruction(
        opcode=opcode,
        rd=_decode_reg((word >> 8) & 0x3F),
        rs=_decode_reg((word >> 14) & 0x3F),
        rt=_decode_reg((word >> 20) & 0x3F),
        imm=imm,
    )


def encode_opcode(opcode: Opcode) -> int:
    """Expose the stable numeric opcode (used by tests and tooling)."""
    return opcode.code
