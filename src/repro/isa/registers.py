"""Architectural register file naming for the VSR ISA.

There are 32 integer registers.  ``r0`` is hardwired to zero: writes to it
are discarded, reads always return 0, and instructions whose destination is
``r0`` are not value-prediction eligible (they produce no observable value).
"""

from __future__ import annotations

NUM_REGS = 32

#: Canonical register names, index ``i`` -> ``r{i}``.
REG_NAMES: tuple[str, ...] = tuple(f"r{i}" for i in range(NUM_REGS))

#: ABI-style aliases accepted by the assembler.
REG_ALIASES: dict[str, int] = {
    "zero": 0,
    "v0": 2,
    "v1": 3,
    "a0": 4,
    "a1": 5,
    "a2": 6,
    "a3": 7,
    "t0": 8,
    "t1": 9,
    "t2": 10,
    "t3": 11,
    "t4": 12,
    "t5": 13,
    "t6": 14,
    "t7": 15,
    "s0": 16,
    "s1": 17,
    "s2": 18,
    "s3": 19,
    "s4": 20,
    "s5": 21,
    "s6": 22,
    "s7": 23,
    "t8": 24,
    "t9": 25,
    "gp": 28,
    "sp": 29,
    "fp": 30,
    "ra": 31,
}

_NAME_TO_INDEX: dict[str, int] = {name: i for i, name in enumerate(REG_NAMES)}
_NAME_TO_INDEX.update(REG_ALIASES)


class Reg(int):
    """A register index that prints with its canonical name."""

    def __new__(cls, index: int) -> "Reg":
        if not 0 <= index < NUM_REGS:
            raise ValueError(f"register index out of range: {index}")
        return super().__new__(cls, index)

    def __repr__(self) -> str:
        return f"Reg({int(self)})"

    def __str__(self) -> str:
        return REG_NAMES[int(self)]


def canonical_reg_name(index: int) -> str:
    """Return the canonical ``r{i}`` name for a register index."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {index}")
    return REG_NAMES[index]


def parse_reg(token: str) -> Reg:
    """Parse a register token (canonical name or ABI alias) to a :class:`Reg`.

    Raises :class:`ValueError` for unknown tokens.
    """
    name = token.strip().lower()
    if name.startswith("$"):
        name = name[1:]
    index = _NAME_TO_INDEX.get(name)
    if index is None:
        raise ValueError(f"unknown register: {token!r}")
    return Reg(index)
