"""Opcode and operation-class definitions for the VSR ISA.

Every opcode belongs to exactly one :class:`OpClass`.  The operation class
determines which functional unit executes the instruction and, through
:mod:`repro.engine.funits`, its execution latency.  The latency bands follow
the paper's simulation methodology (Section 5.1): "All simple integer
instructions require one cycle to execute.  Complex integer operations and
floating point operations, depending on the type, require from 2 to 24
cycles."
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Functional classification of an instruction.

    The timing simulator keys execution latency, issue constraints and
    selection priority off this class.
    """

    IALU = "ialu"  # simple integer ALU: 1 cycle
    IMUL = "imul"  # integer multiply: complex integer
    IDIV = "idiv"  # integer divide/remainder: complex integer
    FADD = "fadd"  # floating add/sub (fixed-point emulated)
    FMUL = "fmul"  # floating multiply
    FDIV = "fdiv"  # floating divide
    LOAD = "load"  # memory read: address generation + access
    STORE = "store"  # memory write: address generation + access
    BRANCH = "branch"  # conditional control transfer
    JUMP = "jump"  # unconditional direct control transfer
    IJUMP = "ijump"  # indirect jump (jr / jalr / ret)
    SYSCALL = "syscall"  # environment call (halt, print)

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP, OpClass.IJUMP)


class InstrFormat(enum.Enum):
    """Assembly/encoding format of an instruction.

    R      op rd, rs, rt           (register-register)
    I      op rd, rs, imm          (register-immediate)
    LI     op rd, imm              (wide immediate load)
    MEM    op rd, offset(rs)       (load)  /  op rt, offset(rs)  (store)
    B      op rs, rt, target       (compare-and-branch)
    BZ     op rs, target           (compare-with-zero branch)
    J      op target               (direct jump)
    JL     op rd, target           (direct jump-and-link)
    JR     op rs                   (indirect jump)
    JLR    op rd, rs               (indirect jump-and-link)
    N      op                      (no operands)
    """

    R = "R"
    I = "I"  # noqa: E741 - conventional format letter
    LI = "LI"
    MEM = "MEM"
    B = "B"
    BZ = "BZ"
    J = "J"
    JL = "JL"
    JR = "JR"
    JLR = "JLR"
    N = "N"


class Opcode(enum.Enum):
    """All VSR opcodes.

    The value of each member is its mnemonic; the numeric encoding used by
    :mod:`repro.isa.encoding` is the member's ordinal position.
    """

    # --- simple integer, register-register ------------------------------
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLL = "sll"  # shift left logical (amount in rt)
    SRL = "srl"  # shift right logical
    SRA = "sra"  # shift right arithmetic
    SLT = "slt"  # set if less-than (signed)
    SLTU = "sltu"  # set if less-than (unsigned)
    MIN = "min"
    MAX = "max"

    # --- simple integer, register-immediate -----------------------------
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"

    # --- wide immediate ---------------------------------------------------
    LUI = "lui"  # load upper immediate (imm << 16)
    LI = "li"  # load full immediate (toy-ISA convenience)

    # --- complex integer --------------------------------------------------
    MUL = "mul"
    MULH = "mulh"
    DIV = "div"
    REM = "rem"

    # --- floating point (operates on integer registers holding fixed-point
    # --- values; latency is what matters for the timing study) ------------
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"

    # --- memory ------------------------------------------------------------
    LD = "ld"  # load 8 bytes
    LW = "lw"  # load 4 bytes (sign-extended)
    LBU = "lbu"  # load 1 byte (zero-extended)
    SD = "sd"  # store 8 bytes
    SW = "sw"  # store 4 bytes
    SB = "sb"  # store 1 byte

    # --- control -----------------------------------------------------------
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTZ = "bltz"
    BGEZ = "bgez"
    BEQZ = "beqz"
    BNEZ = "bnez"
    J = "j"
    JAL = "jal"
    JR = "jr"
    JALR = "jalr"

    # --- environment ---------------------------------------------------------
    HALT = "halt"
    NOP = "nop"
    PRINT = "print"  # debug aid: print register (no architectural effect)

    @property
    def mnemonic(self) -> str:
        return self.value

    @property
    def opclass(self) -> OpClass:
        return OPCLASS_BY_OPCODE[self]

    @property
    def format(self) -> InstrFormat:
        return FORMAT_BY_OPCODE[self]

    @property
    def writes_register(self) -> bool:
        """True when the instruction produces a register result.

        Register-writing instructions are the ones eligible for value
        prediction (Section 5.2: the predictor is indexed by the PC of the
        predicted instruction and produces its output value).
        """
        return self in _REG_WRITERS

    @property
    def code(self) -> int:
        """Stable numeric opcode used by the binary encoding."""
        return _CODE_BY_OPCODE[self]


_R = InstrFormat.R
_I = InstrFormat.I

FORMAT_BY_OPCODE: dict[Opcode, InstrFormat] = {
    Opcode.ADD: _R,
    Opcode.SUB: _R,
    Opcode.AND: _R,
    Opcode.OR: _R,
    Opcode.XOR: _R,
    Opcode.NOR: _R,
    Opcode.SLL: _R,
    Opcode.SRL: _R,
    Opcode.SRA: _R,
    Opcode.SLT: _R,
    Opcode.SLTU: _R,
    Opcode.MIN: _R,
    Opcode.MAX: _R,
    Opcode.ADDI: _I,
    Opcode.ANDI: _I,
    Opcode.ORI: _I,
    Opcode.XORI: _I,
    Opcode.SLLI: _I,
    Opcode.SRLI: _I,
    Opcode.SRAI: _I,
    Opcode.SLTI: _I,
    Opcode.LUI: InstrFormat.LI,
    Opcode.LI: InstrFormat.LI,
    Opcode.MUL: _R,
    Opcode.MULH: _R,
    Opcode.DIV: _R,
    Opcode.REM: _R,
    Opcode.FADD: _R,
    Opcode.FSUB: _R,
    Opcode.FMUL: _R,
    Opcode.FDIV: _R,
    Opcode.LD: InstrFormat.MEM,
    Opcode.LW: InstrFormat.MEM,
    Opcode.LBU: InstrFormat.MEM,
    Opcode.SD: InstrFormat.MEM,
    Opcode.SW: InstrFormat.MEM,
    Opcode.SB: InstrFormat.MEM,
    Opcode.BEQ: InstrFormat.B,
    Opcode.BNE: InstrFormat.B,
    Opcode.BLT: InstrFormat.B,
    Opcode.BGE: InstrFormat.B,
    Opcode.BLTZ: InstrFormat.BZ,
    Opcode.BGEZ: InstrFormat.BZ,
    Opcode.BEQZ: InstrFormat.BZ,
    Opcode.BNEZ: InstrFormat.BZ,
    Opcode.J: InstrFormat.J,
    Opcode.JAL: InstrFormat.JL,
    Opcode.JR: InstrFormat.JR,
    Opcode.JALR: InstrFormat.JLR,
    Opcode.HALT: InstrFormat.N,
    Opcode.NOP: InstrFormat.N,
    Opcode.PRINT: InstrFormat.JR,  # single register operand
}

OPCLASS_BY_OPCODE: dict[Opcode, OpClass] = {
    **{
        op: OpClass.IALU
        for op in (
            Opcode.ADD,
            Opcode.SUB,
            Opcode.AND,
            Opcode.OR,
            Opcode.XOR,
            Opcode.NOR,
            Opcode.SLL,
            Opcode.SRL,
            Opcode.SRA,
            Opcode.SLT,
            Opcode.SLTU,
            Opcode.MIN,
            Opcode.MAX,
            Opcode.ADDI,
            Opcode.ANDI,
            Opcode.ORI,
            Opcode.XORI,
            Opcode.SLLI,
            Opcode.SRLI,
            Opcode.SRAI,
            Opcode.SLTI,
            Opcode.LUI,
            Opcode.LI,
            Opcode.NOP,
        )
    },
    Opcode.MUL: OpClass.IMUL,
    Opcode.MULH: OpClass.IMUL,
    Opcode.DIV: OpClass.IDIV,
    Opcode.REM: OpClass.IDIV,
    Opcode.FADD: OpClass.FADD,
    Opcode.FSUB: OpClass.FADD,
    Opcode.FMUL: OpClass.FMUL,
    Opcode.FDIV: OpClass.FDIV,
    Opcode.LD: OpClass.LOAD,
    Opcode.LW: OpClass.LOAD,
    Opcode.LBU: OpClass.LOAD,
    Opcode.SD: OpClass.STORE,
    Opcode.SW: OpClass.STORE,
    Opcode.SB: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.BLTZ: OpClass.BRANCH,
    Opcode.BGEZ: OpClass.BRANCH,
    Opcode.BEQZ: OpClass.BRANCH,
    Opcode.BNEZ: OpClass.BRANCH,
    Opcode.J: OpClass.JUMP,
    Opcode.JAL: OpClass.JUMP,
    Opcode.JR: OpClass.IJUMP,
    Opcode.JALR: OpClass.IJUMP,
    Opcode.HALT: OpClass.SYSCALL,
    Opcode.PRINT: OpClass.SYSCALL,
}

_REG_WRITERS: frozenset[Opcode] = frozenset(
    op
    for op, fmt in FORMAT_BY_OPCODE.items()
    if fmt in (InstrFormat.R, InstrFormat.I, InstrFormat.LI, InstrFormat.JL, InstrFormat.JLR)
) | frozenset((Opcode.LD, Opcode.LW, Opcode.LBU))
# NOP writes nothing even though its format family usually does.
_REG_WRITERS = _REG_WRITERS - frozenset((Opcode.NOP,))

_CODE_BY_OPCODE: dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}
OPCODE_BY_CODE: dict[int, Opcode] = {i: op for op, i in _CODE_BY_OPCODE.items()}

#: Size, in bytes, of every encoded VSR instruction.  Fixed length keeps the
#: trivial PC dependence trivial (Section 1 of the paper).
INSTRUCTION_BYTES = 8

#: Functional-unit execution latency per operation class, in cycles.
#: Section 5.1: "All simple integer instructions require one cycle to
#: execute.  Complex integer operations and floating point operations,
#: depending on the type, require from 2 to 24 cycles."  The per-class
#: values sit inside that band and follow SimpleScalar's defaults where
#: the paper is silent.  LOAD covers address generation only — the memory
#: access latency comes from the cache model (or single-cycle store
#: forwarding); STORE is its address generation, the actual write
#: happening at retirement.  Lives beside the ISA tables (rather than in
#: ``repro.engine.funits``, which re-exports it) so trace records can
#: precompute their latency at construction without importing the engine.
CLASS_LATENCY: dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 20,
    OpClass.FADD: 2,
    OpClass.FMUL: 4,
    OpClass.FDIV: 24,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.IJUMP: 1,
    OpClass.SYSCALL: 1,
}
