"""Knob extraction and method templates for config-specialized codegen.

The specializer (:mod:`repro.engine.specialize`) rewrites the generic
:class:`~repro.engine.pipeline.PipelineSimulator` stage methods with every
configuration-dependent branch condition replaced by its value for one
sweep point.  This module owns the *inputs* to that rewrite:

* :data:`STAGE_METHODS` — the registry of generic methods worth
  specializing (the ones that read at least one constant-per-run knob).
* :func:`derive_inputs` — evaluates, for one (config, model, predictor,
  confidence, update timing) tuple, the exact same knob expressions
  ``PipelineSimulator.__init__`` computes, and packages them with the
  canonical cache key.  Derivation runs on the *actual* collaborator
  instances so type-sensitive fast paths (the fused VP path, the replay
  path) can never disagree with what ``__init__`` would decide.
* :func:`verify_template` — the per-scheme ``_on_verify`` body that
  replaces the generic method's ``self._verify_impl`` indirection.

Everything folded into generated source is a pure function of the
fingerprint returned in :attr:`SpecializationInputs.key`, which follows
the same canonical-repr discipline as :func:`repro.cluster.serial.job_key`
— so a cache hit can never hand back a class specialized for different
knob values.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.latency import LatencyModel
from repro.core.model import SpeculativeExecutionModel
from repro.core.variables import (
    BranchResolution,
    MemoryResolution,
    ModelVariables,
    SelectionPolicy,
    VerificationScheme,
    WakeupPolicy,
)
from repro.engine.config import ProcessorConfig
from repro.vp.confidence import ResettingConfidenceEstimator
from repro.vp.context import ContextValuePredictor
from repro.vp.update_timing import UpdateTiming

#: Generic methods the specializer rewrites: every ``PipelineSimulator``
#: method that reads at least one constant-per-run knob attribute (the
#: audit lives in tests/test_specialize.py, which fails if a registry
#: method grows a *store* to a folded attribute).
STAGE_METHODS: tuple[str, ...] = (
    "run",
    "_fetch",
    "_dispatch",
    "_prediction_eligible",
    "_vp_port_available",
    "_predict_value",
    "_predict_value_fast",
    "_branch_ready_cycle",
    "_memory_ready_cycle",
    "_issue",
    "_try_load_access",
    "_start_execution",
    "_on_result",
    "_on_equality",
    "_resolve_correct",
    "_verify_parallel",
    "_clear_taints",
    "_maybe_chain_equality",
    "_retirement_based_validate",
    "_on_provisional_invalidate",
    "_on_invalidate",
    "_apply_invalidation",
    "_complete_invalidation",
    "_resolve_mispredicted_branch",
    "_squash_younger",
    "_retire",
)

#: Per-scheme ``_on_verify`` replacement: the generic method dispatches
#: through ``self._verify_impl`` (a lambda for the retirement schemes);
#: the specialized class calls the scheme's implementation directly.
#: ``_SPEC_VERIFY_SCHEME`` is injected into the exec namespace by the
#: class builder.
_VERIFY_DIRECT = """\
def _on_verify(self, source, cycle):
    if source.prediction_resolved:
        return
    self.{impl}(source, cycle)
"""

_VERIFY_RETIREMENT = """\
def _on_verify(self, source, cycle):
    if source.prediction_resolved:
        return
    self._verify_retirement_based(source, cycle, _SPEC_VERIFY_SCHEME)
"""


def verify_template(scheme: VerificationScheme) -> str:
    """The ``_on_verify`` method source for one verification scheme."""
    if scheme is VerificationScheme.PARALLEL_NETWORK:
        return _VERIFY_DIRECT.format(impl="_verify_parallel")
    if scheme is VerificationScheme.HIERARCHICAL:
        return _VERIFY_DIRECT.format(impl="_verify_hierarchical")
    if scheme in (VerificationScheme.RETIREMENT_BASED, VerificationScheme.HYBRID):
        return _VERIFY_RETIREMENT
    raise ValueError(f"no _on_verify template for scheme {scheme!r}")


@dataclass(frozen=True)
class SpecializationInputs:
    """Everything the AST folder needs for one sweep point.

    ``scalar_knobs`` maps ``self.<attr>`` names to embeddable constants
    (bool/int/float/str/None) substituted at load sites.
    ``notnone_attrs`` maps attribute names to identity-with-``None``
    facts used to fold ``is None`` / ``is not None`` tests on objects
    whose *values* cannot be embedded (the replay code column, the fused
    confidence counter table).  ``config``/``variables``/``latencies``/
    ``update_timing`` are the live objects compare-folding resolves
    against (enum members compare by identity, so they can be folded in
    tests but never embedded as literals).
    """

    key: str
    scalar_knobs: dict
    notnone_attrs: dict
    config: ProcessorConfig
    variables: ModelVariables
    latencies: LatencyModel
    update_timing: UpdateTiming
    verify_scheme: VerificationScheme


def _qualified(obj: object) -> str:
    if obj is None:
        return "None"
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def derive_inputs(
    config: ProcessorConfig,
    model: SpeculativeExecutionModel | None,
    predictor,
    confidence,
    update_timing: UpdateTiming,
) -> SpecializationInputs:
    """Evaluate the knob expressions of ``PipelineSimulator.__init__``
    for one sweep point and fingerprint them.

    ``predictor``/``confidence`` must be the *same instances* later
    passed to the simulator constructor — the fused-VP and replay fast
    paths are gated on exact types and instance attributes, and folding
    a decision that disagrees with construction time would change
    timing.  Any attribute error here (an exotic collaborator missing an
    expected field) propagates to the caller, which falls back generic.
    """
    variables = model.variables if model is not None else ModelVariables()
    latencies = model.latencies if model is not None else LatencyModel()
    vp_enabled = model is not None

    vp_delayed = update_timing is not UpdateTiming.IMMEDIATE
    eq_shift = config.equality_ignore_low_bits
    vp_unlimited = not config.vp_ports
    fast_vp = (
        type(predictor) is ContextValuePredictor
        and type(confidence) is ResettingConfidenceEstimator
        and vp_delayed
        and not eq_shift
    )
    fold16_ok = bool(fast_vp and predictor._fold16_ok)
    # Replay gate: identical to __init__ (identity with None, not
    # truthiness — a replay column may be an empty bytearray).
    rv_codes = getattr(predictor, "replay_codes", None)
    replay = not (
        rv_codes is None
        or getattr(confidence, "replay_flags", None) is None
        or vp_delayed
        or not vp_unlimited
    )

    scalar_knobs = {
        "vp_enabled": vp_enabled,
        "_model_on": vp_enabled,
        "_obs_on": False,  # tracer-attached runs never specialize
        "_log_on": bool(config.log_events),
        "_lat_exec_eq": latencies.exec_to_equality,
        "_lat_eq_verify": latencies.equality_to_verification,
        "_lat_eq_inval": latencies.equality_to_invalidation,
        "_lat_inval_reissue": latencies.invalidation_to_reissue,
        "_lat_verify_branch": latencies.verification_to_branch,
        "_lat_verify_mem": latencies.verification_addr_to_mem_access,
        "_lat_release_spec": max(
            latencies.verification_to_free_issue,
            latencies.verification_to_free_retirement,
        ),
        "_rb_validate": variables.verification in (
            VerificationScheme.RETIREMENT_BASED,
            VerificationScheme.HYBRID,
        ),
        "_chain_equality": (
            variables.verification is not VerificationScheme.PARALLEL_NETWORK
        ),
        "_predict_all": config.predict_classes == "all",
        "_vp_unlimited": vp_unlimited,
        "_sel_paper": variables.selection is SelectionPolicy.PAPER,
        "_wakeup_valid_only": variables.wakeup is WakeupPolicy.VALID_ONLY,
        "_branch_valid_only": (
            variables.branch_resolution is BranchResolution.VALID_ONLY
        ),
        "_mem_valid_only": (
            variables.memory_resolution is MemoryResolution.VALID_ONLY
        ),
        "_issue_width": config.issue_width,
        "_dispatch_width": config.dispatch_width,
        "_retire_width": config.retire_width,
        "_fetch_width": config.fetch_width,
        "_dispatch_latency": config.dispatch_latency,
        "_fetch_limit": config.fetch_width * (config.dispatch_latency + 2),
        "_vp_delayed": vp_delayed,
        "_eq_shift": eq_shift,
        "_fast_vp": fast_vp,
        "_fvp_fold16_ok": fold16_ok,
    }
    # Object-valued knobs fold two ways: when absent they *are* the
    # constant None; when present only their not-None-ness folds.
    notnone_attrs = {"_rv_codes": replay, "_fconf_counters": fast_vp}
    if not replay:
        scalar_knobs["_rv_codes"] = None
    if not fast_vp:
        scalar_knobs["_fconf_counters"] = None

    model_text = (
        "baseline"
        if model is None
        else f"{model.name}|{model.variables!r}|{model.latencies!r}"
    )
    canonical = "\n".join(
        [
            "engine=specialize-v1",
            f"config={config!r}",
            f"model={model_text}",
            f"update_timing={update_timing!r}",
            f"predictor={_qualified(predictor)}",
            f"confidence={_qualified(confidence)}",
            f"fast_vp={fast_vp}",
            f"replay={replay}",
            f"fold16={fold16_ok}",
        ]
    )
    key = hashlib.sha256(canonical.encode()).hexdigest()[:24]
    return SpecializationInputs(
        key=key,
        scalar_knobs=scalar_knobs,
        notnone_attrs=notnone_attrs,
        config=config,
        variables=variables,
        latencies=latencies,
        update_timing=update_timing,
        verify_scheme=variables.verification,
    )
