"""Processor configuration.

The paper evaluates three machine sizes, identified by issue-width/window:
4/24, 8/48 and 16/96.  Everything else — cache geometry, branch predictor,
port counts — follows Section 5.1 and is held constant across sizes except
the D-cache port count, which is half the issue width.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ProcessorConfig:
    """Microarchitectural parameters independent of the speculation model."""

    issue_width: int = 8
    window_size: int = 48
    #: Per-cycle bandwidths; the paper gives only the issue width, so fetch,
    #: dispatch and retire default to it (SimpleScalar's convention).
    fetch_width: int | None = None
    dispatch_width: int | None = None
    retire_width: int | None = None
    #: Cycles between fetching an instruction and it entering the window
    #: (front-end depth).  Determines, with resolution time, the branch
    #: misprediction penalty.
    dispatch_latency: int = 2
    #: Fetch-redirect bubble after a resolved branch misprediction.
    redirect_penalty: int = 1
    #: D-cache ports: the paper's "as many ports as half the issue width".
    dcache_ports: int | None = None
    #: Model wrong-path fetch/execution occupancy after branch mispredicts.
    model_wrong_path: bool = True
    #: Paper's front-end idealism: control-transfer targets always correct
    #: when the direction is correct.
    ideal_branch_targets: bool = True
    #: Branch direction predictor: "gshare" (the paper), "bimodal",
    #: "local", or "tournament".
    branch_predictor: str = "gshare"
    #: gshare geometry (16-bit history, 64K entries).
    branch_history_bits: int = 16
    branch_table_bits: int = 16
    #: Safety net for runaway simulations.
    max_cycles: int = 5_000_000
    #: Record per-instruction pipeline events (slow; for visualization).
    log_events: bool = False
    #: Sample (cycle, retired, window occupancy) every N cycles into
    #: ``PipelineSimulator.samples`` (0 = off); feeds repro.viz timelines.
    sample_interval: int = 0
    #: Which instructions receive value predictions: "all" (the paper's
    #: configuration), "loads", "long-latency" (loads + complex int + FP),
    #: or "alu" — the selective-prediction dimension of Calder et al. that
    #: the paper's Sections 3.5–3.6 discuss.
    predict_classes: str = "all"
    #: Value-predictor ports: predictions granted per cycle at dispatch
    #: (0 = unlimited, the paper's implicit assumption).  One of the
    #: "number of ports" dimensions the paper defers.
    vp_ports: int = 0
    #: Idealization switches for limit-style runs: perfect branch
    #: direction prediction, and caches that always hit at L1 latency.
    perfect_branches: bool = False
    perfect_caches: bool = False
    #: Approximate equality (paper Section 3.3: "alternatives that do not
    #: require strict equality have been suggested but have not been
    #: explored"): a prediction whose value matches the computed result in
    #: all but the low N bits is treated as correct by the EQ comparators.
    #: Models tolerance for low-precision consumers; 0 = strict (paper).
    equality_ignore_low_bits: int = 0

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.window_size <= 0:
            raise ValueError("issue_width and window_size must be positive")
        if self.window_size < self.issue_width:
            raise ValueError("window must hold at least one issue group")
        for name in ("fetch_width", "dispatch_width", "retire_width"):
            value = getattr(self, name)
            if value is None:
                object.__setattr__(self, name, self.issue_width)
            elif value <= 0:
                raise ValueError(f"{name} must be positive")
        if self.dcache_ports is None:
            object.__setattr__(self, "dcache_ports", max(1, self.issue_width // 2))
        elif self.dcache_ports <= 0:
            raise ValueError("dcache_ports must be positive")
        if self.branch_predictor not in (
            "gshare", "bimodal", "local", "tournament"
        ):
            raise ValueError(
                "branch_predictor must be gshare, bimodal, local or tournament"
            )
        if self.predict_classes not in ("all", "loads", "long-latency", "alu"):
            raise ValueError(
                "predict_classes must be one of: all, loads, long-latency, alu"
            )
        if self.vp_ports < 0:
            raise ValueError("vp_ports must be non-negative (0 = unlimited)")
        if not 0 <= self.equality_ignore_low_bits < 64:
            raise ValueError("equality_ignore_low_bits must be in [0, 64)")

    @property
    def label(self) -> str:
        """The paper's width/window notation, e.g. ``8/48``."""
        return f"{self.issue_width}/{self.window_size}"

    def with_overrides(self, **kwargs) -> "ProcessorConfig":
        return replace(self, **kwargs)


#: The three configurations of Section 6.
PAPER_CONFIGS: tuple[ProcessorConfig, ...] = (
    ProcessorConfig(issue_width=4, window_size=24),
    ProcessorConfig(issue_width=8, window_size=48),
    ProcessorConfig(issue_width=16, window_size=96),
)


def paper_config(label: str) -> ProcessorConfig:
    """Look up a paper configuration by its ``width/window`` label."""
    for config in PAPER_CONFIGS:
        if config.label == label:
            return config
    raise KeyError(f"unknown configuration {label!r}; know " +
                   ", ".join(c.label for c in PAPER_CONFIGS))
