"""The cycle-level out-of-order timing engine.

Replays a dynamic instruction trace against the Section 2 microarchitecture
— unified instruction window, wakeup/selection issue, the paper's memory
hierarchy and front end — with or without value speculation.  When value
speculation is enabled, all timing of prediction, equality, verification,
invalidation, reissue and resource release is governed by a
:class:`~repro.core.model.SpeculativeExecutionModel`.
"""

from repro.engine.config import ProcessorConfig, PAPER_CONFIGS, paper_config
from repro.engine.funits import execution_latency
from repro.engine.pipeline import PipelineSimulator
from repro.engine.sim import SimulationResult, run_trace, run_baseline, run_speedup

__all__ = [
    "ProcessorConfig",
    "PAPER_CONFIGS",
    "paper_config",
    "execution_latency",
    "PipelineSimulator",
    "SimulationResult",
    "run_trace",
    "run_baseline",
    "run_speedup",
]
