"""The cycle-level out-of-order pipeline with value speculation.

Each simulated cycle advances through five phases — retire, speculation
events, issue, dispatch, fetch — so that an event effective in cycle *c*
(a result becoming usable, a verification or invalidation transaction) is
visible to the issue stage of the same cycle, matching the paper's event
timing convention: a latency of zero between two events means they complete
within the same cycle (Figure 1's *super* model packs detection,
invalidation and reissue into cycle t+1).

Event timestamps follow one rule: the cycle recorded for an event is the
first cycle in which its effect is actionable.  An instruction issued at
``t`` with execution latency ``L`` has its result usable in ``t + L``
(dependents may issue in ``t + L``); its equality outcome is actionable in
``t + L + exec_to_equality``; verification and invalidation transactions
are actionable ``equality_to_*`` cycles after that; and so on through the
:class:`~repro.core.latency.LatencyModel` variables.

Value speculation is simulated through *taint tracking*: every unresolved
prediction is a speculation source, and every value broadcast carries the
set of sources it transitively depends on.  An operand is VALID exactly
when its taint set is empty.  Verification removes a source from all taint
sets (the flattened network does this for a whole dependence closure in one
transaction, resolving chained predictions whose speculative equality
comparisons already succeeded); invalidation delivers the correct value to
direct consumers, resets (nullifies) every transitively affected
instruction, and lets dataflow re-execution repair the rest.

Two engine-level optimizations keep the hot loop cheap without changing a
single cycle of behaviour (the golden-counter tests pin this):

* Taint sets are integer **bitmasks** over recycled source bits (see
  :mod:`repro.window.taintmask` and docs/PERFORMANCE.md) — broadcast,
  verification and invalidation transactions do single int ops instead of
  allocating/copying ``set`` objects.
* Issue is **event-driven**: instead of rescanning the whole window every
  cycle, a ready pool holds only the stations whose operands are usable,
  fed by a wake heap of cycle-gated entries and re-armed by the broadcast
  / taint-clear / nullify paths that actually change operand state.
  Selection stays O(ready), not O(window).
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from itertools import islice as _islice

from repro.core.latency import LatencyModel
from repro.core.model import SpeculativeExecutionModel
from repro.core.variables import (
    BranchResolution,
    InvalidationScheme,
    MemoryResolution,
    ModelVariables,
    SelectionPolicy,
    VerificationScheme,
    WakeupPolicy,
)
from repro.core.events import EventLog, LatencyEventKind, SpecEventKind
from repro.engine.config import ProcessorConfig
from repro.isa.opcodes import INSTRUCTION_BYTES, OpClass
from repro.frontend.fetch import FetchEngine
from repro.frontend.gshare import GsharePredictor
from repro.mem.hierarchy import MemoryHierarchy, make_paper_hierarchy
from repro.mem.lsq import LoadStoreQueue
from repro.mem.ports import PortPool
from repro.metrics.counters import SimCounters
from repro.trace.record import TraceRecord
from repro.vp.base import ValuePredictor
from repro.vp.confidence import ConfidenceEstimator, ResettingConfidenceEstimator
from repro.vp.context import ContextValuePredictor
from repro.vp.update_timing import UpdateTiming
from repro.window.ruu import InstructionWindow
from repro.window.selection import select
from repro.window.station import Operand, Station
from repro.window.taintmask import TaintBitAllocator
from repro.window.wakeup import operand_state_labels

#: PC -> table-index shift used by the fused value-prediction fast path
#: (the same shift the predictor and confidence tables use internally).
_VP_PC_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
_MASK64 = (1 << 64) - 1

# Event kinds on the timing heap.
_RESULT = 0
_EQUALITY = 1
_VERIFY = 2
_INVALIDATE = 3
_WAVE_VERIFY = 4
_WAVE_INVALIDATE = 5
_ADDRGEN = 6
_PROV_INVALIDATE = 7


def _make_bpred(config: ProcessorConfig):
    """Build the configured branch direction predictor."""
    if config.branch_predictor == "gshare":
        return GsharePredictor(
            config.branch_history_bits, config.branch_table_bits
        )
    if config.branch_predictor == "bimodal":
        from repro.frontend.bimodal import BimodalPredictor

        return BimodalPredictor(config.branch_table_bits)
    if config.branch_predictor == "local":
        from repro.frontend.local import LocalHistoryPredictor

        return LocalHistoryPredictor()
    from repro.frontend.tournament import TournamentPredictor

    return TournamentPredictor()


class SimulationError(RuntimeError):
    """Raised when a simulation cannot make progress."""


class PipelineSimulator:
    """One simulation run: a trace replayed on one configuration."""

    def __init__(
        self,
        trace: list[TraceRecord],
        config: ProcessorConfig,
        model: SpeculativeExecutionModel | None = None,
        *,
        predictor: ValuePredictor | None = None,
        confidence: ConfidenceEstimator | None = None,
        update_timing: UpdateTiming = UpdateTiming.DELAYED,
        hierarchy: MemoryHierarchy | None = None,
        fetch_engine=None,
        tracer=None,
    ):
        self.trace = trace
        self.config = config
        self.model = model
        self.vp_enabled = model is not None
        self.latencies: LatencyModel = (
            model.latencies if model is not None else LatencyModel()
        )
        self.variables: ModelVariables = (
            model.variables if model is not None else ModelVariables()
        )
        self.predictor = predictor or (
            ContextValuePredictor() if self.vp_enabled else None
        )
        self.confidence = confidence or (
            ResettingConfidenceEstimator() if self.vp_enabled else None
        )
        self.update_timing = update_timing
        self.hierarchy = hierarchy or make_paper_hierarchy(
            perfect=config.perfect_caches
        )
        if fetch_engine is not None:
            # Injected front end (the batched engine shares one predicted
            # fetch stream across lanes — see repro.engine.batched).  The
            # injected engine owns whatever branch-prediction state it
            # carries; the simulator builds none of its own.
            self.fetch_engine = fetch_engine
            self.bpred = fetch_engine.branch_predictor
        else:
            self.bpred = None if config.perfect_branches else _make_bpred(config)
            btb = ras = None
            if not config.ideal_branch_targets:
                from repro.frontend.btb import BranchTargetBuffer
                from repro.frontend.ras import ReturnAddressStack

                btb = BranchTargetBuffer()
                ras = ReturnAddressStack()
            self.fetch_engine = FetchEngine(
                trace,
                self.hierarchy.l1i,
                self.bpred,
                model_wrong_path=config.model_wrong_path,
                ideal_branch_targets=config.ideal_branch_targets,
                btb=btb,
                ras=ras,
            )
        self.window = InstructionWindow(config.window_size)
        #: The window's backing ordered dict, accessed directly on the hot
        #: paths (sid → Station lookups happen on every broadcast).
        self._win = self.window._stations
        #: Shared immutable VALID operands, one per architectural register.
        #: A register-file read at dispatch never changes state (ready,
        #: untainted, correct, cycle 0), so all stations can share one
        #: Operand instance per register instead of allocating a fresh one.
        #: Shared always-VALID operand singletons, one per architected
        #: register (never mutated — no producer means no deliver/clear/
        #: reset can reach them).  Pre-built so dispatch reads are a plain
        #: list index.
        self._regfile_operands: list[Operand] = [
            Operand(reg, None) for reg in range(256)
        ]
        self.lsq = LoadStoreQueue(config.window_size)
        self.dports = PortPool(config.dcache_ports)
        self.counters = SimCounters()
        self.log = EventLog(config.log_events)
        #: Observability tracer (see :mod:`repro.obs`).  ``None`` or a
        #: NullTracer keeps every instrumentation site at one falsy check;
        #: a PipelineTracer records lifecycle marks and latency events.
        #: The duck type is deliberately untyped here so the engine never
        #: imports repro.obs (which imports the engine back).
        self.tracer = tracer
        self._obs_on = tracer is not None and tracer.enabled
        if tracer is not None:
            tracer.bind(config)
        if self._obs_on:
            self._trc_mark = tracer.mark
            self._trc_lat = tracer.latency
            self.lsq.on_event = self._obs_lsq_event
        else:
            self._trc_mark = self._trc_lat = None
        #: Cached log flag and latency constants (hot-path attribute
        #: chains collapsed to single loads).
        self._log_on = self.log.enabled
        latencies = self.latencies
        self._lat_exec_eq = latencies.exec_to_equality
        self._lat_eq_verify = latencies.equality_to_verification
        self._lat_eq_inval = latencies.equality_to_invalidation
        self._lat_inval_reissue = latencies.invalidation_to_reissue
        self._lat_verify_branch = latencies.verification_to_branch
        self._lat_verify_mem = latencies.verification_addr_to_mem_access
        #: Resource-release delay applied to speculation-involved
        #: retirements (the base rule — one cycle after completion —
        #: applies otherwise).
        self._lat_release_spec = max(
            latencies.verification_to_free_issue,
            latencies.verification_to_free_retirement,
        )
        self._rb_validate = self.variables.verification in (
            VerificationScheme.RETIREMENT_BASED,
            VerificationScheme.HYBRID,
        )
        #: Non-flattened verification chains equality events through
        #: ``_maybe_chain_equality``; False (the default scheme) lets
        #: ``_clear_taints`` skip that helper entirely.
        scheme = self.variables.verification
        self._chain_equality = scheme is not VerificationScheme.PARALLEL_NETWORK
        #: Scheme dispatch for ``_on_verify``, resolved once per run.
        if scheme is VerificationScheme.PARALLEL_NETWORK:
            self._verify_impl = self._verify_parallel
        elif scheme is VerificationScheme.HIERARCHICAL:
            self._verify_impl = self._verify_hierarchical
        else:  # RETIREMENT_BASED and HYBRID
            self._verify_impl = lambda source, cycle: (
                self._verify_retirement_based(source, cycle, scheme)
            )
        #: VP-gate fast flags: with the default config every register
        #: writer is prediction-eligible and ports are unlimited, so the
        #: per-dispatch gate collapses to two truthy attribute loads.
        self._predict_all = config.predict_classes == "all"
        self._vp_unlimited = not config.vp_ports
        #: Default selection policy fast path: issue sorts native key
        #: tuples instead of calling a key function per candidate.
        self._sel_paper = self.variables.selection is SelectionPolicy.PAPER
        #: Per-call constants, hoisted for the per-cycle stage methods.
        self._wakeup_valid_only = self.variables.wakeup is WakeupPolicy.VALID_ONLY
        self._branch_valid_only = (
            self.variables.branch_resolution is BranchResolution.VALID_ONLY
        )
        self._mem_valid_only = (
            self.variables.memory_resolution is MemoryResolution.VALID_ONLY
        )
        self._issue_width = config.issue_width
        self._dispatch_width = config.dispatch_width
        self._retire_width = config.retire_width
        self._fetch_width = config.fetch_width
        self._dispatch_latency = config.dispatch_latency
        self._model_on = model is not None
        #: Value-prediction hot-path hoists: the update-timing branch flag,
        #: the approximate-equality shift, and bound predictor/confidence
        #: methods (``_predict_value`` runs once per register-writing
        #: dispatch, so each saved attribute chain counts).
        self._vp_delayed = update_timing is not UpdateTiming.IMMEDIATE
        self._eq_shift = config.equality_ignore_low_bits
        if self.predictor is not None:
            self._vp_predict = self.predictor.predict
            self._vp_predict_speculate = self.predictor.predict_speculate
            self._vp_train = self.predictor.train
        else:
            self._vp_predict = self._vp_predict_speculate = None
            self._vp_train = None
        if self.confidence is not None:
            self._conf_confident = self.confidence.confident
            self._conf_update = self.confidence.update
        else:
            self._conf_confident = self._conf_update = None
        #: Fused fast path for the default model stack — exact types only
        #: (a subclass could override any of the methods being inlined),
        #: delayed update timing, exact equality.  When it applies,
        #: ``_predict_value`` is rebound to the fused variant and the
        #: confidence table's internals are hoisted for the retire-side
        #: inline update.  Behaviour is bit-identical either way (the
        #: golden-counter tests run both stacks).
        self._fast_vp = (
            type(self.predictor) is ContextValuePredictor
            and type(self.confidence) is ResettingConfidenceEstimator
            and self._vp_delayed
            and not self._eq_shift
        )
        if self._fast_vp:
            self._fconf_counters = self.confidence._counters
            self._fconf_mask = self.confidence._mask
            self._fconf_max = self.confidence.max_count
            # Predictor table internals, hoisted once so the fused
            # predict path performs no repeated attribute chains (the
            # containers are never rebound by ContextValuePredictor,
            # only mutated in place; ``_next_token`` is an int and must
            # keep living on the predictor).
            vp = self.predictor
            self._fvp_stats = vp.stats
            self._fvp_l1_mask = vp._l1_mask
            self._fvp_entries = vp._entries
            self._fvp_fresh = vp._fresh
            self._fvp_ctx_mask = vp._ctx_mask
            self._fvp_values = vp._values
            self._fvp_folds = vp._value_folds
            self._fvp_spec = vp._spec
            self._fvp_order = vp.order
            # Train-side internals for the retire-side inline (same
            # never-rebound guarantee as the predict-side hoists above).
            self._fvp_counters = vp._counters
            self._fvp_fold16_ok = vp._fold16_ok
            self._fvp_consume = vp._consume_speculative
            self._fvp_walk = vp._walk_live
            self._predict_value = self._predict_value_fast
        else:
            self._fconf_counters = None
            self._fconf_mask = self._fconf_max = 0
            self._fvp_fold16_ok = False
        #: Fused replay path for batched immediate-timing lanes: when the
        #: predictor/confidence pair replays recorded columns (see
        #: repro.vp.replay), every prediction outcome is one packed-byte
        #: read.  Only valid when the recording assumptions hold —
        #: immediate update timing and unlimited predictor ports — which
        #: the batch planner guarantees; otherwise the replay pair still
        #: works through the generic cursor methods.
        rv_codes = getattr(self.predictor, "replay_codes", None)
        if (
            rv_codes is None
            or getattr(self.confidence, "replay_flags", None) is None
            or self._vp_delayed
            or not self._vp_unlimited
        ):
            rv_codes = None
        self._rv_codes = rv_codes
        self._rv_pos = 0

        self.cycle = 0
        self._next_sid = 0
        #: Timing events bucketed by cycle (``cycle -> [entry, ...]``).
        #: Latencies are non-negative, so no event is ever scheduled into
        #: the past and a plain dict beats a heap: scheduling is an append,
        #: the per-cycle poll is one membership test, and within a bucket
        #: append order is exactly the old heap's tiebreak order.  An entry
        #: is ``(kind, station, epoch)`` plus a trailing consumer frontier
        #: for wave transactions.
        self._events: dict[int, list[tuple]] = {}
        #: kind -> bound handler for the point-event kinds (wave and
        #: provisional-invalidate entries carry extra state and keep
        #: their explicit dispatch in ``_process_events``).
        self._event_handlers = (
            self._on_result,
            self._on_equality,
            self._on_verify,
            self._on_invalidate,
            None,
            None,
            self._on_addrgen,
            None,
        )
        #: Fetched instructions awaiting dispatch as raw
        #: ``(rec, wrong_path, mispredicted, ready_cycle)`` tuples — the
        #: :class:`FetchedInstruction` wrapper is public-API only.
        self._fetch_queue: deque[tuple[TraceRecord, bool, bool, int]] = deque()
        self._fetch_limit = config.fetch_width * (config.dispatch_latency + 2)
        #: Last-writer table: register -> sid of the newest station
        #: writing it (-1 = none in flight).  Dispatch resolves sources
        #: with one list index instead of a dict-of-lists lookup; each
        #: station records the previous entry (``prev_writer``) so a
        #: squash can unwind the table youngest-first.  Stale (retired)
        #: sids are harmless — the window lookup filters them.
        self._last_writer: list[int] = [-1] * 256
        #: Closure-walk visit stamp (see ``_consumer_closure``).
        self._stamp = 0
        self._pending_branch: Station | None = None
        #: Loads whose address generation finished and whose memory access
        #: is pending (valid-address gate / prior stores / ports), as
        #: (station, epoch) pairs retried every cycle.
        self._waiting_access: list[tuple[Station, int]] = []
        self._last_retire_cycle = 0
        #: Cycle before which no retirement can succeed: set when the head
        #: is complete and merely waiting out its release delay (its
        #: finality inputs are frozen at that point), letting the run loop
        #: skip ``_retire`` calls entirely.  Never set under
        #: retirement-based validation, which must run every cycle.
        self._retire_gate = 0
        #: Bitmask of sources resolved correct, awaiting retirement-based
        #: propagation (RETIREMENT_BASED / HYBRID verification only).
        self._retire_verified = 0
        #: Recycling allocator for speculation-source taint bits.
        self._taint_bits = TaintBitAllocator()
        #: Event-driven wakeup state: the ready pool holds stations whose
        #: operands were usable at last look (issue re-checks the full
        #: predicate); the wake heap holds (cycle, tiebreak, station,
        #: epoch) entries for stations waiting on a known future cycle.
        self._ready_pool: dict[int, Station] = {}
        self._wake_heap: list[tuple[int, int, Station, int]] = []
        self._wake_counter = 0
        #: (cycle, retired, window_occupancy) samples when
        #: ``config.sample_interval`` > 0 (see repro.viz).
        self.samples: list[tuple[int, int, int]] = []
        self._vp_port_cycle = -1
        self._vp_ports_used = 0

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------

    def _schedule(self, cycle: int, kind: int, station: Station) -> None:
        bucket = self._events.get(cycle)
        if bucket is None:
            bucket = self._events[cycle] = []
        bucket.append((kind, station, station.epoch))

    def _schedule_wave(
        self, cycle: int, kind: int, source: Station, wave: list[int]
    ) -> None:
        bucket = self._events.get(cycle)
        if bucket is None:
            bucket = self._events[cycle] = []
        bucket.append((kind, source, source.epoch, wave))

    # -- wakeup plumbing ------------------------------------------------

    def _mark_wakeup(self, station: Station) -> None:
        """Re-arm ``station`` for issue consideration after an operand or
        pipeline-state change (cheap and idempotent; the issue stage
        re-evaluates the full wakeup predicate)."""
        if not station.issued and not station.retired:
            self._ready_pool[station.sid] = station

    def _gate_wakeup(self, cycle: int, station: Station) -> None:
        """Park ``station`` until ``cycle`` (a known future issue gate)."""
        self._wake_counter += 1
        _heappush(
            self._wake_heap, (cycle, self._wake_counter, station, station.epoch)
        )

    # -- observability plumbing (all callers guard on self._obs_on) ------

    def _obs_lsq_event(self, sid: int, what: str) -> None:
        """LSQ ``on_event`` callback: address/forward activity marks."""
        station = self._win.get(sid)
        seq = station.rec.seq if station is not None else -1
        self._trc_mark(self.cycle, seq, sid, "lsq", what)

    def _obs_issue(self, station: Station, cycle: int) -> None:
        """Issue-side recording: the issue/reissue mark, plus the
        Invalidation–Reissue and Verification–Branch latency events this
        issue closes."""
        rec = station.rec
        op = rec.opcode.mnemonic
        if station.exec_count > 0:
            self._trc_mark(cycle, rec.seq, station.sid, "reissue")
            if station.invalidate_cycle >= 0:
                self._trc_lat(
                    LatencyEventKind.INVALIDATION_REISSUE,
                    rec.seq,
                    station.sid,
                    station.invalidate_cycle,
                    cycle,
                    op,
                )
                station.invalidate_cycle = -1
        else:
            self._trc_mark(cycle, rec.seq, station.sid, "issue")
        if station.is_ctrl:
            start = -1
            for operand in station.operands:
                if operand.via_network and operand.valid_cycle > start:
                    start = operand.valid_cycle
            if start >= 0:
                self._trc_lat(
                    LatencyEventKind.VERIFICATION_BRANCH,
                    rec.seq,
                    station.sid,
                    start,
                    cycle,
                    op,
                )

    def _obs_mem_access(self, station: Station, cycle: int) -> None:
        """Memory-access recording: the access mark, plus the
        Verification-Address–Memory-Access latency event when the access
        was gated on a network-verified operand."""
        rec = station.rec
        self._trc_mark(cycle, rec.seq, station.sid, "mem-access")
        start = -1
        for operand in station.operands:
            if operand.via_network and operand.valid_cycle > start:
                start = operand.valid_cycle
        if start >= 0:
            self._trc_lat(
                LatencyEventKind.VERIFICATION_ADDR_MEM_ACCESS,
                rec.seq,
                station.sid,
                start,
                cycle,
                rec.opcode.mnemonic,
            )

    def _obs_retire(self, station: Station, cycle: int, final: int, spec: bool) -> None:
        """Retire-side recording: the retire mark, plus the unified
        Verification–Free-Issue/Retirement-Resource release window when
        speculation was involved (the engine releases both resources with
        one ``max(free_issue, free_retirement)`` delay, so both events
        share the measured span)."""
        rec = station.rec
        self._trc_mark(cycle, rec.seq, station.sid, "retire")
        if spec and self._model_on:
            op = rec.opcode.mnemonic
            self._trc_lat(
                LatencyEventKind.VERIFICATION_FREE_ISSUE,
                rec.seq, station.sid, final, cycle, op,
            )
            self._trc_lat(
                LatencyEventKind.VERIFICATION_FREE_RETIREMENT,
                rec.seq, station.sid, final, cycle, op,
            )

    def _obs_invalidated(self, station: Station, cycle: int) -> None:
        """A consumer was nullified by an invalidation transaction."""
        station.invalidate_cycle = cycle
        self._trc_mark(
            cycle, station.rec.seq, station.sid, "invalidate", "nullified"
        )

    # -- taint-bit plumbing ---------------------------------------------

    def _live_taint_union(self) -> int:
        """Union of every reachable taint mask: window state plus the
        sources of still-pending transactions (waves may outlive their
        source's retirement)."""
        union = 0
        for station in self.window:
            union |= station.out_taints | station.exec_taints
            for operand in station.operands:
                union |= operand.taints
        for bucket in self._events.values():
            for entry in bucket:
                source = entry[1]
                union |= (
                    source.taint_mask | source.out_taints | source.exec_taints
                )
                for operand in source.operands:
                    union |= operand.taints
        return union

    def _alloc_taint_mask(self, station: Station) -> int:
        """Assign ``station`` its speculation-source bit, sweeping (and as
        a last resort growing) the allocator when it runs dry."""
        mask = self._taint_bits.alloc(station)
        if not mask:
            freed = self._taint_bits.sweep(self._live_taint_union())
            # A freed bit must stop counting as retirement-verified, or
            # its next owner would be born pre-verified.
            self._retire_verified &= ~freed
            mask = self._taint_bits.alloc(station)
            if not mask:
                self._taint_bits.grow()
                mask = self._taint_bits.alloc(station)
        return mask

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimCounters:
        """Simulate until every correct-path instruction has retired.

        Each phase is guarded by a cheap no-work test (its own first
        early-out, hoisted) so quiet cycles cost a handful of branch
        checks instead of five function calls.
        """
        total = len(self.trace)
        if total == 0:
            return self.counters
        counters = self.counters
        win = self._win
        events = self._events
        pool = self._ready_pool
        wake_heap = self._wake_heap
        rb_validate = self._rb_validate
        fetch_queue = self._fetch_queue
        fetch_engine = self.fetch_engine
        trace_len = len(fetch_engine.trace)
        fetch_limit = self._fetch_limit
        max_cycles = self.config.max_cycles
        sample_interval = self.config.sample_interval
        cycle = self.cycle
        # Only _retire advances the gate, so run() mirrors it in a local
        # and refreshes after each _retire call.
        retire_gate = self._retire_gate
        # Stations and operands form an acyclic graph (no owner
        # backrefs), so everything the loop drops is reclaimed by
        # reference counting; pausing the cycle detector for the run
        # removes its periodic full-heap sweeps from the hot loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # Per-cycle counters accumulate in locals and flush once — an
        # attribute read-modify-write per cycle is pure loop overhead.
        occupancy_sum = 0
        stall_fetch_empty = 0
        try:
            while counters.retired < total:
                if cycle > max_cycles:
                    raise SimulationError(
                        f"exceeded {max_cycles} cycles with "
                        f"{counters.retired}/{total} retired — deadlock?"
                    )
                self.cycle = cycle
                if win and cycle >= retire_gate:
                    # The _retire head early-out, inlined: most cycles the
                    # head is wrong-path or still in flight, which three
                    # attribute reads establish without a call (rb schemes
                    # always call — their validation runs every cycle).
                    head = next(iter(win.values()))
                    if rb_validate or not (
                        head.wrong_path or not head.executed or head.executing
                    ):
                        self._retire()
                        retire_gate = self._retire_gate
                if cycle in events:
                    self._process_events()
                if pool or self._waiting_access or (
                    wake_heap and wake_heap[0][0] <= cycle
                ):
                    self._issue()
                if fetch_queue:
                    # The queue is FIFO on ready cycles, so a not-yet-ready
                    # head means dispatch would break on its first
                    # iteration without touching a counter.
                    if fetch_queue[0][3] <= cycle:
                        self._dispatch()
                elif (
                    fetch_engine._index < trace_len
                    or fetch_engine._wrong_path_gen is not None
                ):
                    stall_fetch_empty += 1
                if cycle >= fetch_engine._stall_until and len(fetch_queue) < fetch_limit:
                    self._fetch()
                occupancy_sum += len(win)
                if sample_interval and cycle % sample_interval == 0:
                    self.samples.append((cycle, counters.retired, len(win)))
                cycle += 1
        finally:
            if gc_was_enabled:
                gc.enable()
            counters.window_occupancy_sum += occupancy_sum
            counters.stall_fetch_empty += stall_fetch_empty
        self.cycle = cycle
        counters.cycles = self._last_retire_cycle + 1
        counters.window_peak = self.window.peak_occupancy
        return counters

    # ------------------------------------------------------------------
    # fetch & dispatch
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        room = self._fetch_limit - len(self._fetch_queue)
        if room <= 0:
            return
        cycle = self.cycle
        batch = self.fetch_engine.fetch_raw(
            cycle, min(self._fetch_width, room), cycle + self._dispatch_latency
        )
        if not batch:
            return
        # fetch_raw already stamped the dispatch-ready cycle into each
        # tuple, so the whole batch lands in the queue in one C-level
        # extend.
        self._fetch_queue.extend(batch)
        log_on = self._log_on
        obs_on = self._obs_on
        if log_on or obs_on:
            for rec, wrong_path, __, __ready in batch:
                if log_on and not wrong_path:
                    self.log.emit(rec.seq, SpecEventKind.FETCH, cycle)
                if obs_on and not wrong_path:
                    self._trc_mark(cycle, rec.seq, -1, "fetch")

    def _dispatch(self) -> None:
        """Dispatch up to ``dispatch_width`` instructions into the window
        (the seed's per-instruction ``_dispatch_one`` body is inlined with
        every ``self`` lookup hoisted out of the loop)."""
        dispatched = 0
        fetch_queue = self._fetch_queue
        win = self._win
        win_get = win.get
        capacity = self.window.capacity
        counters = self.counters
        cycle = self.cycle
        width = self._dispatch_width
        last_writer = self._last_writer
        regfile_operands = self._regfile_operands
        lsq = self.lsq
        lsq_entries = lsq._entries  # lsq.full, inlined below
        lsq_capacity = lsq.capacity
        pool = self._ready_pool
        window = self.window
        log_on = self._log_on
        obs_on = self._obs_on
        vp_on = self.vp_enabled
        predict_all = self._predict_all
        vp_unlimited = self._vp_unlimited
        next_sid = self._next_sid
        new_station = Station.__new__
        new_operand = Operand.__new__
        peak = window.peak_occupancy
        # Under paper selection (totally ordered candidates) a station
        # with an un-ready operand never needs to enter the ready pool at
        # dispatch: it cannot pass the wakeup predicate until a producer
        # broadcast arrives, and _broadcast re-pools it at that moment.
        # Skipping the insert avoids the pool round-trip (insert, predicate
        # walk, park-delete) for the common in-flight-dependency case.
        # Order-sensitive selection policies keep the unconditional insert
        # so pool iteration order stays byte-identical.
        pool_all = not self._sel_paper
        # Fused value-prediction inline (see _predict_value_fast): with the
        # default stack active, the whole predict+confidence body runs here
        # with every table hoisted to a local — zero calls per prediction.
        fast_vp = vp_on and self._fast_vp
        if fast_vp:
            predictor = self.predictor
            fvp_stats = self._fvp_stats
            fvp_l1_mask = self._fvp_l1_mask
            fvp_entries = self._fvp_entries
            fvp_fresh = self._fvp_fresh
            fvp_ctx_mask = self._fvp_ctx_mask
            fvp_values = self._fvp_values
            fvp_folds = self._fvp_folds
            fvp_spec = self._fvp_spec
            fvp_order = self._fvp_order
            fconf_counters = self._fconf_counters
            fconf_mask = self._fconf_mask
            fconf_max = self._fconf_max
            alloc_taint_mask = self._alloc_taint_mask
            vp_shift = _VP_PC_SHIFT
        # Fused replay path (batched lanes): the whole prediction outcome
        # is a packed byte — bit 0 confident, bit 1 correct, bit 2
        # approximate-equality rescue (see repro.vp.replay).
        replay_vp = vp_on and self._rv_codes is not None
        if replay_vp:
            rv_codes = self._rv_codes
            rv_pos = self._rv_pos
            alloc_taint_mask = self._alloc_taint_mask
        # Per-instruction counters accumulate in locals and flush once
        # after the loop (an attribute RMW per instruction is overhead).
        n_wrong = n_branches = n_mispred = n_loads = n_stores = 0
        n_lookups = n_pred = n_pred_correct = n_approx = 0
        n_ch = n_cl = n_ih = n_il = n_specd = n_misspec = 0
        while dispatched < width:
            if not fetch_queue:
                if dispatched == 0 and not self.fetch_engine.exhausted:
                    counters.stall_fetch_empty += 1
                break
            rec, wrong_path, mispredicted, ready = fetch_queue[0]
            if ready > cycle:
                break
            if len(win) >= capacity:
                if dispatched == 0:
                    counters.stall_window_full += 1
                break
            is_memory = rec.is_memory
            if (
                is_memory
                and not wrong_path
                and len(lsq_entries) >= lsq_capacity
            ):
                if dispatched == 0:
                    counters.stall_lsq_full += 1
                break
            fetch_queue.popleft()
            sid = next_sid
            next_sid += 1
            # Station.__init__, inlined (kept in lockstep with
            # window/station.py — the golden-counter tests pin the
            # behaviour): constructing ~1 station per instruction through
            # a Python-level __init__ frame is pure dispatch overhead.
            station = new_station(Station)
            station.sid = sid
            station.rec = rec
            station.wrong_path = wrong_path
            operands = station.operands = []
            station.consumers = []
            station.prev_writer = -1
            station.stamp = 0
            station.predicted = False
            station.predicted_confident = False
            station.pred_correct = False
            station.prediction_resolved = False
            station.prediction_muted = False
            station.pending_train = None
            station.spec_equal = False
            station.issued = False
            station.executing = False
            station.executed = False
            station.exec_valid_inputs = False
            station.exec_count = 0
            station.out_ready = False
            station.out_taints = 0
            station.out_correct = False
            station.exec_taints = 0
            station.taint_mask = 0
            station.out_valid_cycle = 0
            station.out_via_network = False
            station.dispatch_cycle = cycle
            station.issue_cycle = 0
            station.result_cycle = 0
            station.equality_cycle = 0
            station.verify_cycle = 0
            station.min_issue_cycle = cycle + 1
            station.epoch = 0
            station.sel_priority = rec.sel_priority
            station.is_ctrl = rec.is_ctrl
            station.branch_mispredicted = False
            station.mem_done = False
            station.retired = False
            station.misspeculations = 0
            station.in_dirty = True
            station.in_usable = True
            station.in_taint_union = 0
            station.in_correct = True
            station.in_spec = False
            station.wakeup_cycle = -1
            station.invalidate_cycle = -1
            operands_append = operands.append
            pool_ready = True
            op_index = -1
            for reg in rec.src_regs:
                op_index += 1
                producer_sid = last_writer[reg]
                producer = None
                if producer_sid >= 0:
                    producer = win_get(producer_sid)
                    if producer is not None and producer.retired:
                        producer = None
                if producer is None:
                    # Architected register-file read: permanently VALID —
                    # the shared pre-built per-register singleton stands in.
                    operands_append(regfile_operands[reg])
                    continue
                # Operand.__init__, inlined (same lockstep note).
                operand = new_operand(Operand)
                operand.reg = reg
                operand.producer_sid = producer_sid
                operand.from_prediction = False
                operand.valid_cycle = 0
                operand.via_network = False
                producer.consumers.append((station, op_index))
                if producer.out_ready:
                    # Dispatch-time capture reads the producer's RS
                    # field directly — no network transaction involved,
                    # so no Verification–Branch/Memory surcharge.
                    operand.ready = True
                    taints = operand.taints = producer.out_taints
                    operand.correct = producer.out_correct
                    operand.from_prediction = (
                        producer.predicted
                        and not producer.prediction_resolved
                        and not producer.prediction_muted
                    )
                    if not taints:
                        operand.valid_cycle = cycle
                else:
                    operand.ready = False
                    operand.taints = 0
                    operand.correct = False
                    pool_ready = False
                operands_append(operand)

            writes = rec.writes_register
            if (
                vp_on
                and writes
                and not wrong_path
                and (predict_all or self._prediction_eligible(rec))
                and (vp_unlimited or self._vp_port_available())
            ):
                if fast_vp:
                    # _predict_value_fast, inlined (kept in lockstep; the
                    # golden-counter tests pin bit-identical behaviour).
                    actual = rec.dest_value
                    pc = rec.pc
                    n_lookups += 1
                    index = (pc >> vp_shift) & fvp_l1_mask
                    entry = fvp_entries.get(index)
                    if entry is None:
                        entry = fvp_entries[index] = fvp_fresh.copy()
                    unmasked = entry[0]
                    ctx = unmasked & fvp_ctx_mask
                    predicted = fvp_values[ctx]
                    fold = fvp_folds[ctx]
                    token = predictor._next_token
                    predictor._next_token = token + 1
                    spec = fvp_spec.get(index)
                    if spec is None:
                        spec = fvp_spec[index] = []
                    depth = len(spec)
                    if depth < fvp_order:
                        # Entry layout: [live, committed, head, folds…,
                        # values…].
                        oldest = entry[3 + (entry[2] + depth) % fvp_order]
                    else:
                        oldest = spec[depth - fvp_order][2]
                    entry[0] = (
                        ((unmasked ^ oldest) >> 1)
                        ^ (fold << (fvp_order - 1))
                    )
                    spec.append((token, predicted, fold))

                    pred_correct = predicted == actual
                    confident = (
                        fconf_counters[(pc >> vp_shift) & fconf_mask]
                        == fconf_max
                    )
                    n_pred += 1
                    if pred_correct:
                        n_pred_correct += 1
                        if confident:
                            n_ch += 1
                        else:
                            n_cl += 1
                    elif confident:
                        n_ih += 1
                    else:
                        n_il += 1
                    station.pending_train = (
                        pc, actual, pred_correct, token, rec.dest_fold,
                    )
                    if confident:
                        station.predicted = True
                        station.predicted_confident = True
                        station.pred_correct = pred_correct
                        station.out_ready = True
                        station.taint_mask = alloc_taint_mask(station)
                        station.out_taints = station.taint_mask
                        station.out_correct = pred_correct
                        n_specd += 1
                        if not pred_correct:
                            n_misspec += 1
                        if log_on:
                            self.log.emit(
                                rec.seq, SpecEventKind.PREDICT, cycle
                            )
                        if obs_on:
                            self._trc_mark(
                                cycle, rec.seq, sid, "predict",
                                "correct" if pred_correct else "incorrect",
                            )
                elif replay_vp:
                    # _predict_value with replay columns, fused: the
                    # recording pass already ran the real predictor and
                    # confidence estimator, so one packed byte carries
                    # the outcome (kept in lockstep with the generic
                    # path; the golden bit-identity suite pins it).
                    code = rv_codes[rv_pos]
                    rv_pos += 1
                    n_pred += 1
                    if code & 2:
                        n_pred_correct += 1
                        if code & 4:
                            n_approx += 1
                        if code & 1:
                            n_ch += 1
                        else:
                            n_cl += 1
                    elif code & 1:
                        n_ih += 1
                    else:
                        n_il += 1
                    if code & 1:
                        pred_correct = (code & 2) != 0
                        station.predicted = True
                        station.predicted_confident = True
                        station.pred_correct = pred_correct
                        station.out_ready = True
                        station.taint_mask = alloc_taint_mask(station)
                        station.out_taints = station.taint_mask
                        station.out_correct = pred_correct
                        n_specd += 1
                        if not pred_correct:
                            n_misspec += 1
                        if log_on:
                            self.log.emit(
                                rec.seq, SpecEventKind.PREDICT, cycle
                            )
                        if obs_on:
                            self._trc_mark(
                                cycle, rec.seq, sid, "predict",
                                "correct" if pred_correct else "incorrect",
                            )
                else:
                    self._predict_value(station)

            if rec.is_branch and not wrong_path:
                n_branches += 1
            if mispredicted:
                station.branch_mispredicted = True
                self._pending_branch = station
                n_mispred += 1
            if is_memory and not wrong_path:
                is_store = rec.is_store
                lsq.allocate(sid, is_store)
                if is_store:
                    n_stores += 1
                else:
                    n_loads += 1
            if writes:
                dest = rec.dest_reg
                station.prev_writer = last_writer[dest]
                last_writer[dest] = sid

            # InstructionWindow.insert, inlined (the full/ordering checks
            # are guaranteed by the window gate above and the monotonic
            # sid).
            win[sid] = station
            occ = len(win)
            if occ > peak:
                peak = occ
            if pool_ready or pool_all:
                pool[sid] = station
            if wrong_path:
                n_wrong += 1
            if log_on and not wrong_path:
                self.log.emit(rec.seq, SpecEventKind.DISPATCH, cycle)
            if obs_on and not wrong_path:
                self._trc_mark(cycle, rec.seq, sid, "dispatch")
            dispatched += 1
        self._next_sid = next_sid
        window.peak_occupancy = peak
        if dispatched:
            counters.dispatched += dispatched
            counters.dispatched_wrong_path += n_wrong
            counters.branches += n_branches
            counters.branch_mispredictions += n_mispred
            counters.loads += n_loads
            counters.stores += n_stores
        if n_lookups:
            fvp_stats.lookups += n_lookups
            counters.predictions += n_pred
            counters.predictions_correct += n_pred_correct
            counters.correct_high += n_ch
            counters.correct_low += n_cl
            counters.incorrect_high += n_ih
            counters.incorrect_low += n_il
            counters.speculated += n_specd
            counters.misspeculations += n_misspec
        elif replay_vp:
            self._rv_pos = rv_pos
            if n_pred:
                counters.predictions += n_pred
                counters.predictions_correct += n_pred_correct
                counters.correct_high += n_ch
                counters.correct_low += n_cl
                counters.incorrect_high += n_ih
                counters.incorrect_low += n_il
                counters.speculated += n_specd
                counters.misspeculations += n_misspec
                if n_approx:
                    counters.approximate_matches += n_approx

    _LONG_LATENCY_CLASSES = frozenset(
        (
            OpClass.LOAD,
            OpClass.IMUL,
            OpClass.IDIV,
            OpClass.FADD,
            OpClass.FMUL,
            OpClass.FDIV,
        )
    )

    def _prediction_eligible(self, rec: TraceRecord) -> bool:
        """Selective value prediction (Calder et al. [8]): restrict which
        instruction classes are predicted at all."""
        policy = self.config.predict_classes
        if policy == "all":
            return True
        if policy == "loads":
            return rec.is_load
        if policy == "long-latency":
            return rec.opclass in self._LONG_LATENCY_CLASSES
        return rec.opclass is OpClass.IALU  # "alu"

    def _vp_port_available(self) -> bool:
        """Grant one of the per-cycle predictor ports (0 = unlimited)."""
        if not self.config.vp_ports:
            return True
        if self._vp_port_cycle != self.cycle:
            self._vp_port_cycle = self.cycle
            self._vp_ports_used = 0
        if self._vp_ports_used < self.config.vp_ports:
            self._vp_ports_used += 1
            return True
        return False

    def _predict_value(self, station: Station) -> None:
        rec = station.rec
        actual = rec.dest_value
        delayed = self._vp_delayed
        if delayed:
            predicted, token = self._vp_predict_speculate(rec.pc)
        else:
            predicted = self._vp_predict(rec.pc)
        pred_correct = predicted == actual
        if not pred_correct and self._eq_shift:
            # Approximate equality (Section 3.3 extension): the comparators
            # ignore the low bits, accepting near-miss predictions.  Timing
            # treats the prediction as correct; architectural results are
            # unaffected (the trace carries the true value).
            shift = self._eq_shift
            if (predicted >> shift) == ((actual or 0) >> shift):
                pred_correct = True
                self.counters.approximate_matches += 1
        confident = self._conf_confident(rec.pc, pred_correct)

        counters = self.counters
        counters.predictions += 1
        if pred_correct:
            counters.predictions_correct += 1
            if confident:
                counters.correct_high += 1
            else:
                counters.correct_low += 1
        elif confident:
            counters.incorrect_high += 1
        else:
            counters.incorrect_low += 1

        if delayed:
            station.pending_train = (
                rec.pc, actual, pred_correct, token, rec.dest_fold,
            )
        else:
            self._vp_train(rec.pc, actual, None, rec.dest_fold)
            self._conf_update(rec.pc, pred_correct)

        if confident:
            station.predicted = True
            station.predicted_confident = True
            station.pred_correct = pred_correct
            station.out_ready = True
            station.taint_mask = self._alloc_taint_mask(station)
            station.out_taints = station.taint_mask
            station.out_correct = pred_correct
            counters.speculated += 1
            if not pred_correct:
                counters.misspeculations += 1
            if self._log_on:
                self.log.emit(rec.seq, SpecEventKind.PREDICT, self.cycle)
            if self._obs_on:
                self._trc_mark(
                    self.cycle, rec.seq, station.sid, "predict",
                    "correct" if pred_correct else "incorrect",
                )

    def _predict_value_fast(self, station: Station) -> None:
        """``_predict_value`` for the default stack, with the predictor's
        fused predict+speculate and the confidence probe inlined so one
        prediction performs zero intermediate calls (see the ``_fast_vp``
        selection in ``__init__``; bit-identical to the generic path)."""
        rec = station.rec
        actual = rec.dest_value
        pc = rec.pc
        vp = self.predictor
        # -- ContextValuePredictor.predict_speculate, inlined ------------
        self._fvp_stats.lookups += 1
        index = (pc >> _VP_PC_SHIFT) & self._fvp_l1_mask
        entries = self._fvp_entries
        entry = entries.get(index)
        if entry is None:
            entry = entries[index] = self._fvp_fresh.copy()
        unmasked = entry[0]
        ctx = unmasked & self._fvp_ctx_mask
        predicted = self._fvp_values[ctx]
        fold = self._fvp_folds[ctx]
        token = vp._next_token
        vp._next_token = token + 1
        spec = self._fvp_spec.get(index)
        if spec is None:
            spec = self._fvp_spec[index] = []
        order = self._fvp_order
        depth = len(spec)
        if depth < order:
            # Entry layout: [live, committed, head, folds…, values…].
            oldest = entry[3 + (entry[2] + depth) % order]
        else:
            oldest = spec[depth - order][2]
        entry[0] = ((unmasked ^ oldest) >> 1) ^ (fold << (order - 1))
        spec.append((token, predicted, fold))

        pred_correct = predicted == actual
        # -- ResettingConfidenceEstimator.confident, inlined -------------
        confident = (
            self._fconf_counters[(pc >> _VP_PC_SHIFT) & self._fconf_mask]
            == self._fconf_max
        )

        counters = self.counters
        counters.predictions += 1
        if pred_correct:
            counters.predictions_correct += 1
            if confident:
                counters.correct_high += 1
            else:
                counters.correct_low += 1
        elif confident:
            counters.incorrect_high += 1
        else:
            counters.incorrect_low += 1

        station.pending_train = (
            pc, actual, pred_correct, token, rec.dest_fold,
        )

        if confident:
            station.predicted = True
            station.predicted_confident = True
            station.pred_correct = pred_correct
            station.out_ready = True
            station.taint_mask = self._alloc_taint_mask(station)
            station.out_taints = station.taint_mask
            station.out_correct = pred_correct
            counters.speculated += 1
            if not pred_correct:
                counters.misspeculations += 1
            if self._log_on:
                self.log.emit(rec.seq, SpecEventKind.PREDICT, self.cycle)
            if self._obs_on:
                self._trc_mark(
                    self.cycle, rec.seq, station.sid, "predict",
                    "correct" if pred_correct else "incorrect",
                )

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def _branch_ready_cycle(self, station: Station) -> int:
        """Earliest cycle a valid-operand branch may issue, honouring the
        Verification–Branch latency for network-verified operands."""
        extra = self.latencies.verification_to_branch
        ready = station.min_issue_cycle
        for operand in station.operands:
            gate = operand.valid_cycle + (extra if operand.via_network else 0)
            if gate > ready:
                ready = gate
        return ready

    def _memory_ready_cycle(self, station: Station) -> int:
        """Earliest issue cycle honouring Verification-Address–Memory-Access."""
        extra = self.latencies.verification_addr_to_mem_access
        ready = station.min_issue_cycle
        for operand in station.operands:
            gate = operand.valid_cycle + (extra if operand.via_network else 0)
            if gate > ready:
                ready = gate
        return ready

    def _issue(self) -> None:
        """Event-driven wakeup + selection.

        The ready pool and wake heap together hold every station that
        could possibly pass the wakeup predicate this cycle (dispatch,
        broadcast, taint-clear and nullify paths re-arm stations); issue
        evaluates the exact same predicate the full-window scan used to,
        so the candidate set — and therefore every simulated cycle — is
        identical, just computed over O(ready) stations.
        """
        if self._waiting_access:
            self._drain_waiting_access()
        cycle = self.cycle
        pool = self._ready_pool
        heap = self._wake_heap
        while heap and heap[0][0] <= cycle:
            __, __, station, epoch = _heappop(heap)
            if station.epoch == epoch and not station.issued and not station.retired:
                pool[station.sid] = station
        if not pool:
            return
        valid_only = self._wakeup_valid_only
        branch_valid_only = self._branch_valid_only
        obs_on = self._obs_on
        width = self._issue_width
        # Verification–Branch gate, inlined: with the latency at zero
        # (base/great models) no operand term can exceed the current cycle
        # (valid_cycle is always a past or present cycle), so the gate
        # reduces to min_issue_cycle and the operand walk is skipped.
        lat_vb = self._lat_verify_branch
        candidates: list = []
        if self._sel_paper:
            # Pool order is irrelevant under paper selection (the
            # candidate sort key is total), so the walk rebuilds the pool
            # in place: parking an entry is simply not re-adding it, which
            # replaces a list append plus a keyed delete per parked
            # station.  Selected candidates were never re-added; overflow
            # candidates go back at the end.
            stations = list(pool.values())
            pool.clear()
            for station in stations:
                if station.issued or station.retired:
                    continue
                if station.in_dirty:
                    # Station.refresh_inputs, inlined (kept in lockstep
                    # with window/station.py): the wakeup walk is the
                    # hottest consumer of the cached operand summary.
                    usable = correct = True
                    union = 0
                    spec = False
                    for op in station.operands:
                        if op.ready:
                            t = op.taints
                            if t:
                                union |= t
                                spec = True
                            if not op.correct:
                                correct = False
                        else:
                            usable = False
                            correct = False
                    station.in_usable = usable
                    station.in_taint_union = union
                    station.in_correct = correct
                    station.in_spec = spec
                    station.in_dirty = False
                if not station.in_usable:
                    # Waiting on a producer broadcast; deliver() re-arms.
                    continue
                tainted = station.in_taint_union
                is_ctrl = station.is_ctrl
                if tainted and (valid_only or (is_ctrl and branch_valid_only)):
                    # Waiting on verification; taint clears re-arm.
                    continue
                gate = station.min_issue_cycle
                if lat_vb and is_ctrl and not tainted:
                    # _branch_ready_cycle, inlined (only network-verified
                    # operands can push the gate past the current cycle).
                    for operand in station.operands:
                        if operand.via_network:
                            g = operand.valid_cycle + lat_vb
                            if g > gate:
                                gate = g
                if gate > cycle:
                    self._gate_wakeup(gate, station)
                    continue
                if obs_on and station.wakeup_cycle < 0:
                    station.wakeup_cycle = cycle
                    self._trc_mark(
                        cycle, station.rec.seq, station.sid, "wakeup",
                        operand_state_labels(station),
                    )
                # Native-comparing key tuple (sid is unique, so the
                # trailing station is never compared) — same total order
                # as selection_key without a key-function call per sort
                # comparison.
                candidates.append(
                    (station.sel_priority, station.in_spec, station.sid, station)
                )
            if not candidates:
                return
            candidates.sort()
            for entry in candidates[width:]:
                overflow = entry[3]
                pool[overflow.sid] = overflow
            del candidates[width:]
            # _start_execution, inlined for the selected group: the
            # per-station hoists (events dict, counters, log gates) are
            # shared across the whole issue group and the issued/
            # speculative/reissue counters flush once.
            events = self._events
            counters = self.counters
            log_on = self._log_on
            n_spec = 0
            n_reissue = 0
            for entry in candidates:
                station = entry[3]
                rec = station.rec
                station.issued = True
                station.executing = True
                station.issue_cycle = cycle
                if station.in_dirty:
                    station.refresh_inputs()
                if station.in_spec:
                    n_spec += 1
                exec_count = station.exec_count
                if exec_count > 0:
                    n_reissue += 1
                when = cycle + rec.exec_latency
                bucket = events.get(when)
                if bucket is None:
                    bucket = events[when] = []
                if rec.is_load:
                    bucket.append((_ADDRGEN, station, station.epoch))
                else:
                    bucket.append((_RESULT, station, station.epoch))
                if log_on and not station.wrong_path:
                    self.log.emit(
                        rec.seq,
                        SpecEventKind.REISSUE if exec_count else SpecEventKind.ISSUE,
                        cycle,
                    )
                if obs_on and not station.wrong_path:
                    self._obs_issue(station, cycle)
            counters.issued += len(candidates)
            if n_spec:
                counters.issued_speculative += n_spec
            if n_reissue:
                counters.reissues += n_reissue
            return
        parked: list[int] = []
        for sid, station in pool.items():
            if station.issued or station.retired:
                parked.append(sid)
                continue
            if station.in_dirty:
                station.refresh_inputs()
            if not station.in_usable:
                # Waiting on a producer broadcast; deliver() re-arms.
                parked.append(sid)
                continue
            tainted = station.in_taint_union
            is_ctrl = station.is_ctrl
            if tainted and (valid_only or (is_ctrl and branch_valid_only)):
                # Waiting on verification; taint clears re-arm.
                parked.append(sid)
                continue
            gate = station.min_issue_cycle
            if lat_vb and is_ctrl and not tainted:
                # _branch_ready_cycle, inlined (same reduction as above).
                for operand in station.operands:
                    if operand.via_network:
                        g = operand.valid_cycle + lat_vb
                        if g > gate:
                            gate = g
            if gate > cycle:
                parked.append(sid)
                self._gate_wakeup(gate, station)
                continue
            if obs_on and station.wakeup_cycle < 0:
                station.wakeup_cycle = cycle
                self._trc_mark(
                    cycle, station.rec.seq, sid, "wakeup",
                    operand_state_labels(station),
                )
            candidates.append(station)
        for sid in parked:
            del pool[sid]
        if not candidates:
            return
        for station in select(candidates, width, self.variables):
            self._start_execution(station)
            del pool[station.sid]

    def _drain_waiting_access(self) -> None:
        """Retry pending load accesses (they issued already; only cache
        ports, the valid-address gate and store disambiguation hold them)."""
        if not self._waiting_access:
            return
        still_waiting: list[tuple[Station, int]] = []
        for station, epoch in self._waiting_access:
            if station.epoch != epoch or station.retired:
                continue
            if not self._try_load_access(station):
                still_waiting.append((station, epoch))
        self._waiting_access = still_waiting

    def _try_load_access(self, station: Station) -> bool:
        """Attempt the memory-access half of a load; True when started."""
        rec = station.rec
        cycle = self.cycle
        if self._mem_valid_only:
            # station.inputs_valid, decomposed (property call avoided on
            # the per-cycle load-retry path).
            if station.in_dirty:
                station.refresh_inputs()
            if not station.in_usable or station.in_taint_union:
                return False
            # _memory_ready_cycle, inlined and decomposed (cycle < max(...)
            # is a disjunction; zero-latency terms can never fire because
            # valid_cycle is always a past or present cycle).
            if cycle < station.min_issue_cycle:
                return False
            lat_vm = self._lat_verify_mem
            if lat_vm:
                for operand in station.operands:
                    if (
                        operand.via_network
                        and cycle < operand.valid_cycle + lat_vm
                    ):
                        return False
        elif not station.inputs_usable:
            return False
        if not station.wrong_path:
            if not self.lsq.prior_store_addresses_known(station.sid):
                return False
            if self.lsq.overlapping_older_store(
                station.sid, rec.mem_addr, rec.mem_size
            ):
                return False
        if not self.dports.try_acquire(cycle):
            self.counters.dcache_port_conflicts += 1
            return False
        when = cycle + self._load_access_latency(station)
        events = self._events
        bucket = events.get(when)
        if bucket is None:
            bucket = events[when] = []
        bucket.append((_RESULT, station, station.epoch))
        if self._obs_on and not station.wrong_path:
            self._obs_mem_access(station, cycle)
        return True

    def _start_execution(self, station: Station) -> None:
        rec = station.rec
        cycle = self.cycle
        counters = self.counters
        station.issued = True
        station.executing = True
        station.issue_cycle = cycle
        if station.in_dirty:
            station.refresh_inputs()
        if station.in_spec:
            counters.issued_speculative += 1
        counters.issued += 1
        if station.exec_count > 0:
            counters.reissues += 1
        # _schedule, inlined (hottest scheduling site in the machine).
        events = self._events
        when = cycle + rec.exec_latency
        bucket = events.get(when)
        if bucket is None:
            bucket = events[when] = []
        if rec.is_load:
            # Two-phase memory operation: address generation now; the
            # access starts when the address is valid (and disambiguated).
            bucket.append((_ADDRGEN, station, station.epoch))
        else:
            bucket.append((_RESULT, station, station.epoch))
        if self._log_on and not station.wrong_path:
            kind = (
                SpecEventKind.REISSUE if station.exec_count else SpecEventKind.ISSUE
            )
            self.log.emit(rec.seq, kind, cycle)
        if self._obs_on and not station.wrong_path:
            self._obs_issue(station, cycle)

    def _on_addrgen(self, station: Station, cycle: int) -> None:
        """A load's address generation completed; start (or queue) the
        memory access."""
        if not self._try_load_access(station):
            self._waiting_access.append((station, station.epoch))

    def _load_access_latency(self, station: Station) -> int:
        rec = station.rec
        if station.wrong_path:
            return self.hierarchy.data_access(rec.mem_addr, is_write=False)
        forwarder = self.lsq.find_forwarder(station.sid, rec.mem_addr, rec.mem_size)
        if forwarder is not None:
            self.counters.store_forwards += 1
            return 1  # single-cycle store-to-load forwarding
        return self.hierarchy.data_access(rec.mem_addr, is_write=False)

    # ------------------------------------------------------------------
    # event processing
    # ------------------------------------------------------------------

    def _process_events(self) -> None:
        """Drain this cycle's event bucket (repeatedly: a zero-latency
        chain may schedule follow-up events into the same cycle, which
        land in a fresh bucket and fire after the current batch — the
        order the heap's schedule-counter tiebreak used to produce)."""
        events = self._events
        cycle = self.cycle
        handlers = self._event_handlers
        while True:
            bucket = events.pop(cycle, None)
            if bucket is None:
                return
            for entry in bucket:
                kind, station = entry[0], entry[1]
                epoch = entry[2]
                if kind < _WAVE_VERIFY or kind == _ADDRGEN:
                    if station.epoch != epoch or station.retired:
                        continue
                    handlers[kind](station, cycle)
                else:
                    # Wave / provisional-invalidate transactions outlive
                    # nullification of their source: waves may ripple after
                    # the source retires, and a provisional invalidation
                    # must fire even if the source was itself just
                    # invalidated (the paper's Figure 1 packs both into one
                    # cycle).  A squash still kills them: squashed stations
                    # are marked retired with a bumped epoch, and their
                    # consumers died with them.
                    if station.retired and station.epoch != epoch:
                        continue
                    if kind == _PROV_INVALIDATE:
                        self._on_provisional_invalidate(station, cycle)
                    else:
                        self._on_wave(
                            station,
                            cycle,
                            entry[3],
                            invalidate=kind == _WAVE_INVALIDATE,
                        )

    def _on_result(self, station: Station, cycle: int) -> None:
        # Operand *status* may have improved during execution (verification
        # transactions clear taints in place); operand *values* cannot have
        # changed without a nullification, which bumps the epoch and voids
        # this event.  The result's speculation state is therefore the
        # operands' current state.
        if station.in_dirty:
            # Station.refresh_inputs, inlined (kept in lockstep with
            # window/station.py) — every result event reads the summary.
            usable = correct = True
            union = 0
            spec = False
            for op in station.operands:
                if op.ready:
                    t = op.taints
                    if t:
                        union |= t
                        spec = True
                    if not op.correct:
                        correct = False
                else:
                    usable = False
                    correct = False
            station.in_usable = usable
            station.in_taint_union = union
            station.in_correct = correct
            station.in_spec = spec
            station.in_dirty = False
            taints = union
            valid = usable and not taints
        else:
            # Unready operands always carry an empty taint mask, so the
            # cached ready-operand taint union is the full input union.
            taints = station.in_taint_union
            valid = station.in_usable and not taints
            correct = station.in_correct
        station.executing = False
        station.executed = True
        station.exec_count += 1
        station.result_cycle = cycle
        station.exec_valid_inputs = valid
        rec = station.rec

        live_prediction = (
            station.predicted
            and not station.prediction_resolved
            and not station.prediction_muted
        )
        if live_prediction:
            # Consumers keep the prediction broadcast (tainted only by this
            # station's own unresolved prediction).  The equality comparator
            # fires on every writeback: with valid inputs the outcome is
            # final; with speculative inputs a mismatch provisionally mutes
            # the prediction and invalidates its consumers (the paper's
            # Figure 1 detects instruction 2's misprediction from its
            # wrong-input execution).
            station.spec_equal = correct and station.pred_correct
            station.exec_taints = taints
            if valid:
                when = cycle + self._lat_exec_eq
                events = self._events
                bucket = events.get(when)
                if bucket is None:
                    bucket = events[when] = []
                bucket.append((_EQUALITY, station, station.epoch))
            elif not station.spec_equal:
                self._schedule(
                    cycle
                    + self._lat_exec_eq
                    + self._lat_eq_inval,
                    _PROV_INVALIDATE,
                    station,
                )
        else:
            station.out_ready = True
            station.out_taints = taints
            station.out_correct = correct
            station.exec_taints = taints
            if not taints:
                station.out_valid_cycle = cycle
                station.out_via_network = False
            self._broadcast(station, cycle)
            if (
                station.predicted
                and not station.prediction_resolved
                and valid
            ):
                # Muted prediction: final equality still needed for the
                # retirement gate and predictor bookkeeping.
                when = cycle + self._lat_exec_eq
                events = self._events
                bucket = events.get(when)
                if bucket is None:
                    bucket = events[when] = []
                bucket.append((_EQUALITY, station, station.epoch))

        if rec.is_store and not station.wrong_path and valid:
            self.lsq.set_address(station.sid, rec.mem_addr, rec.mem_size)
            self.lsq.set_store_data_ready(station.sid)
        if rec.is_load:
            station.mem_done = True
        if (
            station.branch_mispredicted
            and not station.wrong_path
            and valid
        ):
            self._resolve_mispredicted_branch(station, cycle)
        if self._log_on and not station.wrong_path:
            self.log.emit(rec.seq, SpecEventKind.WRITE, cycle)
        if self._obs_on and not station.wrong_path:
            self._trc_mark(
                cycle, rec.seq, station.sid, "result",
                "valid" if valid else "speculative",
            )

    def _broadcast(self, station: Station, cycle: int) -> None:
        """Deliver the current (non-prediction) output to all consumers."""
        out_taints = station.out_taints
        out_correct = station.out_correct
        pool = self._ready_pool
        for consumer, op_index in station.consumers:
            if consumer.retired:
                continue
            # Operand.deliver(via_network=False), inlined: broadcast is the
            # hottest transaction in the machine.
            operand = consumer.operands[op_index]
            operand.ready = True
            operand.taints = out_taints
            operand.correct = out_correct
            operand.from_prediction = False
            if not out_taints:
                operand.valid_cycle = cycle
                operand.via_network = False
            consumer.in_dirty = True
            if not consumer.issued:
                pool[consumer.sid] = consumer

    # -- equality / verification / invalidation -------------------------

    def _on_equality(self, station: Station, cycle: int) -> None:
        if station.prediction_resolved:
            return
        station.equality_cycle = cycle
        if self._log_on:
            self.log.emit(station.rec.seq, SpecEventKind.EQUALITY, cycle)
        if self._obs_on:
            rec = station.rec
            self._trc_mark(
                cycle, rec.seq, station.sid, "equality",
                "match" if station.pred_correct else "mismatch",
            )
            self._trc_lat(
                LatencyEventKind.EXEC_EQUALITY,
                rec.seq,
                station.sid,
                station.result_cycle,
                cycle,
                rec.opcode.mnemonic,
            )
        if station.pred_correct:
            self._schedule(
                cycle + self._lat_eq_verify, _VERIFY, station
            )
        else:
            self._schedule(
                cycle + self._lat_eq_inval, _INVALIDATE, station
            )

    def _consumer_closure(self, roots: list[Station]) -> list[Station]:
        """All in-flight stations reachable through consumer edges.

        Dedup is by visit stamp — one int compare/store per edge against
        a monotonically increasing walk id — instead of a ``set`` of
        sids, so a closure walk allocates nothing but its output list.
        """
        stamp = self._stamp + 1
        self._stamp = stamp
        out: list[Station] = []
        frontier = list(roots)
        for station in frontier:
            station.stamp = stamp
        frontier_pop = frontier.pop
        frontier_append = frontier.append
        while frontier:
            current = frontier_pop()
            for consumer, __ in current.consumers:
                if consumer.stamp == stamp:
                    continue
                consumer.stamp = stamp
                if consumer.retired:
                    continue
                out.append(consumer)
                frontier_append(consumer)
        return out

    def _on_verify(self, source: Station, cycle: int) -> None:
        if source.prediction_resolved:
            return
        self._verify_impl(source, cycle)

    def _resolve_correct(self, station: Station, cycle: int) -> None:
        station.prediction_resolved = True
        station.verify_cycle = cycle
        station.out_taints &= ~station.taint_mask
        station.out_correct = True
        if not station.out_taints:
            station.out_valid_cycle = cycle
            station.out_via_network = True
        self.counters.verification_events += 1
        if self._log_on:
            self.log.emit(station.rec.seq, SpecEventKind.VERIFY, cycle)
        if self._obs_on:
            rec = station.rec
            self._trc_mark(cycle, rec.seq, station.sid, "verify")
            # Chain-resolved predictions fold into the source's
            # transaction (equality_cycle 0 → a same-cycle sample).
            self._trc_lat(
                LatencyEventKind.EQUALITY_VERIFICATION,
                rec.seq,
                station.sid,
                station.equality_cycle or cycle,
                cycle,
                rec.opcode.mnemonic,
            )

    def _verify_parallel(self, source: Station, cycle: int) -> None:
        """Flattened-hierarchical verification: one transaction validates
        the full dependence closure, folding in chained predictions whose
        speculative equality comparisons already succeeded."""
        resolved: list[Station] = [source]
        resolved_mask = source.taint_mask
        self._resolve_correct(source, cycle)
        # Transitively resolve chained predictions.  The closure is only
        # recomputed after a pass that grew the resolved set, and the final
        # one (always computed for the final root set) is handed to
        # ``_clear_taints`` so it is walked, not rebuilt.
        closure = self._consumer_closure(resolved)
        changed = True
        while changed:
            changed = False
            for candidate in closure:
                if (
                    candidate.predicted
                    and not candidate.prediction_resolved
                    and candidate.executed
                    and not candidate.executing
                ):
                    exec_taints = candidate.exec_taints
                    if exec_taints and not (exec_taints & ~resolved_mask):
                        if candidate.spec_equal:
                            self._resolve_correct(candidate, cycle)
                            resolved.append(candidate)
                            resolved_mask |= candidate.taint_mask
                            changed = True
                        else:
                            candidate.equality_cycle = cycle
                            self._schedule(
                                cycle + self._lat_eq_inval,
                                _INVALIDATE,
                                candidate,
                            )
                            # Guard double scheduling.
                            candidate.prediction_resolved = True
                            candidate.verify_cycle = (
                                cycle + self._lat_eq_inval
                            )
            if changed:
                closure = self._consumer_closure(resolved)
        self._clear_taints(resolved, resolved_mask, cycle, closure)

    def _clear_taints(
        self,
        resolved: list[Station],
        resolved_mask: int,
        cycle: int,
        closure: list[Station] | None = None,
    ) -> None:
        """Remove resolved sources from every reachable taint set (the
        resolved stations themselves included: a chain-resolved station's
        operands are tainted by its resolved predecessors).  ``closure``
        lets callers that already walked ``_consumer_closure(resolved)``
        pass it in instead of having it recomputed."""
        if closure is None:
            closure = self._consumer_closure(resolved)
        keep = ~resolved_mask
        chain_eq = self._chain_equality
        ready_pool = self._ready_pool
        for station in resolved + closure:
            touched = False
            for operand in station.operands:
                if operand.taints & resolved_mask:
                    operand.taints &= keep
                    touched = True
                    if operand.ready and not operand.taints:
                        operand.valid_cycle = cycle
                        operand.via_network = True
            if station.out_taints & resolved_mask:
                station.out_taints &= keep
                if (
                    station.out_ready
                    and not station.out_taints
                    and not (
                        station.predicted
                        and not station.prediction_resolved
                        and not station.prediction_muted
                    )
                ):
                    station.out_valid_cycle = cycle
                    station.out_via_network = True
            if station.exec_taints:
                station.exec_taints &= keep
            if touched:
                station.in_dirty = True
                # _mark_wakeup, inlined (hot re-arm path).
                if not station.issued and not station.retired:
                    ready_pool[station.sid] = station
            # Each ``_maybe_*`` helper opens with a cheap attribute test
            # that fails for almost every closure station; run those tests
            # inline so the common case costs a branch, not a call.
            if station.rec.is_store:
                self._maybe_publish_store_address(station)
            if station.branch_mispredicted:
                self._maybe_resolve_branch(station, cycle)
            if chain_eq and station.predicted and not station.prediction_resolved:
                self._maybe_chain_equality(station, cycle)

    def _maybe_resolve_branch(self, station: Station, cycle: int) -> None:
        """A mispredicted branch that executed speculatively (resolution
        policy permitting) resolves once its operands prove valid — the
        computed outcome is then trustworthy and fetch can redirect."""
        if (
            station.branch_mispredicted
            and not station.wrong_path
            and station.executed
            and not station.executing
            and station.inputs_valid
        ):
            self._resolve_mispredicted_branch(station, cycle)

    def _maybe_publish_store_address(self, station: Station) -> None:
        """A store whose address generation ran speculatively publishes its
        address to the LSQ once the operands prove valid."""
        if (
            station.rec.is_store
            and not station.wrong_path
            and station.executed
            and station.inputs_valid
        ):
            entry = self.lsq.get(station.sid)
            if entry is not None and entry.address is None:
                self.lsq.set_address(
                    station.sid, station.rec.mem_addr, station.rec.mem_size
                )
                self.lsq.set_store_data_ready(station.sid)

    def _maybe_chain_equality(self, station: Station, cycle: int) -> None:
        """Under non-flattened schemes a predicted instruction whose inputs
        just became valid resolves through a fresh equality event."""
        if (
            self.variables.verification is not VerificationScheme.PARALLEL_NETWORK
            and station.predicted
            and not station.prediction_resolved
            and station.executed
            and not station.executing
            and station.inputs_valid
        ):
            self._schedule(
                cycle + self._lat_exec_eq, _EQUALITY, station
            )

    def _verify_hierarchical(self, source: Station, cycle: int) -> None:
        """One dependence level per transaction (per cycle).  Frontiers are
        recomputed when each wave fires so consumers that captured a
        tainted value after the transaction started are still reached."""
        self._resolve_correct(source, cycle)
        self._schedule_wave(
            cycle, _WAVE_VERIFY, source, [s for s, __ in source.consumers]
        )

    def _on_wave(
        self, source: Station, cycle: int, wave: list[Station], *, invalidate: bool
    ) -> None:
        """One hierarchical (in)validation transaction: handle the current
        frontier, then schedule the next dependence level one cycle later.
        The next frontier is the frontier's current consumers, computed at
        fire time so late captures of tainted values are still covered."""
        stations = [s for s in wave if not s.retired]
        mask = source.taint_mask
        keep = ~mask
        next_frontier: set[Station] = set()

        def extend_frontier(station: Station) -> None:
            for consumer, __ in station.consumers:
                next_frontier.add(consumer)

        if invalidate:
            affected = []
            for station in stations:
                carried = (
                    any(mask & op.taints for op in station.operands)
                    or mask & station.out_taints
                    or mask & station.exec_taints
                )
                if carried:
                    affected.append(station)
                    extend_frontier(station)
            self._apply_invalidation(source, affected, cycle)
        else:
            for station in stations:
                touched = False
                for operand in station.operands:
                    if operand.taints & mask:
                        operand.taints &= keep
                        touched = True
                        if operand.ready and not operand.taints:
                            operand.valid_cycle = cycle
                            operand.via_network = True
                if station.out_taints & mask:
                    station.out_taints &= keep
                    touched = True
                    if (
                        station.out_ready
                        and not station.out_taints
                        and not (
                            station.predicted
                            and not station.prediction_resolved
                            and not station.prediction_muted
                        )
                    ):
                        station.out_valid_cycle = cycle
                        station.out_via_network = True
                if station.exec_taints & mask:
                    station.exec_taints &= keep
                    touched = True
                if touched:
                    station.in_dirty = True
                    self._mark_wakeup(station)
                    extend_frontier(station)
                    self._maybe_publish_store_address(station)
                    self._maybe_resolve_branch(station, cycle)
                    self._maybe_chain_equality(station, cycle)
        if next_frontier:
            kind = _WAVE_INVALIDATE if invalidate else _WAVE_VERIFY
            self._schedule_wave(
                cycle + 1,
                kind,
                source,
                sorted(next_frontier, key=lambda s: s.sid),
            )

    def _verify_retirement_based(
        self, source: Station, cycle: int, scheme: VerificationScheme
    ) -> None:
        """Resolution is known (EQ comparator fired); propagation to
        successors happens only through the retirement window (and, for
        HYBRID, additionally through hierarchical broadcast)."""
        self._resolve_correct(source, cycle)
        self._retire_verified |= source.taint_mask
        if scheme is VerificationScheme.HYBRID:
            self._schedule_wave(
                cycle + 1, _WAVE_VERIFY, source, [s for s, __ in source.consumers]
            )

    def _retirement_based_validate(self) -> None:
        """Per-cycle retirement-window validation pass (Section 3.2's
        retirement-based scheme: only the w oldest instructions can be
        validated each cycle)."""
        unverified = ~self._retire_verified
        for station in self.window.oldest(self.config.retire_width):
            changed = False
            for operand in station.operands:
                if operand.ready and operand.taints:
                    if not (operand.taints & unverified):
                        operand.taints = 0
                        operand.valid_cycle = self.cycle
                        operand.via_network = True
                        changed = True
            if (
                station.out_taints
                and (station.prediction_resolved or not station.predicted)
                and not (station.out_taints & unverified)
            ):
                station.out_taints = 0
                if station.out_ready:
                    station.out_valid_cycle = self.cycle
                    station.out_via_network = True
            if changed:
                station.in_dirty = True
                self._mark_wakeup(station)
                self._maybe_publish_store_address(station)
                self._maybe_resolve_branch(station, self.cycle)
                self._maybe_chain_equality(station, self.cycle)

    def _on_provisional_invalidate(self, source: Station, cycle: int) -> None:
        """A speculative-input execution of a predicted instruction
        mismatched its prediction.  The outcome is not final (the inputs
        were themselves unverified), but the paper's design acts on it:
        the prediction is muted, its consumers are invalidated, and the
        station broadcasts computed results from now on.  Final equality
        still happens at the first valid-input execution (or through chain
        resolution), restoring correctness bookkeeping either way."""
        if source.prediction_resolved or source.prediction_muted:
            return
        if source.retired:
            return
        source.prediction_muted = True
        self.counters.provisional_invalidations += 1
        if self._log_on:
            self.log.emit(source.rec.seq, SpecEventKind.INVALIDATE, cycle)
        obs_on = self._obs_on
        if obs_on:
            self._trc_mark(
                cycle, source.rec.seq, source.sid, "invalidate", "provisional"
            )
        reissue_at = cycle + self._lat_inval_reissue
        mask = source.taint_mask
        for station in self._consumer_closure([source]):
            touched = False
            for operand in station.operands:
                if mask & operand.taints:
                    operand.reset_pending()
                    touched = True
            if not touched:
                continue
            station.in_dirty = True
            if station.issued or station.executing or station.executed:
                station.nullify(reissue_at)
                if station.rec.is_memory and not station.wrong_path:
                    if self.lsq.get(station.sid) is not None:
                        self.lsq.clear_address(station.sid)
                if self._log_on and not station.wrong_path:
                    self.log.emit(station.rec.seq, SpecEventKind.INVALIDATE, cycle)
                if obs_on and not station.wrong_path:
                    self._obs_invalidated(station, cycle)
            self._mark_wakeup(station)
        # Re-expose the station's latest computed result (if any still
        # stands) so consumers wait on real dataflow from here on.
        if source.executed and not source.executing:
            source.out_ready = True
            source.out_taints = source.exec_taints
            source.out_correct = source.inputs_correct
            self._broadcast(source, cycle)
        else:
            source.out_ready = False
            source.out_taints = 0

    def _on_invalidate(self, source: Station, cycle: int) -> None:
        source.prediction_resolved = True
        source.verify_cycle = cycle
        # The source executed with valid inputs: its exec result is the
        # architecturally correct value, delivered with the invalidation.
        source.out_ready = True
        source.out_taints = 0
        source.out_correct = True
        source.out_valid_cycle = cycle
        source.out_via_network = True
        self.counters.invalidation_events += 1
        if self._log_on:
            self.log.emit(source.rec.seq, SpecEventKind.INVALIDATE, cycle)
        if self._obs_on:
            rec = source.rec
            self._trc_mark(cycle, rec.seq, source.sid, "invalidate", "source")
            self._trc_lat(
                LatencyEventKind.EQUALITY_INVALIDATION,
                rec.seq,
                source.sid,
                source.equality_cycle or cycle,
                cycle,
                rec.opcode.mnemonic,
            )

        if self.variables.invalidation is InvalidationScheme.COMPLETE:
            self._complete_invalidation(source, cycle)
            return
        if self.variables.invalidation is InvalidationScheme.SELECTIVE_PARALLEL:
            closure = self._consumer_closure([source])
            self._apply_invalidation(source, closure, cycle)
        else:  # SELECTIVE_HIERARCHICAL
            self._schedule_wave(
                cycle, _WAVE_INVALIDATE, source, [s for s, __ in source.consumers]
            )

    def _apply_invalidation(
        self, source: Station, affected: list[Station], cycle: int
    ) -> None:
        """Selective invalidation of everything tainted by ``source``."""
        sid = source.sid
        mask = source.taint_mask
        reissue_at = cycle + self._lat_inval_reissue
        obs_on = self._obs_on
        for station in affected:
            touched = False
            for operand in station.operands:
                if mask & operand.taints:
                    if operand.producer_sid == sid:
                        operand.deliver(
                            taints=source.out_taints,
                            correct=True,
                            cycle=cycle,
                            from_prediction=False,
                            via_network=True,
                        )
                    else:
                        operand.reset_pending()
                    touched = True
            if not touched:
                continue
            station.in_dirty = True
            if station.issued or station.executing or station.executed:
                station.nullify(reissue_at)
                if station.rec.is_memory and not station.wrong_path:
                    entry = self.lsq.get(station.sid)
                    if entry is not None:
                        self.lsq.clear_address(station.sid)
                if self._log_on and not station.wrong_path:
                    self.log.emit(station.rec.seq, SpecEventKind.INVALIDATE, cycle)
                if obs_on and not station.wrong_path:
                    self._obs_invalidated(station, cycle)
            self._mark_wakeup(station)

    def _complete_invalidation(self, source: Station, cycle: int) -> None:
        """Treat the value misprediction like a branch misprediction
        (Section 3.1): squash everything younger and refetch."""
        self._squash_younger(source.sid)
        self._fetch_queue.clear()
        self.fetch_engine.rewind_to(
            source.rec.seq + 1, cycle, penalty=self.config.redirect_penalty
        )
        self._pending_branch = None

    # ------------------------------------------------------------------
    # branches
    # ------------------------------------------------------------------

    def _resolve_mispredicted_branch(self, branch: Station, cycle: int) -> None:
        self._squash_younger(branch.sid)
        self._fetch_queue.clear()
        self.fetch_engine.redirect(cycle, penalty=self.config.redirect_penalty)
        if self._pending_branch is branch:
            self._pending_branch = None
        branch.branch_mispredicted = False  # resolved; don't squash again

    def _squash_younger(self, sid: int) -> None:
        removed = self.window.squash_younger_than(sid)
        pool = self._ready_pool
        obs_on = self._obs_on
        last_writer = self._last_writer
        # ``removed`` is youngest-first, so unwinding the last-writer
        # table cascades correctly through runs of squashed writers: each
        # entry restores its predecessor, which (if also squashed) is
        # restored in a later iteration.
        for station in removed:
            station.epoch += 1
            station.retired = True  # dead: events and broadcasts skip it
            pool.pop(station.sid, None)
            rec = station.rec
            if obs_on and not station.wrong_path:
                self._trc_mark(self.cycle, rec.seq, station.sid, "squash")
            if rec.writes_register and last_writer[rec.dest_reg] == station.sid:
                last_writer[rec.dest_reg] = station.prev_writer
            pending = station.pending_train
            if pending is not None:
                station.pending_train = None
                # The speculative history entry for this prediction will
                # never be reconciled at retirement; drop the PC's
                # speculative history wholesale.
                self.predictor.flush_speculative(pending[0])
        self.lsq.squash_after(sid)
        self.counters.squashed += len(removed)
        if self._pending_branch is not None and self._pending_branch.sid > sid:
            self._pending_branch = None

    # ------------------------------------------------------------------
    # retire
    # ------------------------------------------------------------------

    def _retire(self) -> None:
        """Retire completed head instructions (helpers inlined: the
        finality/release-delay computation and the per-station release
        bookkeeping run once per retirement attempt, so they live in the
        loop body with every ``self`` lookup hoisted)."""
        if self._rb_validate:
            self._retirement_based_validate()
        win = self._win
        # Most calls retire nothing (the head is wrong-path or still in
        # flight); bail on those three attribute reads before hoisting the
        # dozen locals the retirement loop wants.
        head = next(iter(win.values()))
        if head.wrong_path or not head.executed or head.executing:
            return
        retired = 0
        cycle = self.cycle
        retire_width = self._retire_width
        model_on = self._model_on
        release_spec = self._lat_release_spec
        pool = self._ready_pool
        counters = self.counters
        log_on = self._log_on
        obs_on = self._obs_on
        fast_conf = self._fconf_counters
        conf_mask = self._fconf_mask
        conf_max = self._fconf_max
        lsq = self.lsq
        # Retire-side train inline: applies on the fast stack when the
        # 16-bit fold carried by pending_train matches the predictor's
        # context width (always true for the paper configuration).
        fast_train = fast_conf is not None and self._fvp_fold16_ok
        if fast_train:
            vp_l1_mask = self._fvp_l1_mask
            vp_entries = self._fvp_entries
            vp_fresh = self._fvp_fresh
            vp_ctx_mask = self._fvp_ctx_mask
            vp_values = self._fvp_values
            vp_vfolds = self._fvp_folds
            vp_counters = self._fvp_counters
            vp_order = self._fvp_order
            vp_spec_map = self._fvp_spec
            vp_consume = self._fvp_consume
            vp_walk = self._fvp_walk
        # One bounded snapshot of the window head replaces a fresh
        # ``next(iter(...))`` per retirement (we delete exactly the heads
        # we iterate, in order, so the snapshot stays the live head run).
        for head in list(_islice(win.values(), retire_width)):
            if head.wrong_path:
                break
            if not head.executed or head.executing:
                break
            if head.in_dirty:
                head.refresh_inputs()
            if not head.in_usable or head.in_taint_union:
                break
            predicted = head.predicted
            if predicted and not head.prediction_resolved:
                break
            rec = head.rec
            writes = rec.writes_register
            if writes and head.out_taints:
                break
            # Finality cycle and speculation involvement, one operand walk.
            final = head.result_cycle
            spec_involved = predicted
            for operand in head.operands:
                if operand.valid_cycle > final:
                    final = operand.valid_cycle
                if operand.via_network:
                    spec_involved = True
            if predicted and head.verify_cycle > final:
                final = head.verify_cycle
            if writes and head.out_valid_cycle > final:
                final = head.out_valid_cycle
            delay = release_spec if (model_on and spec_involved) else 1
            if cycle < final + delay:
                # The head is done and waiting out its delay; nothing can
                # move ``final`` any more (its operands are valid, so taint
                # clears no longer touch them), so retirement attempts
                # before then are pure overhead.
                if not self._rb_validate:
                    self._retire_gate = final + delay
                break
            # Release the head (the seed's _retire_one, inlined).
            sid = head.sid
            del win[sid]
            head.retired = True
            pool.pop(sid, None)
            if rec.is_memory:
                # Only correct-path memory instructions ever allocate an
                # LSQ entry (and the head is never wrong-path here).
                if rec.is_store:
                    self.hierarchy.data_access(rec.mem_addr, is_write=True)
                lsq.release(sid)
            # The last-writer table needs no retire-side maintenance: a
            # stale entry is filtered by dispatch's window lookup, and a
            # retired newest writer implies every older writer of that
            # register retired before it (retirement is in order).
            pending = head.pending_train
            if pending is not None:
                pc, actual, pred_correct, token, fold16 = pending
                if fast_train:
                    # ContextValuePredictor.train, inlined (kept in
                    # lockstep with vp/context.py; the fused predict path
                    # guarantees token and fold16 are present).
                    actual &= _MASK64
                    index = (pc >> _VP_PC_SHIFT) & vp_l1_mask
                    entry = vp_entries.get(index)
                    if entry is None:
                        entry = vp_entries[index] = vp_fresh.copy()
                    committed = entry[1]
                    ctx = committed & vp_ctx_mask
                    if vp_values[ctx] == actual:
                        vp_counters[ctx] = 1
                    elif vp_counters[ctx]:
                        vp_counters[ctx] = 0
                    else:
                        vp_values[ctx] = actual
                        vp_vfolds[ctx] = fold16
                    ring_head = entry[2]
                    slot = 3 + ring_head
                    committed = (
                        ((committed ^ entry[slot]) >> 1)
                        ^ (fold16 << (vp_order - 1))
                    )
                    entry[1] = committed
                    entry[slot] = fold16
                    entry[slot + vp_order] = actual
                    ring_head += 1
                    entry[2] = 0 if ring_head == vp_order else ring_head
                    spec = vp_spec_map.get(index) if vp_spec_map else None
                    if spec:
                        vp_consume(spec, token, actual)
                        if not spec:
                            del vp_spec_map[index]
                            entry[0] = committed
                        else:
                            entry[0] = vp_walk(entry, spec)
                    else:
                        entry[0] = committed
                else:
                    self._vp_train(pc, actual, token, fold16)
                if fast_conf is not None:
                    # ResettingConfidenceEstimator.update, inlined (the
                    # ``_fast_vp`` stack guarantees the exact type).
                    cidx = (pc >> _VP_PC_SHIFT) & conf_mask
                    if pred_correct:
                        if fast_conf[cidx] < conf_max:
                            fast_conf[cidx] += 1
                    else:
                        fast_conf[cidx] = 0
                else:
                    self._conf_update(pc, pred_correct)
            if log_on:
                self.log.emit(rec.seq, SpecEventKind.RETIRE, cycle)
            if obs_on:
                self._obs_retire(head, cycle, final, spec_involved)
            retired += 1
        if retired:
            counters.retired += retired
            self._last_retire_cycle = cycle
