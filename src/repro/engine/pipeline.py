"""The cycle-level out-of-order pipeline with value speculation.

Each simulated cycle advances through five phases — retire, speculation
events, issue, dispatch, fetch — so that an event effective in cycle *c*
(a result becoming usable, a verification or invalidation transaction) is
visible to the issue stage of the same cycle, matching the paper's event
timing convention: a latency of zero between two events means they complete
within the same cycle (Figure 1's *super* model packs detection,
invalidation and reissue into cycle t+1).

Event timestamps follow one rule: the cycle recorded for an event is the
first cycle in which its effect is actionable.  An instruction issued at
``t`` with execution latency ``L`` has its result usable in ``t + L``
(dependents may issue in ``t + L``); its equality outcome is actionable in
``t + L + exec_to_equality``; verification and invalidation transactions
are actionable ``equality_to_*`` cycles after that; and so on through the
:class:`~repro.core.latency.LatencyModel` variables.

Value speculation is simulated through *taint tracking*: every unresolved
prediction is a speculation source, and every value broadcast carries the
set of sources it transitively depends on.  An operand is VALID exactly
when its taint set is empty.  Verification removes a source from all taint
sets (the flattened network does this for a whole dependence closure in one
transaction, resolving chained predictions whose speculative equality
comparisons already succeeded); invalidation delivers the correct value to
direct consumers, resets (nullifies) every transitively affected
instruction, and lets dataflow re-execution repair the rest.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.core.latency import LatencyModel
from repro.core.model import SpeculativeExecutionModel
from repro.core.variables import (
    InvalidationScheme,
    MemoryResolution,
    ModelVariables,
    VerificationScheme,
)
from repro.core.events import EventLog, SpecEventKind
from repro.engine.config import ProcessorConfig
from repro.engine.funits import execution_latency
from repro.isa.opcodes import OpClass
from repro.frontend.fetch import FetchedInstruction, FetchEngine
from repro.frontend.gshare import GsharePredictor
from repro.mem.hierarchy import MemoryHierarchy, make_paper_hierarchy
from repro.mem.lsq import LoadStoreQueue
from repro.mem.ports import PortPool
from repro.metrics.counters import SimCounters
from repro.trace.record import TraceRecord
from repro.vp.base import ValuePredictor
from repro.vp.confidence import ConfidenceEstimator, ResettingConfidenceEstimator
from repro.vp.context import ContextValuePredictor
from repro.vp.update_timing import UpdateTiming
from repro.window.ruu import InstructionWindow
from repro.window.selection import select
from repro.window.station import Operand, Station
from repro.window.wakeup import can_wake

# Event kinds on the timing heap.
_RESULT = 0
_EQUALITY = 1
_VERIFY = 2
_INVALIDATE = 3
_WAVE_VERIFY = 4
_WAVE_INVALIDATE = 5
_ADDRGEN = 6
_PROV_INVALIDATE = 7


def _make_bpred(config: ProcessorConfig):
    """Build the configured branch direction predictor."""
    if config.branch_predictor == "gshare":
        return GsharePredictor(
            config.branch_history_bits, config.branch_table_bits
        )
    if config.branch_predictor == "bimodal":
        from repro.frontend.bimodal import BimodalPredictor

        return BimodalPredictor(config.branch_table_bits)
    if config.branch_predictor == "local":
        from repro.frontend.local import LocalHistoryPredictor

        return LocalHistoryPredictor()
    from repro.frontend.tournament import TournamentPredictor

    return TournamentPredictor()


class SimulationError(RuntimeError):
    """Raised when a simulation cannot make progress."""


class PipelineSimulator:
    """One simulation run: a trace replayed on one configuration."""

    def __init__(
        self,
        trace: list[TraceRecord],
        config: ProcessorConfig,
        model: SpeculativeExecutionModel | None = None,
        *,
        predictor: ValuePredictor | None = None,
        confidence: ConfidenceEstimator | None = None,
        update_timing: UpdateTiming = UpdateTiming.DELAYED,
        hierarchy: MemoryHierarchy | None = None,
    ):
        self.trace = trace
        self.config = config
        self.model = model
        self.vp_enabled = model is not None
        self.latencies: LatencyModel = (
            model.latencies if model is not None else LatencyModel()
        )
        self.variables: ModelVariables = (
            model.variables if model is not None else ModelVariables()
        )
        self.predictor = predictor or (
            ContextValuePredictor() if self.vp_enabled else None
        )
        self.confidence = confidence or (
            ResettingConfidenceEstimator() if self.vp_enabled else None
        )
        self.update_timing = update_timing
        self.hierarchy = hierarchy or make_paper_hierarchy(
            perfect=config.perfect_caches
        )
        self.bpred = None if config.perfect_branches else _make_bpred(config)
        btb = ras = None
        if not config.ideal_branch_targets:
            from repro.frontend.btb import BranchTargetBuffer
            from repro.frontend.ras import ReturnAddressStack

            btb = BranchTargetBuffer()
            ras = ReturnAddressStack()
        self.fetch_engine = FetchEngine(
            trace,
            self.hierarchy.l1i,
            self.bpred,
            model_wrong_path=config.model_wrong_path,
            ideal_branch_targets=config.ideal_branch_targets,
            btb=btb,
            ras=ras,
        )
        self.window = InstructionWindow(config.window_size)
        self.lsq = LoadStoreQueue(config.window_size)
        self.dports = PortPool(config.dcache_ports)
        self.counters = SimCounters()
        self.log = EventLog(config.log_events)

        self.cycle = 0
        self._next_sid = 0
        self._events: list[tuple[int, int, int, Station, int]] = []
        self._event_counter = 0
        self._fetch_queue: deque[tuple[FetchedInstruction, int]] = deque()
        self._writers: dict[int, list[int]] = {}
        self._pending_train: dict[int, tuple[int, int, bool, object]] = {}
        self._pending_branch: Station | None = None
        #: Loads whose address generation finished and whose memory access
        #: is pending (valid-address gate / prior stores / ports), as
        #: (station, epoch) pairs retried every cycle.
        self._waiting_access: list[tuple[Station, int]] = []
        self._last_retire_cycle = 0
        #: Predictions resolved correct, awaiting retirement-based
        #: propagation (RETIREMENT_BASED / HYBRID verification only).
        self._retire_verified: set[int] = set()
        #: (cycle, retired, window_occupancy) samples when
        #: ``config.sample_interval`` > 0 (see repro.viz).
        self.samples: list[tuple[int, int, int]] = []
        self._vp_port_cycle = -1
        self._vp_ports_used = 0

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------

    def _schedule(self, cycle: int, kind: int, station: Station) -> None:
        self._event_counter += 1
        heapq.heappush(
            self._events, (cycle, self._event_counter, kind, station, station.epoch)
        )

    def _schedule_wave(
        self, cycle: int, kind: int, source: Station, wave: list[int]
    ) -> None:
        self._event_counter += 1
        heapq.heappush(
            self._events,
            (cycle, self._event_counter, kind, source, source.epoch, wave),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimCounters:
        """Simulate until every correct-path instruction has retired."""
        total = len(self.trace)
        if total == 0:
            return self.counters
        while self.counters.retired < total:
            if self.cycle > self.config.max_cycles:
                raise SimulationError(
                    f"exceeded {self.config.max_cycles} cycles with "
                    f"{self.counters.retired}/{total} retired — deadlock?"
                )
            self._retire()
            self._process_events()
            self._issue()
            self._dispatch()
            self._fetch()
            self.counters.window_occupancy_sum += len(self.window)
            if (
                self.config.sample_interval
                and self.cycle % self.config.sample_interval == 0
            ):
                self.samples.append(
                    (self.cycle, self.counters.retired, len(self.window))
                )
            self.cycle += 1
        self.counters.cycles = self._last_retire_cycle + 1
        self.counters.window_peak = self.window.peak_occupancy
        return self.counters

    # ------------------------------------------------------------------
    # fetch & dispatch
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        limit = self.config.fetch_width * (self.config.dispatch_latency + 2)
        room = limit - len(self._fetch_queue)
        if room <= 0:
            return
        batch = self.fetch_engine.fetch(
            self.cycle, min(self.config.fetch_width, room)
        )
        ready = self.cycle + self.config.dispatch_latency
        for fetched in batch:
            self._fetch_queue.append((fetched, ready))
            if self.log.enabled and not fetched.wrong_path:
                self.log.emit(fetched.rec.seq, SpecEventKind.FETCH, self.cycle)

    def _dispatch(self) -> None:
        dispatched = 0
        while dispatched < self.config.dispatch_width:
            if not self._fetch_queue:
                if dispatched == 0 and not self.fetch_engine.exhausted:
                    self.counters.stall_fetch_empty += 1
                break
            fetched, ready = self._fetch_queue[0]
            if ready > self.cycle:
                break
            if self.window.full:
                if dispatched == 0:
                    self.counters.stall_window_full += 1
                break
            if fetched.rec.is_memory and not fetched.wrong_path and self.lsq.full:
                if dispatched == 0:
                    self.counters.stall_lsq_full += 1
                break
            self._fetch_queue.popleft()
            self._dispatch_one(fetched)
            dispatched += 1

    def _dispatch_one(self, fetched: FetchedInstruction) -> None:
        rec = fetched.rec
        sid = self._next_sid
        self._next_sid += 1
        station = Station(sid, rec, fetched.wrong_path)
        station.dispatch_cycle = self.cycle
        station.min_issue_cycle = self.cycle + 1

        for op_index, reg in enumerate(rec.src_regs):
            writer_list = self._writers.get(reg)
            producer_sid = writer_list[-1] if writer_list else None
            operand = Operand(reg, producer_sid)
            if producer_sid is not None:
                producer = self.window.get(producer_sid)
                if producer is None or producer.retired:
                    operand.producer_sid = None
                    operand.ready = True
                    operand.correct = True
                else:
                    producer.consumers.append((sid, op_index))
                    if producer.out_ready:
                        # Dispatch-time capture reads the producer's RS
                        # field directly — no network transaction involved,
                        # so no Verification–Branch/Memory surcharge.
                        operand.deliver(
                            taints=producer.out_taints,
                            correct=producer.out_correct,
                            cycle=self.cycle,
                            from_prediction=(
                                producer.predicted
                                and not producer.prediction_resolved
                                and not producer.prediction_muted
                            ),
                            via_network=False,
                        )
            station.operands.append(operand)

        if (
            self.vp_enabled
            and rec.writes_register
            and not fetched.wrong_path
            and self._prediction_eligible(rec)
            and self._vp_port_available()
        ):
            self._predict_value(station)

        if rec.is_branch and not fetched.wrong_path:
            self.counters.branches += 1
        if fetched.mispredicted:
            station.branch_mispredicted = True
            self._pending_branch = station
            self.counters.branch_mispredictions += 1
        if rec.is_memory and not fetched.wrong_path:
            self.lsq.allocate(sid, rec.is_store)
            if rec.is_load:
                self.counters.loads += 1
            else:
                self.counters.stores += 1
        if rec.writes_register:
            self._writers.setdefault(rec.dest_reg, []).append(sid)

        self.window.insert(station)
        self.counters.dispatched += 1
        if fetched.wrong_path:
            self.counters.dispatched_wrong_path += 1
        if self.log.enabled and not fetched.wrong_path:
            self.log.emit(rec.seq, SpecEventKind.DISPATCH, self.cycle)

    _LONG_LATENCY_CLASSES = frozenset(
        (
            OpClass.LOAD,
            OpClass.IMUL,
            OpClass.IDIV,
            OpClass.FADD,
            OpClass.FMUL,
            OpClass.FDIV,
        )
    )

    def _prediction_eligible(self, rec: TraceRecord) -> bool:
        """Selective value prediction (Calder et al. [8]): restrict which
        instruction classes are predicted at all."""
        policy = self.config.predict_classes
        if policy == "all":
            return True
        if policy == "loads":
            return rec.is_load
        if policy == "long-latency":
            return rec.opclass in self._LONG_LATENCY_CLASSES
        return rec.opclass is OpClass.IALU  # "alu"

    def _vp_port_available(self) -> bool:
        """Grant one of the per-cycle predictor ports (0 = unlimited)."""
        if not self.config.vp_ports:
            return True
        if self._vp_port_cycle != self.cycle:
            self._vp_port_cycle = self.cycle
            self._vp_ports_used = 0
        if self._vp_ports_used < self.config.vp_ports:
            self._vp_ports_used += 1
            return True
        return False

    def _predict_value(self, station: Station) -> None:
        rec = station.rec
        actual = rec.dest_value
        predicted = self.predictor.predict(rec.pc)
        pred_correct = predicted == actual
        if not pred_correct and self.config.equality_ignore_low_bits:
            # Approximate equality (Section 3.3 extension): the comparators
            # ignore the low bits, accepting near-miss predictions.  Timing
            # treats the prediction as correct; architectural results are
            # unaffected (the trace carries the true value).
            shift = self.config.equality_ignore_low_bits
            if (predicted >> shift) == ((actual or 0) >> shift):
                pred_correct = True
                self.counters.approximate_matches += 1
        confident = self.confidence.confident(rec.pc, pred_correct)

        self.counters.predictions += 1
        if pred_correct:
            self.counters.predictions_correct += 1
            if confident:
                self.counters.correct_high += 1
            else:
                self.counters.correct_low += 1
        elif confident:
            self.counters.incorrect_high += 1
        else:
            self.counters.incorrect_low += 1

        if self.update_timing is UpdateTiming.IMMEDIATE:
            self.predictor.train(rec.pc, actual)
            self.confidence.update(rec.pc, pred_correct)
        else:
            token = self.predictor.speculate(rec.pc, predicted)
            self._pending_train[station.sid] = (rec.pc, actual, pred_correct, token)

        if confident:
            station.predicted = True
            station.predicted_confident = True
            station.pred_correct = pred_correct
            station.out_ready = True
            station.out_taints = {station.sid}
            station.out_correct = pred_correct
            self.counters.speculated += 1
            if not pred_correct:
                self.counters.misspeculations += 1
            if self.log.enabled:
                self.log.emit(rec.seq, SpecEventKind.PREDICT, self.cycle)

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def _branch_ready_cycle(self, station: Station) -> int:
        """Earliest cycle a valid-operand branch may issue, honouring the
        Verification–Branch latency for network-verified operands."""
        extra = self.latencies.verification_to_branch
        ready = station.min_issue_cycle
        for operand in station.operands:
            gate = operand.valid_cycle + (extra if operand.via_network else 0)
            if gate > ready:
                ready = gate
        return ready

    def _memory_ready_cycle(self, station: Station) -> int:
        """Earliest issue cycle honouring Verification-Address–Memory-Access."""
        extra = self.latencies.verification_addr_to_mem_access
        ready = station.min_issue_cycle
        for operand in station.operands:
            gate = operand.valid_cycle + (extra if operand.via_network else 0)
            if gate > ready:
                ready = gate
        return ready

    def _issue(self) -> None:
        self._drain_waiting_access()
        candidates: list[Station] = []
        for station in self.window:
            if station.issued or station.executing or station.retired:
                continue
            if not can_wake(station, self.variables, self.cycle):
                continue
            rec = station.rec
            if (rec.is_branch or rec.is_indirect) and station.inputs_valid:
                if self.cycle < self._branch_ready_cycle(station):
                    continue
            candidates.append(station)
        for station in select(candidates, self.config.issue_width, self.variables):
            self._start_execution(station)

    def _drain_waiting_access(self) -> None:
        """Retry pending load accesses (they issued already; only cache
        ports, the valid-address gate and store disambiguation hold them)."""
        if not self._waiting_access:
            return
        still_waiting: list[tuple[Station, int]] = []
        for station, epoch in self._waiting_access:
            if station.epoch != epoch or station.retired:
                continue
            if not self._try_load_access(station):
                still_waiting.append((station, epoch))
        self._waiting_access = still_waiting

    def _try_load_access(self, station: Station) -> bool:
        """Attempt the memory-access half of a load; True when started."""
        rec = station.rec
        cycle = self.cycle
        if self.variables.memory_resolution is MemoryResolution.VALID_ONLY:
            if not station.inputs_valid:
                return False
            if cycle < self._memory_ready_cycle(station):
                return False
        elif not station.inputs_usable:
            return False
        if not station.wrong_path:
            if not self.lsq.prior_store_addresses_known(station.sid):
                return False
            if self.lsq.overlapping_older_store(
                station.sid, rec.mem_addr, rec.mem_size
            ):
                return False
        if not self.dports.try_acquire(cycle):
            self.counters.dcache_port_conflicts += 1
            return False
        latency = self._load_access_latency(station)
        self._schedule(cycle + latency, _RESULT, station)
        return True

    def _start_execution(self, station: Station) -> None:
        rec = station.rec
        station.issued = True
        station.executing = True
        station.issue_cycle = self.cycle
        if station.speculative_inputs:
            self.counters.issued_speculative += 1
        self.counters.issued += 1
        if station.exec_count > 0:
            self.counters.reissues += 1
        latency = execution_latency(rec.opclass)
        if rec.is_load:
            # Two-phase memory operation: address generation now; the
            # access starts when the address is valid (and disambiguated).
            self._schedule(self.cycle + latency, _ADDRGEN, station)
        else:
            self._schedule(self.cycle + latency, _RESULT, station)
        if self.log.enabled and not station.wrong_path:
            kind = (
                SpecEventKind.REISSUE if station.exec_count else SpecEventKind.ISSUE
            )
            self.log.emit(rec.seq, kind, self.cycle)

    def _on_addrgen(self, station: Station, cycle: int) -> None:
        """A load's address generation completed; start (or queue) the
        memory access."""
        if not self._try_load_access(station):
            self._waiting_access.append((station, station.epoch))

    def _load_access_latency(self, station: Station) -> int:
        rec = station.rec
        if station.wrong_path:
            return self.hierarchy.data_access(rec.mem_addr, is_write=False)
        forwarder = self.lsq.find_forwarder(station.sid, rec.mem_addr, rec.mem_size)
        if forwarder is not None:
            self.counters.store_forwards += 1
            return 1  # single-cycle store-to-load forwarding
        return self.hierarchy.data_access(rec.mem_addr, is_write=False)

    # ------------------------------------------------------------------
    # event processing
    # ------------------------------------------------------------------

    def _process_events(self) -> None:
        while self._events and self._events[0][0] <= self.cycle:
            entry = heapq.heappop(self._events)
            cycle, __, kind, station = entry[0], entry[1], entry[2], entry[3]
            epoch = entry[4]
            if kind in (_WAVE_VERIFY, _WAVE_INVALIDATE, _PROV_INVALIDATE):
                # These transactions outlive nullification of their source:
                # waves may ripple after the source retires, and a
                # provisional invalidation must fire even if the source was
                # itself just invalidated (the paper's Figure 1 packs both
                # into one cycle).  A squash still kills them: squashed
                # stations are marked retired with a bumped epoch, and
                # their consumers died with them.
                if station.retired and station.epoch != epoch:
                    continue
            elif station.epoch != epoch or station.retired:
                continue
            if kind == _RESULT:
                self._on_result(station, cycle)
            elif kind == _EQUALITY:
                self._on_equality(station, cycle)
            elif kind == _VERIFY:
                self._on_verify(station, cycle)
            elif kind == _INVALIDATE:
                self._on_invalidate(station, cycle)
            elif kind == _WAVE_VERIFY:
                self._on_wave(station, cycle, entry[5], invalidate=False)
            elif kind == _WAVE_INVALIDATE:
                self._on_wave(station, cycle, entry[5], invalidate=True)
            elif kind == _ADDRGEN:
                self._on_addrgen(station, cycle)
            elif kind == _PROV_INVALIDATE:
                self._on_provisional_invalidate(station, cycle)

    def _on_result(self, station: Station, cycle: int) -> None:
        # Operand *status* may have improved during execution (verification
        # transactions clear taints in place); operand *values* cannot have
        # changed without a nullification, which bumps the epoch and voids
        # this event.  The result's speculation state is therefore the
        # operands' current state.
        valid = station.inputs_valid
        correct = station.inputs_correct
        taints: set[int] = set()
        for operand in station.operands:
            taints |= operand.taints
        station.executing = False
        station.executed = True
        station.exec_count += 1
        station.result_cycle = cycle
        station.exec_valid_inputs = valid
        rec = station.rec

        live_prediction = (
            station.predicted
            and not station.prediction_resolved
            and not station.prediction_muted
        )
        if live_prediction:
            # Consumers keep the prediction broadcast (tainted only by this
            # station's own unresolved prediction).  The equality comparator
            # fires on every writeback: with valid inputs the outcome is
            # final; with speculative inputs a mismatch provisionally mutes
            # the prediction and invalidates its consumers (the paper's
            # Figure 1 detects instruction 2's misprediction from its
            # wrong-input execution).
            station.spec_equal = correct and station.pred_correct
            station.exec_taints = set(taints)
            if valid:
                self._schedule(
                    cycle + self.latencies.exec_to_equality, _EQUALITY, station
                )
            elif not station.spec_equal:
                self._schedule(
                    cycle
                    + self.latencies.exec_to_equality
                    + self.latencies.equality_to_invalidation,
                    _PROV_INVALIDATE,
                    station,
                )
        else:
            station.out_ready = True
            station.out_taints = set(taints)
            station.out_correct = correct
            station.exec_taints = set(taints)
            if not taints:
                station.out_valid_cycle = cycle
                station.out_via_network = False
            self._broadcast(station, cycle)
            if (
                station.predicted
                and not station.prediction_resolved
                and valid
            ):
                # Muted prediction: final equality still needed for the
                # retirement gate and predictor bookkeeping.
                self._schedule(
                    cycle + self.latencies.exec_to_equality, _EQUALITY, station
                )

        if rec.is_store and not station.wrong_path and valid:
            self.lsq.set_address(station.sid, rec.mem_addr, rec.mem_size)
            self.lsq.set_store_data_ready(station.sid)
        if rec.is_load:
            station.mem_done = True
        if (
            station.branch_mispredicted
            and not station.wrong_path
            and valid
        ):
            self._resolve_mispredicted_branch(station, cycle)
        if self.log.enabled and not station.wrong_path:
            self.log.emit(rec.seq, SpecEventKind.WRITE, cycle)

    def _broadcast(self, station: Station, cycle: int) -> None:
        """Deliver the current (non-prediction) output to all consumers."""
        for consumer_sid, op_index in station.consumers:
            consumer = self.window.get(consumer_sid)
            if consumer is None or consumer.retired:
                continue
            operand = consumer.operands[op_index]
            operand.deliver(
                taints=station.out_taints,
                correct=station.out_correct,
                cycle=cycle,
                from_prediction=False,
                via_network=False,
            )

    # -- equality / verification / invalidation -------------------------

    def _on_equality(self, station: Station, cycle: int) -> None:
        if station.prediction_resolved:
            return
        station.equality_cycle = cycle
        if self.log.enabled:
            self.log.emit(station.rec.seq, SpecEventKind.EQUALITY, cycle)
        if station.pred_correct:
            self._schedule(
                cycle + self.latencies.equality_to_verification, _VERIFY, station
            )
        else:
            self._schedule(
                cycle + self.latencies.equality_to_invalidation, _INVALIDATE, station
            )

    def _consumer_closure(self, roots: list[Station]) -> list[Station]:
        """All in-flight stations reachable through consumer edges."""
        seen: set[int] = {s.sid for s in roots}
        out: list[Station] = []
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for consumer_sid, __ in current.consumers:
                if consumer_sid in seen:
                    continue
                seen.add(consumer_sid)
                consumer = self.window.get(consumer_sid)
                if consumer is None or consumer.retired:
                    continue
                out.append(consumer)
                frontier.append(consumer)
        return out

    def _on_verify(self, source: Station, cycle: int) -> None:
        if source.prediction_resolved:
            return
        scheme = self.variables.verification
        if scheme is VerificationScheme.PARALLEL_NETWORK:
            self._verify_parallel(source, cycle)
        elif scheme is VerificationScheme.HIERARCHICAL:
            self._verify_hierarchical(source, cycle)
        else:  # RETIREMENT_BASED and HYBRID
            self._verify_retirement_based(source, cycle, scheme)

    def _resolve_correct(self, station: Station, cycle: int) -> None:
        station.prediction_resolved = True
        station.verify_cycle = cycle
        station.out_taints.discard(station.sid)
        station.out_correct = True
        if not station.out_taints:
            station.out_valid_cycle = cycle
            station.out_via_network = True
        self.counters.verification_events += 1
        if self.log.enabled:
            self.log.emit(station.rec.seq, SpecEventKind.VERIFY, cycle)

    def _verify_parallel(self, source: Station, cycle: int) -> None:
        """Flattened-hierarchical verification: one transaction validates
        the full dependence closure, folding in chained predictions whose
        speculative equality comparisons already succeeded."""
        resolved: list[Station] = [source]
        resolved_sids: set[int] = {source.sid}
        self._resolve_correct(source, cycle)
        # Transitively resolve chained predictions.
        changed = True
        while changed:
            changed = False
            for candidate in self._consumer_closure(resolved):
                if (
                    candidate.predicted
                    and not candidate.prediction_resolved
                    and candidate.executed
                    and not candidate.executing
                ):
                    exec_taints = candidate.exec_taints
                    if exec_taints and exec_taints <= resolved_sids:
                        if candidate.spec_equal:
                            self._resolve_correct(candidate, cycle)
                            resolved.append(candidate)
                            resolved_sids.add(candidate.sid)
                            changed = True
                        else:
                            candidate.equality_cycle = cycle
                            self._schedule(
                                cycle + self.latencies.equality_to_invalidation,
                                _INVALIDATE,
                                candidate,
                            )
                            # Guard double scheduling.
                            candidate.prediction_resolved = True
                            candidate.verify_cycle = (
                                cycle + self.latencies.equality_to_invalidation
                            )
        self._clear_taints(resolved, resolved_sids, cycle)

    def _clear_taints(
        self, resolved: list[Station], resolved_sids: set[int], cycle: int
    ) -> None:
        """Remove resolved sources from every reachable taint set (the
        resolved stations themselves included: a chain-resolved station's
        operands are tainted by its resolved predecessors)."""
        for station in resolved + self._consumer_closure(resolved):
            for operand in station.operands:
                if operand.taints & resolved_sids:
                    operand.taints -= resolved_sids
                    if operand.ready and not operand.taints:
                        operand.valid_cycle = cycle
                        operand.via_network = True
            if station.out_taints & resolved_sids:
                station.out_taints -= resolved_sids
                if (
                    station.out_ready
                    and not station.out_taints
                    and not (
                        station.predicted
                        and not station.prediction_resolved
                        and not station.prediction_muted
                    )
                ):
                    station.out_valid_cycle = cycle
                    station.out_via_network = True
            if station.exec_taints:
                station.exec_taints -= resolved_sids
            self._maybe_publish_store_address(station)
            self._maybe_resolve_branch(station, cycle)
            self._maybe_chain_equality(station, cycle)

    def _maybe_resolve_branch(self, station: Station, cycle: int) -> None:
        """A mispredicted branch that executed speculatively (resolution
        policy permitting) resolves once its operands prove valid — the
        computed outcome is then trustworthy and fetch can redirect."""
        if (
            station.branch_mispredicted
            and not station.wrong_path
            and station.executed
            and not station.executing
            and station.inputs_valid
        ):
            self._resolve_mispredicted_branch(station, cycle)

    def _maybe_publish_store_address(self, station: Station) -> None:
        """A store whose address generation ran speculatively publishes its
        address to the LSQ once the operands prove valid."""
        if (
            station.rec.is_store
            and not station.wrong_path
            and station.executed
            and station.inputs_valid
        ):
            entry = self.lsq.get(station.sid)
            if entry is not None and entry.address is None:
                self.lsq.set_address(
                    station.sid, station.rec.mem_addr, station.rec.mem_size
                )
                self.lsq.set_store_data_ready(station.sid)

    def _maybe_chain_equality(self, station: Station, cycle: int) -> None:
        """Under non-flattened schemes a predicted instruction whose inputs
        just became valid resolves through a fresh equality event."""
        if (
            self.variables.verification is not VerificationScheme.PARALLEL_NETWORK
            and station.predicted
            and not station.prediction_resolved
            and station.executed
            and not station.executing
            and station.inputs_valid
        ):
            self._schedule(
                cycle + self.latencies.exec_to_equality, _EQUALITY, station
            )

    def _verify_hierarchical(self, source: Station, cycle: int) -> None:
        """One dependence level per transaction (per cycle).  Frontiers are
        recomputed when each wave fires so consumers that captured a
        tainted value after the transaction started are still reached."""
        self._resolve_correct(source, cycle)
        self._schedule_wave(
            cycle, _WAVE_VERIFY, source, [c for c, __ in source.consumers]
        )

    def _on_wave(
        self, source: Station, cycle: int, wave: list[int], *, invalidate: bool
    ) -> None:
        """One hierarchical (in)validation transaction: handle the current
        frontier, then schedule the next dependence level one cycle later.
        The next frontier is the frontier's current consumers, computed at
        fire time so late captures of tainted values are still covered."""
        stations = [
            s
            for sid in wave
            if (s := self.window.get(sid)) is not None and not s.retired
        ]
        sid = source.sid
        next_frontier: set[int] = set()

        def extend_frontier(station: Station) -> None:
            for consumer_sid, __ in station.consumers:
                next_frontier.add(consumer_sid)

        if invalidate:
            affected = []
            for station in stations:
                carried = (
                    any(sid in op.taints for op in station.operands)
                    or sid in station.out_taints
                    or sid in station.exec_taints
                )
                if carried:
                    affected.append(station)
                    extend_frontier(station)
            self._apply_invalidation(source, affected, cycle)
        else:
            sids = {sid}
            for station in stations:
                touched = False
                for operand in station.operands:
                    if operand.taints & sids:
                        operand.taints -= sids
                        touched = True
                        if operand.ready and not operand.taints:
                            operand.valid_cycle = cycle
                            operand.via_network = True
                if station.out_taints & sids:
                    station.out_taints -= sids
                    touched = True
                    if (
                        station.out_ready
                        and not station.out_taints
                        and not (
                            station.predicted
                            and not station.prediction_resolved
                            and not station.prediction_muted
                        )
                    ):
                        station.out_valid_cycle = cycle
                        station.out_via_network = True
                if sid in station.exec_taints:
                    station.exec_taints.discard(sid)
                    touched = True
                if touched:
                    extend_frontier(station)
                    self._maybe_publish_store_address(station)
                    self._maybe_resolve_branch(station, cycle)
                    self._maybe_chain_equality(station, cycle)
        if next_frontier:
            kind = _WAVE_INVALIDATE if invalidate else _WAVE_VERIFY
            self._schedule_wave(cycle + 1, kind, source, sorted(next_frontier))

    def _verify_retirement_based(
        self, source: Station, cycle: int, scheme: VerificationScheme
    ) -> None:
        """Resolution is known (EQ comparator fired); propagation to
        successors happens only through the retirement window (and, for
        HYBRID, additionally through hierarchical broadcast)."""
        self._resolve_correct(source, cycle)
        self._retire_verified.add(source.sid)
        if scheme is VerificationScheme.HYBRID:
            self._schedule_wave(
                cycle + 1, _WAVE_VERIFY, source, [c for c, __ in source.consumers]
            )

    def _retirement_based_validate(self) -> None:
        """Per-cycle retirement-window validation pass (Section 3.2's
        retirement-based scheme: only the w oldest instructions can be
        validated each cycle)."""
        for station in self.window.oldest(self.config.retire_width):
            changed = False
            for operand in station.operands:
                if operand.ready and operand.taints:
                    if operand.taints <= self._retire_verified:
                        operand.taints = set()
                        operand.valid_cycle = self.cycle
                        operand.via_network = True
                        changed = True
            if (
                station.out_taints
                and (station.prediction_resolved or not station.predicted)
                and station.out_taints <= self._retire_verified
            ):
                station.out_taints = set()
                if station.out_ready:
                    station.out_valid_cycle = self.cycle
                    station.out_via_network = True
            if changed:
                self._maybe_publish_store_address(station)
                self._maybe_resolve_branch(station, self.cycle)
                self._maybe_chain_equality(station, self.cycle)

    def _on_provisional_invalidate(self, source: Station, cycle: int) -> None:
        """A speculative-input execution of a predicted instruction
        mismatched its prediction.  The outcome is not final (the inputs
        were themselves unverified), but the paper's design acts on it:
        the prediction is muted, its consumers are invalidated, and the
        station broadcasts computed results from now on.  Final equality
        still happens at the first valid-input execution (or through chain
        resolution), restoring correctness bookkeeping either way."""
        if source.prediction_resolved or source.prediction_muted:
            return
        if source.retired:
            return
        source.prediction_muted = True
        self.counters.provisional_invalidations += 1
        if self.log.enabled:
            self.log.emit(source.rec.seq, SpecEventKind.INVALIDATE, cycle)
        reissue_at = cycle + self.latencies.invalidation_to_reissue
        sid = source.sid
        for station in self._consumer_closure([source]):
            touched = False
            for operand in station.operands:
                if sid in operand.taints:
                    operand.reset_pending()
                    touched = True
            if not touched:
                continue
            if station.issued or station.executing or station.executed:
                station.nullify(reissue_at)
                if station.rec.is_memory and not station.wrong_path:
                    if self.lsq.get(station.sid) is not None:
                        self.lsq.clear_address(station.sid)
                if self.log.enabled and not station.wrong_path:
                    self.log.emit(station.rec.seq, SpecEventKind.INVALIDATE, cycle)
        # Re-expose the station's latest computed result (if any still
        # stands) so consumers wait on real dataflow from here on.
        if source.executed and not source.executing:
            source.out_ready = True
            source.out_taints = set(source.exec_taints)
            source.out_correct = source.inputs_correct
            self._broadcast(source, cycle)
        else:
            source.out_ready = False
            source.out_taints = set()

    def _on_invalidate(self, source: Station, cycle: int) -> None:
        source.prediction_resolved = True
        source.verify_cycle = cycle
        # The source executed with valid inputs: its exec result is the
        # architecturally correct value, delivered with the invalidation.
        source.out_ready = True
        source.out_taints = set()
        source.out_correct = True
        source.out_valid_cycle = cycle
        source.out_via_network = True
        self.counters.invalidation_events += 1
        if self.log.enabled:
            self.log.emit(source.rec.seq, SpecEventKind.INVALIDATE, cycle)

        if self.variables.invalidation is InvalidationScheme.COMPLETE:
            self._complete_invalidation(source, cycle)
            return
        if self.variables.invalidation is InvalidationScheme.SELECTIVE_PARALLEL:
            closure = self._consumer_closure([source])
            self._apply_invalidation(source, closure, cycle)
        else:  # SELECTIVE_HIERARCHICAL
            self._schedule_wave(
                cycle, _WAVE_INVALIDATE, source, [c for c, __ in source.consumers]
            )

    def _apply_invalidation(
        self, source: Station, affected: list[Station], cycle: int
    ) -> None:
        """Selective invalidation of everything tainted by ``source``."""
        sid = source.sid
        reissue_at = cycle + self.latencies.invalidation_to_reissue
        for station in affected:
            touched = False
            for operand in station.operands:
                if sid in operand.taints:
                    if operand.producer_sid == sid:
                        operand.deliver(
                            taints=source.out_taints,
                            correct=True,
                            cycle=cycle,
                            from_prediction=False,
                            via_network=True,
                        )
                    else:
                        operand.reset_pending()
                    touched = True
            if not touched:
                continue
            if station.issued or station.executing or station.executed:
                station.nullify(reissue_at)
                if station.rec.is_memory and not station.wrong_path:
                    entry = self.lsq.get(station.sid)
                    if entry is not None:
                        self.lsq.clear_address(station.sid)
                if self.log.enabled and not station.wrong_path:
                    self.log.emit(station.rec.seq, SpecEventKind.INVALIDATE, cycle)

    def _complete_invalidation(self, source: Station, cycle: int) -> None:
        """Treat the value misprediction like a branch misprediction
        (Section 3.1): squash everything younger and refetch."""
        self._squash_younger(source.sid)
        self._fetch_queue.clear()
        self.fetch_engine.rewind_to(
            source.rec.seq + 1, cycle, penalty=self.config.redirect_penalty
        )
        self._pending_branch = None

    # ------------------------------------------------------------------
    # branches
    # ------------------------------------------------------------------

    def _resolve_mispredicted_branch(self, branch: Station, cycle: int) -> None:
        self._squash_younger(branch.sid)
        self._fetch_queue.clear()
        self.fetch_engine.redirect(cycle, penalty=self.config.redirect_penalty)
        if self._pending_branch is branch:
            self._pending_branch = None
        branch.branch_mispredicted = False  # resolved; don't squash again

    def _squash_younger(self, sid: int) -> None:
        removed = self.window.squash_younger_than(sid)
        for station in removed:
            station.epoch += 1
            station.retired = True  # dead: events and broadcasts skip it
            rec = station.rec
            if rec.writes_register:
                writer_list = self._writers.get(rec.dest_reg)
                if writer_list and station.sid in writer_list:
                    writer_list.remove(station.sid)
            pending = self._pending_train.pop(station.sid, None)
            if pending is not None:
                # The speculative history entry for this prediction will
                # never be reconciled at retirement; drop the PC's
                # speculative history wholesale.
                self.predictor.flush_speculative(pending[0])
        self.lsq.squash_after(sid)
        self.counters.squashed += len(removed)
        if self._pending_branch is not None and self._pending_branch.sid > sid:
            self._pending_branch = None

    # ------------------------------------------------------------------
    # retire
    # ------------------------------------------------------------------

    def _speculation_involved(self, station: Station) -> bool:
        if station.predicted:
            return True
        return any(op.via_network for op in station.operands)

    def _release_delay(self, station: Station) -> int:
        if self.model is None or not self._speculation_involved(station):
            return 1  # base rule: one cycle after completion
        return max(
            self.latencies.verification_to_free_issue,
            self.latencies.verification_to_free_retirement,
        )

    def _finality_cycle(self, station: Station) -> int:
        final = station.result_cycle
        for operand in station.operands:
            if operand.valid_cycle > final:
                final = operand.valid_cycle
        if station.predicted:
            final = max(final, station.verify_cycle)
        if station.rec.writes_register:
            final = max(final, station.out_valid_cycle)
        return final

    def _retire(self) -> None:
        if self.variables.verification in (
            VerificationScheme.RETIREMENT_BASED,
            VerificationScheme.HYBRID,
        ):
            self._retirement_based_validate()
        retired = 0
        while retired < self.config.retire_width:
            head = self.window.head()
            if head is None or head.wrong_path:
                break
            if not head.executed or head.executing:
                break
            if not head.inputs_valid:
                break
            if head.predicted and not head.prediction_resolved:
                break
            if head.rec.writes_register and head.out_taints:
                break
            if self.cycle < self._finality_cycle(head) + self._release_delay(head):
                break
            self._retire_one(head)
            retired += 1

    def _retire_one(self, head: Station) -> None:
        self.window.release_head()
        head.retired = True
        rec = head.rec
        if rec.is_store:
            self.hierarchy.data_access(rec.mem_addr, is_write=True)
        self.lsq.release(head.sid)
        if rec.writes_register:
            writer_list = self._writers.get(rec.dest_reg)
            if writer_list and writer_list[0] == head.sid:
                writer_list.pop(0)
            elif writer_list and head.sid in writer_list:
                writer_list.remove(head.sid)
        pending = self._pending_train.pop(head.sid, None)
        if pending is not None:
            pc, actual, pred_correct, token = pending
            self.predictor.train(pc, actual, token)
            self.confidence.update(pc, pred_correct)
        self.counters.retired += 1
        self._last_retire_cycle = self.cycle
        if self.log.enabled:
            self.log.emit(rec.seq, SpecEventKind.RETIRE, self.cycle)
