"""High-level simulation entry points.

These wrap :class:`~repro.engine.pipeline.PipelineSimulator` into the runs
the experiments need: a baseline (no value prediction), a value-speculative
run under a named model, and the base/VP speedup pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import SpeculativeExecutionModel
from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.engine.specialize import simulator_class
from repro.metrics.accuracy import AccuracyBreakdown
from repro.metrics.counters import SimCounters
from repro.metrics.speedup import speedup as _speedup
from repro.trace.record import TraceRecord
from repro.vp.base import ValuePredictor
from repro.vp.confidence import ConfidenceEstimator, ResettingConfidenceEstimator
from repro.vp.context import ContextValuePredictor
from repro.vp.oracle import OracleConfidence
from repro.vp.update_timing import UpdateTiming


@dataclass
class SimulationResult:
    """Outcome of one timing-simulation run."""

    counters: SimCounters
    config: ProcessorConfig
    model_name: str | None = None
    confidence_kind: str | None = None
    update_timing: str | None = None
    extra: dict[str, float] = field(default_factory=dict)
    #: Which engine produced this run ("specialized", "generic (<reason>)",
    #: "batched (...)"), for perf attribution.  Excluded from equality —
    #: bit-identity checks compare *simulation* outcomes, and the same
    #: outcome may legitimately come from different engine paths.
    engine_path: str | None = field(default=None, compare=False)

    @property
    def cycles(self) -> int:
        return self.counters.cycles

    @property
    def ipc(self) -> float:
        return self.counters.ipc

    @property
    def accuracy_breakdown(self) -> AccuracyBreakdown:
        return AccuracyBreakdown.from_counters(self.counters)

    @property
    def setting_label(self) -> str:
        """The paper's timing/confidence notation, e.g. ``D/R`` or ``I/O``."""
        if self.update_timing is None or self.confidence_kind is None:
            return "base"
        return f"{self.update_timing}/{self.confidence_kind}"


def make_confidence(kind: str) -> ConfidenceEstimator:
    """Build a confidence estimator from the paper's R/O notation."""
    normalized = kind.strip().upper()
    if normalized in ("R", "REAL"):
        return ResettingConfidenceEstimator()
    if normalized in ("O", "ORACLE"):
        return OracleConfidence()
    raise ValueError(f"unknown confidence kind {kind!r}; use 'real' or 'oracle'")


def run_baseline(
    trace: list[TraceRecord],
    config: ProcessorConfig,
    *,
    tracer=None,
    hierarchy=None,
    fetch_engine=None,
    specialize: bool | None = None,
) -> SimulationResult:
    """Simulate the base processor (no value prediction).

    ``tracer`` optionally attaches a :class:`repro.obs.PipelineTracer`
    (or any object with its duck type) for lifecycle/latency recording.
    ``hierarchy``/``fetch_engine`` inject pre-built collaborators — the
    batched engine (:mod:`repro.engine.batched`) uses them to share one
    predicted fetch stream across lanes; leave them ``None`` otherwise.
    ``specialize`` forces the config-specialized engine on/off; ``None``
    (the default) follows ``REPRO_ENGINE_SPECIALIZE`` (on unless
    disabled — see :mod:`repro.engine.specialize`).
    """
    engine, engine_path = simulator_class(
        config, None, tracer=tracer, enabled=specialize
    )
    simulator = engine(
        trace,
        config,
        model=None,
        hierarchy=hierarchy,
        fetch_engine=fetch_engine,
        tracer=tracer,
    )
    counters = simulator.run()
    return SimulationResult(
        counters=counters, config=config, engine_path=engine_path
    )


def run_trace(
    trace: list[TraceRecord],
    config: ProcessorConfig,
    model: SpeculativeExecutionModel,
    *,
    confidence: str | ConfidenceEstimator = "real",
    update_timing: UpdateTiming | str = UpdateTiming.DELAYED,
    predictor: ValuePredictor | None = None,
    tracer=None,
    hierarchy=None,
    fetch_engine=None,
    confidence_kind: str | None = None,
    specialize: bool | None = None,
) -> SimulationResult:
    """Simulate one value-speculative run.

    ``confidence`` accepts the paper's shorthand ("real"/"oracle") or a
    ready estimator; ``update_timing`` accepts "I"/"D" or the enum;
    ``tracer`` optionally attaches an observability tracer (see
    :mod:`repro.obs`).  ``hierarchy``/``fetch_engine`` inject pre-built
    collaborators (see :mod:`repro.engine.batched`); ``confidence_kind``
    overrides the paper-notation label when ``confidence`` is a wrapper
    (e.g. a replay estimator) whose kind cannot be inferred by type.
    """
    if isinstance(update_timing, str):
        update_timing = UpdateTiming(update_timing.strip().upper())
    if isinstance(confidence, str):
        if confidence_kind is None:
            confidence_kind = (
                "O" if confidence.strip().upper() in ("O", "ORACLE") else "R"
            )
        confidence = make_confidence(confidence)
    elif confidence_kind is None:
        confidence_kind = "O" if isinstance(confidence, OracleConfidence) else "R"
    # Resolve the collaborator *instances* before picking the engine
    # class: the specializer's knob derivation is type- and
    # instance-sensitive and must see exactly what the simulator will.
    predictor = predictor or ContextValuePredictor()
    engine, engine_path = simulator_class(
        config,
        model,
        predictor=predictor,
        confidence=confidence,
        update_timing=update_timing,
        tracer=tracer,
        enabled=specialize,
    )
    simulator = engine(
        trace,
        config,
        model,
        predictor=predictor,
        confidence=confidence,
        update_timing=update_timing,
        hierarchy=hierarchy,
        fetch_engine=fetch_engine,
        tracer=tracer,
    )
    counters = simulator.run()
    return SimulationResult(
        counters=counters,
        config=config,
        model_name=model.name,
        confidence_kind=confidence_kind,
        update_timing=update_timing.label,
        engine_path=engine_path,
    )


def run_speedup(
    trace: list[TraceRecord],
    config: ProcessorConfig,
    model: SpeculativeExecutionModel,
    *,
    confidence: str = "real",
    update_timing: UpdateTiming | str = UpdateTiming.DELAYED,
) -> tuple[float, SimulationResult, SimulationResult]:
    """Run base + VP and return (speedup, base_result, vp_result)."""
    base = run_baseline(trace, config)
    vp = run_trace(
        trace, config, model, confidence=confidence, update_timing=update_timing
    )
    return _speedup(base.cycles, vp.cycles), base, vp
