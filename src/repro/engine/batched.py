"""Batched multi-config execution: N sweep points per trace pass.

A sweep grid is many configurations of one machine over one instruction
stream.  The scalar path pays the whole front end — trace walk, branch
predictor training, misprediction discovery — once per point.  This
module pays it once per *batch*: the correct-path fetch stream (which
record is fetched, and whether it mispredicts) is a pure function of
(trace, frontend configuration) and independent of per-lane timing, so
one recorded stream feeds every lane that shares the frontend key.

Why that is sound (the bit-identity argument, pinned by
``tests/test_batched.py`` against every golden snapshot):

* The branch predictor, BTB and RAS are trained only on correct-path
  records, in trace order — ``fetch_raw`` never shows them a wrong-path
  record, and wrong-path branches never redirect.  Their state evolution
  is therefore identical for every lane, whatever each lane's timing.
* The I-cache affects *when* fetch stalls, never *which* correct-path
  record comes next — so I-cache state stays per-lane while the stream
  is shared.
* The one exception is ``InvalidationScheme.COMPLETE``, whose
  value-misprediction recovery rewinds fetch and re-trains the branch
  predictor on re-walked records; the batch planner routes such jobs to
  the scalar path (:func:`batch_compatible`).

On top of the shared stream, immediate-update-timing lanes replay
recorded value-prediction columns (:mod:`repro.vp.replay`): under I
timing with unlimited predictor ports the predict/train interleaving is
also trace-pure, so the (predicted value, confident) columns are
recorded once per predictor/confidence key and shared.

State layout is struct-of-arrays at the batch level: the shared columns
(trace rows, mispredict flags as a compact byte column, predicted-value
lists, confidence byte columns) are read-only and shared across lanes;
everything mutable (window, taint masks, caches, event buckets) lives in
the ordinary per-lane :class:`~repro.engine.pipeline.PipelineSimulator`,
which is what keeps lanes bit-identical to scalar runs by construction.
"""

from __future__ import annotations

import weakref
from functools import partial

from repro.core.variables import InvalidationScheme
from repro.engine.pipeline import _make_bpred
from repro.engine.sim import (
    SimulationResult,
    make_confidence,
    run_baseline,
    run_trace,
)
from repro.frontend.fetch import FetchEngine, _WrongPathGenerator, _wrong_path_cache
from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode
from repro.mem.hierarchy import make_paper_hierarchy
from repro.vp.oracle import OracleConfidence
from repro.vp.replay import (
    ReplayConfidence,
    ReplayValuePredictor,
    eligible_records,
    record_confidence,
    record_predictions,
)


def frontend_key(config) -> tuple:
    """The configuration fields that determine the correct-path fetch
    stream.  Two lanes with equal keys share one recorded stream; the
    I-cache and wrong-path settings are deliberately absent (both are
    per-lane timing, not stream content)."""
    return (
        config.branch_predictor,
        config.branch_history_bits,
        config.branch_table_bits,
        config.perfect_branches,
        config.ideal_branch_targets,
    )


def build_fetch_stream(rows, config) -> bytearray:
    """Record the mispredict flag per correct-path record.

    Replays exactly the correct-path half of
    :meth:`~repro.frontend.fetch.FetchEngine.fetch_raw` — including its
    short-circuits, which matter: a direction-mispredicted branch never
    consults (or trains) the BTB, and under ideal targets the BTB/RAS
    are never consulted at all.  The golden bit-identity suite pins the
    lockstep.
    """
    bpred = None if config.perfect_branches else _make_bpred(config)
    btb = ras = None
    if not config.ideal_branch_targets:
        from repro.frontend.btb import BranchTargetBuffer
        from repro.frontend.ras import ReturnAddressStack

        btb = BranchTargetBuffer()
        ras = ReturnAddressStack()
    # Borrow FetchEngine's own _target_correct so the target-prediction
    # path has exactly one implementation.
    probe = FetchEngine(
        [],
        None,
        bpred,
        model_wrong_path=config.model_wrong_path,
        ideal_branch_targets=config.ideal_branch_targets,
        btb=btb,
        ras=ras,
    )
    target_correct = probe._target_correct
    ideal_targets = config.ideal_branch_targets
    bp_update = bpred.update if bpred is not None else None
    stream = bytearray(len(rows))
    for i, rec in enumerate(rows):
        if rec.is_branch:
            direction_ok = (
                bp_update(rec.pc, bool(rec.branch_taken))
                if bp_update is not None
                else True
            )
            mispredicted = not direction_ok or not (
                ideal_targets or target_correct(rec)
            )
        elif rec.is_control:
            if ras is not None and rec.opcode in (Opcode.JAL, Opcode.JALR):
                ras.push(rec.pc + INSTRUCTION_BYTES)
            mispredicted = not (ideal_targets or target_correct(rec))
        else:
            continue
        if mispredicted:
            stream[i] = 1
    return stream


def build_fetch_columns(rows, stream, block_bytes: int):
    """The derived shared columns the segmented fetch replay runs on.

    ``run_end[i]`` — end of the I-cache block run starting at ``i``: the
    first index past ``i`` whose record lives in a different block (the
    whole trace when caches are absent, ``block_bytes == 0``).
    ``next_mis[i]`` — the first index ``>= i`` whose record mispredicts
    (``len(rows)`` when none does).  Both are pure functions of the rows
    and the recorded stream, so every lane sharing the stream shares
    them.
    """
    n = len(rows)
    run_end = [n] * n
    if block_bytes:
        run_end = [0] * n
        blocks = [rec.pc // block_bytes for rec in rows]
        j = 0
        while j < n:
            block = blocks[j]
            k = j + 1
            while k < n and blocks[k] == block:
                k += 1
            run_end[j:k] = [k] * (k - j)
            j = k
    next_mis = [n] * n
    nm = n
    for i in range(n - 1, -1, -1):
        if stream[i]:
            nm = i
        next_mis[i] = nm
    return run_end, next_mis


class StreamFetchEngine(FetchEngine):
    """A :class:`FetchEngine` that replays a recorded mispredict stream
    instead of consulting live branch-prediction state.

    Per-lane timing state — I-cache, stall cycles, wrong-path synthesis,
    redirects — is inherited unchanged; only the prediction *content*
    comes from the shared columns.  Replay consumes the trace in
    I-cache-block runs: one icache probe per block run, then a C-level
    slice for the records inside it (the per-record Python loop the
    scalar engine pays is exactly the cost batching amortizes away).
    ``rewind_to`` is forbidden (complete invalidation re-trains the
    branch predictor on re-walked records, which a shared stream cannot
    express); the batch planner keeps such models on the scalar path.
    """

    def __init__(
        self,
        rows,
        stream,
        icache,
        *,
        model_wrong_path=True,
        seed=7,
        columns=None,
    ):
        super().__init__(
            rows,
            icache,
            None,
            model_wrong_path=model_wrong_path,
            ideal_branch_targets=True,
            btb=None,
            ras=None,
            seed=seed,
        )
        self._stream = stream
        block_bytes = icache.block_bytes if icache is not None else 0
        if columns is None:
            columns = build_fetch_columns(self.trace, stream, block_bytes)
        self._run_end, self._next_mis = columns

    def fetch_raw(self, cycle, max_count, ready=0):
        # Kept in lockstep with FetchEngine.fetch_raw (the golden
        # bit-identity suite pins it): identical per-record decisions,
        # taken a block run at a time.
        if cycle < self._stall_until or max_count <= 0:
            return []
        out = []
        trace = self.trace
        trace_len = len(trace)
        stream = self._stream
        run_end = self._run_end
        next_mis = self._next_mis
        icache = self.icache
        block_bytes = icache.block_bytes if icache is not None else 0
        icache_hit = icache.hit_latency if icache is not None else 0
        last_block = self._last_block
        index = self._index
        wrong_gen = self._wrong_path_gen
        n_correct = 0
        n_wrong = 0
        count = 0
        while count < max_count:
            if wrong_gen is not None:
                # Wrong-path replay: synthetic pcs are sequential, so the
                # block-run length is pure arithmetic; records already
                # memoized by the shared stream cache are delivered as a
                # slice, and only stream growth runs the generator.
                cache = wrong_gen._cache
                records = cache[0]
                pos = wrong_gen._pos
                if pos >= len(records):
                    rec = wrong_gen.next()
                    if icache is not None:
                        block = rec.pc // block_bytes
                        if block != last_block:
                            latency = icache.access(rec.pc)
                            last_block = block
                            if latency > icache_hit:
                                # The generator already consumed the
                                # record; the scalar engine drops it on a
                                # stall (never refetched) — same here.
                                self._stall_until = cycle + latency
                                self.icache_stall_cycles += (
                                    latency - icache_hit
                                )
                                break
                    out.append((rec, True, False, ready))
                    n_wrong += 1
                    count += 1
                    continue
                rec = records[pos]
                pc = rec.pc
                if icache is not None:
                    block = pc // block_bytes
                    if block != last_block:
                        latency = icache.access(pc)
                        last_block = block
                        if latency > icache_hit:
                            self._stall_until = cycle + latency
                            self.icache_stall_cycles += latency - icache_hit
                            # Match the scalar engine: the stalled record
                            # counts as consumed by the generator and is
                            # dropped, never refetched.
                            wrong_gen._pos = pos + 1
                            break
                    take = (
                        block_bytes - pc % block_bytes + INSTRUCTION_BYTES - 1
                    ) // INSTRUCTION_BYTES
                else:
                    take = max_count
                room = max_count - count
                if take > room:
                    take = room
                avail = len(records) - pos
                if take > avail:
                    take = avail
                if take == 1:
                    out.append((rec, True, False, ready))
                else:
                    out.extend(
                        [(r, True, False, ready)
                         for r in records[pos : pos + take]]
                    )
                wrong_gen._pos = pos + take
                n_wrong += take
                count += take
                continue
            if index >= trace_len:
                break
            rec = trace[index]
            if icache is not None:
                block = rec.pc // block_bytes
                if block != last_block:
                    latency = icache.access(rec.pc)
                    last_block = block
                    if latency > icache_hit:
                        self._stall_until = cycle + latency
                        self.icache_stall_cycles += latency - icache_hit
                        break
            # Consume the rest of this block run (or up to width /
            # the next mispredicting record) in one slice.
            end = run_end[index]
            limit = index + (max_count - count)
            if limit < end:
                end = limit
            nm = next_mis[index]
            if nm < end:
                end = nm
            if end > index:
                out.extend(
                    [(r, False, False, ready) for r in trace[index:end]]
                )
                n_correct += end - index
                count += end - index
                index = end
                continue
            # index is a mispredicting record inside the current run.
            index += 1
            out.append((rec, False, True, ready))
            n_correct += 1
            count += 1
            if self.model_wrong_path:
                wrong_gen = self._wrong_path_gen = _WrongPathGenerator(
                    cache=_wrong_path_cache(
                        self._seed ^ rec.seq, rec.next_pc + 0x4000
                    )
                )
            else:
                self._stall_until = 1 << 60  # wait for redirect
            break
        self._index = index
        self._last_block = last_block
        if n_correct:
            self.fetched_correct += n_correct
        if n_wrong:
            self.fetched_wrong_path += n_wrong
        return out

    def rewind_to(self, seq, cycle, *, penalty=1):
        raise RuntimeError(
            "StreamFetchEngine cannot rewind: complete invalidation "
            "re-trains branch prediction and must run on the scalar path "
            "(the batch planner enforces this)"
        )


def batch_compatible(job) -> tuple[bool, str | None]:
    """Whether a job may join a shared-stream batch, and if not, why.

    Jobs that fail this check are executed on the scalar path by the
    planner (:func:`repro.harness.parallel.plan_units`), never errored.
    """
    model = job.model
    if (
        model is not None
        and model.variables.invalidation is InvalidationScheme.COMPLETE
    ):
        return False, "complete invalidation rewinds the shared fetch stream"
    return True, None


def _spec_key(obj) -> str:
    """A stable identity for a predictor/confidence factory spec, so two
    jobs carrying equal factories share one recorded column."""
    if obj is None:
        return "default"
    if isinstance(obj, str):
        return f"kind:{obj.strip().upper()}"
    if isinstance(obj, partial):
        inner = _spec_key(obj.func)
        kwargs = ",".join(f"{k}={v!r}" for k, v in sorted(obj.keywords.items()))
        return f"partial({inner},{obj.args!r},{kwargs})"
    name = getattr(obj, "__qualname__", None) or getattr(obj, "__name__", None)
    if name is not None:
        return f"{getattr(obj, '__module__', '?')}.{name}"
    return None  # a pre-built instance: not shareable


def _timing_label(update_timing) -> str:
    return getattr(update_timing, "value", update_timing).strip().upper()


def _build_confidence(spec):
    return spec() if callable(spec) else make_confidence(spec)


class BatchPlan:
    """Shared read-only columns for one (trace, job group) batch."""

    def __init__(self, rows):
        self.rows = rows
        self._fetch_streams: dict[tuple, bytearray] = {}
        self._fetch_columns: dict[tuple, tuple] = {}
        self._eligibles: dict[str, list] = {}
        self._vp_values: dict[tuple, list] = {}
        self._conf_flags: dict[tuple, tuple[bytearray, str]] = {}

    def fetch_stream(self, config) -> bytearray:
        key = frontend_key(config)
        stream = self._fetch_streams.get(key)
        if stream is None:
            stream = self._fetch_streams[key] = build_fetch_stream(
                self.rows, config
            )
        return stream

    def fetch_columns(self, config, block_bytes: int) -> tuple:
        key = (frontend_key(config), block_bytes)
        columns = self._fetch_columns.get(key)
        if columns is None:
            columns = self._fetch_columns[key] = build_fetch_columns(
                self.rows, self.fetch_stream(config), block_bytes
            )
        return columns

    def eligibles(self, predict_classes: str) -> list:
        recs = self._eligibles.get(predict_classes)
        if recs is None:
            recs = self._eligibles[predict_classes] = eligible_records(
                self.rows, predict_classes
            )
        return recs

    def vp_columns(self, job):
        """(ReplayValuePredictor, ReplayConfidence, confidence_kind) for
        an immediate-timing lane, or ``None`` when the lane must run a
        live predictor (delayed timing, limited ports, or an
        unshareable spec)."""
        if job.model is None or _timing_label(job.update_timing) != "I":
            return None
        config = job.config
        if config.vp_ports:
            return None  # port arbitration is per-lane timing
        pred_key_part = _spec_key(job.predictor)
        conf_key_part = _spec_key(job.confidence)
        if pred_key_part is None or conf_key_part is None:
            return None  # pre-built instances cannot be shared
        eligibles = self.eligibles(config.predict_classes)
        pkey = (pred_key_part, config.predict_classes)
        values = self._vp_values.get(pkey)
        if values is None:
            from repro.vp.context import ContextValuePredictor

            predictor = (
                job.predictor() if job.predictor is not None
                else ContextValuePredictor()
            )
            values = self._vp_values[pkey] = record_predictions(
                eligibles, predictor
            )
        ckey = (conf_key_part, pkey, config.equality_ignore_low_bits)
        cached = self._conf_flags.get(ckey)
        if cached is None:
            estimator = _build_confidence(job.confidence)
            kind = "O" if isinstance(estimator, OracleConfidence) else "R"
            flags, codes = record_confidence(
                eligibles, values, estimator, config.equality_ignore_low_bits
            )
            cached = self._conf_flags[ckey] = (flags, codes, kind)
        flags, codes, kind = cached
        return ReplayValuePredictor(values, codes), ReplayConfidence(flags), kind


#: Recorded columns are pure functions of the trace rows, so plans are
#: reused across run_batch calls on the same trace object (sweeps and
#: cluster workers run many batches over one staged trace).  Keyed
#: weakly: dropping the trace drops its columns.
_PLAN_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _plan_for(trace) -> BatchPlan:
    rows = trace.rows() if hasattr(trace, "rows") else trace
    try:
        plan = _PLAN_CACHE.get(trace)
        if plan is None or plan.rows is not rows:
            plan = _PLAN_CACHE[trace] = BatchPlan(rows)
        return plan
    except TypeError:  # unweakrefable trace (a plain list of records)
        return BatchPlan(rows)


def run_batch(jobs, trace) -> list[SimulationResult]:
    """Run a group of jobs sharing one trace as lockstep-free lanes over
    shared columns; results are positionally aligned with ``jobs`` and
    bit-identical to the scalar path.

    Every job must share (benchmark, trace) and pass
    :func:`batch_compatible` — the planner guarantees both.
    """
    plan = _plan_for(trace)
    return [_run_lane(job, plan) for job in jobs]


def _run_lane(job, plan: BatchPlan) -> SimulationResult:
    """One batch lane.  Lanes ride ``run_baseline``/``run_trace``, so
    each picks up its config-specialized engine class automatically
    (:mod:`repro.engine.specialize` — replay lanes fingerprint the
    Replay* collaborator types and fold the packed-code dispatch branch
    in); the result's engine path is prefixed so perf investigations can
    tell a batched lane from a scalar run."""
    result = _run_lane_inner(job, plan)
    result.engine_path = f"batched ({result.engine_path or 'generic'})"
    return result


def _run_lane_inner(job, plan: BatchPlan) -> SimulationResult:
    config = job.config
    hierarchy = make_paper_hierarchy(perfect=config.perfect_caches)
    l1i = hierarchy.l1i
    block_bytes = l1i.block_bytes if l1i is not None else 0
    engine = StreamFetchEngine(
        plan.rows,
        plan.fetch_stream(config),
        l1i,
        model_wrong_path=config.model_wrong_path,
        columns=plan.fetch_columns(config, block_bytes),
    )
    if job.model is None:
        return run_baseline(
            plan.rows, config, hierarchy=hierarchy, fetch_engine=engine
        )
    replay = plan.vp_columns(job)
    if replay is not None:
        predictor, confidence, kind = replay
        return run_trace(
            plan.rows,
            config,
            job.model,
            confidence=confidence,
            update_timing=job.update_timing,
            predictor=predictor,
            hierarchy=hierarchy,
            fetch_engine=engine,
            confidence_kind=kind,
        )
    confidence = job.confidence() if callable(job.confidence) else job.confidence
    predictor = job.predictor() if job.predictor is not None else None
    return run_trace(
        plan.rows,
        config,
        job.model,
        confidence=confidence,
        update_timing=job.update_timing,
        predictor=predictor,
        hierarchy=hierarchy,
        fetch_engine=engine,
    )
