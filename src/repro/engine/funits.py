"""Functional-unit execution latencies.

Section 5.1: "There are no resource constraints except limited number of
data cache ports.  All simple integer instructions require one cycle to
execute.  Complex integer operations and floating point operations,
depending on the type, require from 2 to 24 cycles."  The per-class values
chosen below sit inside that band and follow SimpleScalar's defaults where
the paper is silent.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass

#: Execution latency per operation class, in cycles.  LOAD covers address
#: generation only — the memory access latency comes from the cache model
#: (or single-cycle store forwarding).  STORE is its address generation;
#: the actual write happens at retirement.
LATENCY_BY_CLASS: dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 20,
    OpClass.FADD: 2,
    OpClass.FMUL: 4,
    OpClass.FDIV: 24,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.IJUMP: 1,
    OpClass.SYSCALL: 1,
}


def execution_latency(opclass: OpClass) -> int:
    """Cycles the functional unit needs for an operation of ``opclass``."""
    return LATENCY_BY_CLASS[opclass]
