"""Functional-unit execution latencies.

Section 5.1: "There are no resource constraints except limited number of
data cache ports.  All simple integer instructions require one cycle to
execute.  Complex integer operations and floating point operations,
depending on the type, require from 2 to 24 cycles."  The per-class values
sit inside that band and follow SimpleScalar's defaults where the paper is
silent.

The table itself lives in :mod:`repro.isa.opcodes` (as ``CLASS_LATENCY``)
so that trace records can precompute their latency at construction without
importing the engine package; this module re-exports it under its
historical name.
"""

from __future__ import annotations

from repro.isa.opcodes import CLASS_LATENCY, OpClass

#: Execution latency per operation class, in cycles.  LOAD covers address
#: generation only — the memory access latency comes from the cache model
#: (or single-cycle store forwarding).  STORE is its address generation;
#: the actual write happens at retirement.
LATENCY_BY_CLASS: dict[OpClass, int] = CLASS_LATENCY


def execution_latency(opclass: OpClass) -> int:
    """Cycles the functional unit needs for an operation of ``opclass``."""
    return LATENCY_BY_CLASS[opclass]
