"""Config-specialized engine codegen: one branch-free class per sweep point.

The generic :class:`~repro.engine.pipeline.PipelineSimulator` hoists its
configuration knobs (verification scheme, update timing, port limits,
tracer/log guards, widths, latencies) to instance attributes and local
variables, but still *tests* them every cycle.  For any single sweep
point those tests have one answer, fixed for the whole run.  This module
rewrites the hot stage methods with the answers baked in:

1. :func:`repro.engine.templates.derive_inputs` evaluates the knob
   expressions of ``__init__`` for the point and fingerprints them.
2. Each registry method's source (``inspect.getsource`` on the *generic*
   method — one source of truth, no drift) is parsed and run through an
   iterative constant folder: knob attribute loads become literals,
   single-assignment locals bound to folded constants propagate and
   disappear, comparisons whose operands all resolve (including enum
   members) evaluate, ``and``/``or``/``not`` simplify with Python value
   semantics preserved, and ``if`` statements with constant tests keep
   only the live branch.
3. The folded methods are assembled into the source of a
   ``SpecializedPipelineSimulator`` subclass, compiled under a synthetic
   filename, ``exec``'d in a namespace copied from the pipeline module,
   and memoized in :data:`_CLASS_CACHE` keyed by the fingerprint — the
   same canonical-repr + sha256 discipline as
   :func:`repro.cluster.serial.job_key`.

:func:`simulator_class` is the only entry point and **never raises**:
disabled (``REPRO_ENGINE_SPECIALIZE=0`` / ``--no-specialize``),
tracer-attached, unsupported-knob and codegen-failure cases all fall
back to the generic class with a human-readable engine-path reason
(failures are cached too, so a bad combination pays codegen once).
Correctness is pinned by tests/test_specialize.py: every golden and
variant snapshot must be bit-identical generic vs specialized.
"""

from __future__ import annotations

import ast
import enum
import inspect
import logging
import os
import textwrap

from repro.engine import pipeline as _pipeline
from repro.engine.pipeline import PipelineSimulator
from repro.engine.templates import (
    STAGE_METHODS,
    SpecializationInputs,
    derive_inputs,
    verify_template,
)
from repro.vp.update_timing import UpdateTiming

#: Env var: any of {"0", "false", "no", "off"} (case-insensitive)
#: disables specialization process-wide; unset or anything else leaves
#: it on.  Exported to workers by the ``--no-specialize`` CLI flag.
SPECIALIZE_ENV_VAR = "REPRO_ENGINE_SPECIALIZE"

_FALSY = frozenset({"0", "false", "no", "off"})

_log = logging.getLogger(__name__)

#: Fingerprint -> (class | None, engine-path string).  ``None`` records
#: a failed codegen so the fallback reason is replayed without retrying.
_CLASS_CACHE: dict[str, tuple[type | None, str]] = {}

#: Enum classes visible from the pipeline module, for resolving
#: ``SchemeClass.MEMBER`` operands in comparison folding.
_ENUM_CLASSES = {
    name: obj
    for name, obj in vars(_pipeline).items()
    if isinstance(obj, enum.EnumMeta)
}

_MISSING = object()

#: Folding iterations before declaring non-convergence (each pass both
#: folds and discovers new propagatable locals; real methods settle in
#: three or four).
_MAX_PASSES = 24


def specialization_enabled() -> bool:
    """The process-wide default from :data:`SPECIALIZE_ENV_VAR`."""
    return os.environ.get(SPECIALIZE_ENV_VAR, "").strip().lower() not in _FALSY


class SpecializationUnsupported(Exception):
    """A registry method cannot be safely folded for this point."""


def _is_embeddable(value) -> bool:
    """Can ``value`` be written into source as an ``ast.Constant``?"""
    return value is None or isinstance(value, (bool, int, float, str))


def _cmp(op: ast.cmpop, left, right):
    if isinstance(op, ast.Is):
        return left is right
    if isinstance(op, ast.IsNot):
        return left is not right
    if isinstance(op, ast.Eq):
        return left == right
    if isinstance(op, ast.NotEq):
        return left != right
    if isinstance(op, ast.In):
        return left in right
    if isinstance(op, ast.NotIn):
        return left not in right
    if isinstance(op, ast.Lt):
        return left < right
    if isinstance(op, ast.LtE):
        return left <= right
    if isinstance(op, ast.Gt):
        return left > right
    if isinstance(op, ast.GtE):
        return left >= right
    raise SpecializationUnsupported(f"comparison op {op!r}")


class _Folder(ast.NodeTransformer):
    """One fold pass: substitute, evaluate, and prune what the current
    constant/fact environment proves.  Sets ``changed`` when anything
    moved so the caller can iterate to a fixpoint."""

    def __init__(
        self,
        inputs: SpecializationInputs,
        const_locals: dict,
        fact_locals: dict,
    ):
        self.inputs = inputs
        self.const_locals = const_locals
        self.fact_locals = fact_locals
        self.changed = False

    # -- value resolution ------------------------------------------------

    def _resolve(self, node):
        """The runtime value of ``node``, or ``_MISSING``.  Resolved
        values may be non-embeddable (enum members) — those only feed
        comparison evaluation, never literal substitution."""
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in self.const_locals:
                return self.const_locals[node.id]
            return _MISSING
        if isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
            elements = [self._resolve(element) for element in node.elts]
            if any(element is _MISSING for element in elements):
                return _MISSING
            return tuple(elements)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            base = node.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    if node.attr in self.inputs.scalar_knobs:
                        return self.inputs.scalar_knobs[node.attr]
                    if node.attr == "update_timing":
                        return self.inputs.update_timing
                    return _MISSING
                enum_class = _ENUM_CLASSES.get(base.id)
                if enum_class is not None:
                    return getattr(enum_class, node.attr, _MISSING)
                return _MISSING
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in ("config", "variables", "latencies")
            ):
                return getattr(
                    getattr(self.inputs, base.attr), node.attr, _MISSING
                )
        return _MISSING

    def _notnone_fact(self, node):
        """The identity-with-None fact for ``node`` (True = proven not
        None, False = proven None), or ``None`` when unknown."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self.inputs.notnone_attrs.get(node.attr)
        if isinstance(node, ast.Name):
            return self.fact_locals.get(node.id)
        return None

    # -- substitution ----------------------------------------------------

    def visit_Name(self, node):
        if isinstance(node.ctx, ast.Load) and node.id in self.const_locals:
            self.changed = True
            return ast.copy_location(
                ast.Constant(self.const_locals[node.id]), node
            )
        return node

    def visit_Attribute(self, node):
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and (
                    node.attr in self.inputs.scalar_knobs
                    or node.attr in self.inputs.notnone_attrs
                )
            ):
                raise SpecializationUnsupported(
                    f"method stores to folded attribute self.{node.attr}"
                )
            self.generic_visit(node)
            return node
        self.generic_visit(node)
        value = self._resolve(node)
        if value is not _MISSING and _is_embeddable(value):
            self.changed = True
            return ast.copy_location(ast.Constant(value), node)
        return node

    # -- evaluation ------------------------------------------------------

    def visit_Compare(self, node):
        self.generic_visit(node)
        if (
            len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Is, ast.IsNot))
            and isinstance(node.comparators[0], ast.Constant)
            and node.comparators[0].value is None
        ):
            fact = self._notnone_fact(node.left)
            if fact is not None:
                result = fact if isinstance(node.ops[0], ast.IsNot) else not fact
                self.changed = True
                return ast.copy_location(ast.Constant(result), node)
        operands = [self._resolve(node.left)]
        operands += [self._resolve(comparator) for comparator in node.comparators]
        if any(operand is _MISSING for operand in operands):
            return node
        try:
            result = True
            left = operands[0]
            for op, right in zip(node.ops, operands[1:]):
                if not _cmp(op, left, right):
                    result = False
                    break
                left = right
        except Exception:
            return node
        self.changed = True
        return ast.copy_location(ast.Constant(result), node)

    def visit_BoolOp(self, node):
        self.generic_visit(node)
        truncate_on = not isinstance(node.op, ast.And)
        last = len(node.values) - 1
        kept = []
        for index, value in enumerate(node.values):
            if isinstance(value, ast.Constant):
                if bool(value.value) == truncate_on:
                    # `x and False ...` / `x or True ...`: nothing after
                    # this operand can evaluate, and it is the result.
                    kept.append(value)
                    break
                if index != last:
                    # Neutral operand (`True and`, `False or`): only the
                    # final operand's *value* can be the expression's.
                    continue
            kept.append(value)
        if len(kept) == len(node.values):
            return node
        self.changed = True
        if len(kept) == 1:
            return ast.copy_location(kept[0], node)
        return ast.copy_location(ast.BoolOp(op=node.op, values=kept), node)

    def visit_UnaryOp(self, node):
        self.generic_visit(node)
        if isinstance(node.op, ast.Not) and isinstance(node.operand, ast.Constant):
            self.changed = True
            return ast.copy_location(
                ast.Constant(not node.operand.value), node
            )
        return node

    # -- dead-branch elimination ----------------------------------------

    def visit_If(self, node):
        self.generic_visit(node)
        if not node.body:
            node.body = [ast.Pass()]
        if isinstance(node.test, ast.Constant):
            self.changed = True
            taken = node.body if node.test.value else node.orelse
            return taken or None
        return node

    def visit_IfExp(self, node):
        self.generic_visit(node)
        if isinstance(node.test, ast.Constant):
            self.changed = True
            return node.body if node.test.value else node.orelse
        return node

    # While tests are deliberately *not* used for elimination: folding
    # their operands is safe, removing a loop is not worth proving.


def _binding_candidates(func: ast.FunctionDef) -> dict[str, ast.Assign]:
    """Locals eligible for constant propagation: bound exactly once, by
    a simple single-``Name`` ``Assign``, and never rebound/shadowed by
    any other binding construct (loop targets, comprehensions, lambdas,
    ``del``, augmented assignment, nested scopes, ...)."""
    counts: dict[str, int] = {}
    simple: dict[str, ast.Assign] = {}
    disqualified: set[str] = set()

    def _disqualify_names(target) -> None:
        for inner in ast.walk(target):
            if isinstance(inner, ast.Name):
                disqualified.add(inner.id)

    args = func.args
    for arg in (
        args.posonlyargs + args.args + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        disqualified.add(arg.arg)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                counts[name] = counts.get(name, 0) + 1
                simple[name] = node
            else:
                for target in node.targets:
                    _disqualify_names(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            _disqualify_names(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            _disqualify_names(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    _disqualify_names(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            _disqualify_names(node.target)
        elif isinstance(node, ast.NamedExpr):
            _disqualify_names(node.target)
        elif isinstance(node, ast.Lambda):
            inner = node.args
            for arg in (
                inner.posonlyargs + inner.args + inner.kwonlyargs
                + ([inner.vararg] if inner.vararg else [])
                + ([inner.kwarg] if inner.kwarg else [])
            ):
                disqualified.add(arg.arg)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func:
                disqualified.add(node.name)
        elif isinstance(node, ast.ClassDef):
            disqualified.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            disqualified.update(node.names)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                _disqualify_names(target)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            disqualified.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                disqualified.add(alias.asname or alias.name.split(".")[0])

    return {
        name: node
        for name, node in simple.items()
        if counts.get(name) == 1 and name not in disqualified
    }


def _strip_annotations(func: ast.FunctionDef) -> None:
    """Signature annotations reference lazily-evaluated names (the
    pipeline module uses ``from __future__ import annotations``); the
    generated module does not, so drop them."""
    func.returns = None
    func.decorator_list = []
    args = func.args
    for arg in (
        args.posonlyargs + args.args + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        arg.annotation = None


class _AssignRemover(ast.NodeTransformer):
    def __init__(self, dead: set[int]):
        self.dead = dead

    def visit_Assign(self, node):
        if id(node) in self.dead:
            return None
        self.generic_visit(node)
        return node


def _ensure_bodies(func: ast.FunctionDef) -> None:
    """Branch elimination can leave a required statement list empty;
    re-insert ``pass`` so the function still parses."""
    for node in ast.walk(func):
        if getattr(node, "body", None) == []:
            node.body = [ast.Pass()]


def specialize_method(name: str, inputs: SpecializationInputs) -> ast.FunctionDef:
    """Parse the generic method and fold it to a fixpoint for one point."""
    source = textwrap.dedent(inspect.getsource(getattr(PipelineSimulator, name)))
    func = ast.parse(source).body[0]
    if not isinstance(func, ast.FunctionDef):
        raise SpecializationUnsupported(f"{name} is not a plain function")
    _strip_annotations(func)
    candidates = _binding_candidates(func)
    const_locals: dict[str, object] = {}
    fact_locals: dict[str, bool] = {}
    dead_assigns: set[int] = set()
    for _ in range(_MAX_PASSES):
        folder = _Folder(inputs, const_locals, fact_locals)
        func = folder.visit(func)
        changed = folder.changed
        live = {id(node) for node in ast.walk(func)}
        for local_name, assign in candidates.items():
            if local_name in const_locals or local_name in fact_locals:
                continue
            if id(assign) not in live:
                continue
            value = assign.value
            if isinstance(value, ast.Constant) and _is_embeddable(value.value):
                # The RHS folded to a literal: propagate and drop the
                # (side-effect-free) assignment.
                const_locals[local_name] = value.value
                dead_assigns.add(id(assign))
                changed = True
            else:
                fact = folder._notnone_fact(value)
                if fact is not None:
                    # The local aliases a fact-bearing object (kept —
                    # it is used as a value) and inherits its fact.
                    fact_locals[local_name] = fact
                    changed = True
        if not changed:
            break
    else:
        raise SpecializationUnsupported(f"folding {name} did not converge")
    func = _AssignRemover(dead_assigns).visit(func)
    _ensure_bodies(func)
    ast.fix_missing_locations(func)
    return func


def build_class_source(inputs: SpecializationInputs) -> str:
    """The full source of the specialized subclass for one point."""
    names = list(STAGE_METHODS)
    if not inputs.scalar_knobs["_fast_vp"]:
        # Only ever invoked through the __init__ rebinding that the
        # fused-VP knob gates; folding its unguarded table subscripts
        # against _fconf_counters=None would emit dead `None[...]` code.
        names.remove("_predict_value_fast")
    methods = [ast.unparse(specialize_method(name, inputs)) for name in names]
    methods.append(verify_template(inputs.verify_scheme))
    body = "\n\n".join(textwrap.indent(method, "    ") for method in methods)
    header = (
        "class SpecializedPipelineSimulator(PipelineSimulator):\n"
        f'    """Generated for fingerprint {inputs.key} '
        '(repro.engine.specialize)."""\n\n'
    )
    return header + body + "\n"


def _build_class(inputs: SpecializationInputs) -> type:
    source = build_class_source(inputs)
    namespace = dict(vars(_pipeline))
    namespace["_SPEC_VERIFY_SCHEME"] = inputs.verify_scheme
    code = compile(source, f"<specialized:{inputs.key}>", "exec")
    exec(code, namespace)
    cls = namespace["SpecializedPipelineSimulator"]
    cls.__specialized_source__ = source
    cls.__specialization_key__ = inputs.key
    return cls


def clear_cache() -> None:
    """Drop all memoized classes (test isolation hook)."""
    _CLASS_CACHE.clear()


def simulator_class(
    config,
    model=None,
    *,
    predictor=None,
    confidence=None,
    update_timing: UpdateTiming = UpdateTiming.DELAYED,
    tracer=None,
    enabled: bool | None = None,
) -> tuple[type, str]:
    """The engine class for one sweep point, plus its engine-path label.

    Returns ``(SpecializedPipelineSimulator, "specialized")`` on the
    happy path and ``(PipelineSimulator, "generic (<reason>)")`` on any
    fallback.  Never raises.  ``enabled=None`` reads
    :data:`SPECIALIZE_ENV_VAR`; an explicit boolean overrides it (the
    ``specialize=`` keyword of ``run_baseline``/``run_trace``).
    """
    if enabled is None:
        enabled = specialization_enabled()
    if not enabled:
        return PipelineSimulator, "generic (specialization disabled)"
    if tracer is not None and getattr(tracer, "enabled", True):
        # A live tracer means every emission site must run; the generic
        # engine's hoisted guard is the supported path.  (A disabled
        # NullTracer folds to the same no-tracer behaviour and may
        # specialize.)
        return PipelineSimulator, "generic (tracer attached)"
    try:
        inputs = derive_inputs(config, model, predictor, confidence, update_timing)
    except Exception as error:
        return PipelineSimulator, f"generic (unsupported configuration: {error})"
    cached = _CLASS_CACHE.get(inputs.key)
    if cached is not None:
        cls, path = cached
        if cls is None:
            return PipelineSimulator, path
        return cls, path
    try:
        cls = _build_class(inputs)
    except Exception as error:
        path = f"generic (codegen failed: {error})"
        _log.warning(
            "engine specialization fell back for key %s: %s", inputs.key, path
        )
        _CLASS_CACHE[inputs.key] = (None, path)
        return PipelineSimulator, path
    _CLASS_CACHE[inputs.key] = (cls, "specialized")
    return cls, "specialized"
