"""Trace transformation utilities: warmup skipping, regions of interest,
renumbering, and concatenation.

Standard trace-driven-simulation tooling: long captures are sliced into
representative regions (skip initialization, keep the steady-state loop)
before feeding the timing engine.
"""

from __future__ import annotations

from repro.trace.record import TraceRecord


def renumber(records: list[TraceRecord]) -> list[TraceRecord]:
    """Return the records with ``seq`` rewritten to 0..n-1.

    Every slicing operation must renumber: the timing engine's
    bookkeeping (and the binary trace format) assume dense sequence
    numbers starting at zero.
    """
    return [
        TraceRecord(
            seq=i,
            pc=r.pc,
            opcode=r.opcode,
            src_regs=r.src_regs,
            dest_reg=r.dest_reg,
            dest_value=r.dest_value,
            mem_addr=r.mem_addr,
            mem_size=r.mem_size,
            branch_taken=r.branch_taken,
            next_pc=r.next_pc,
        )
        for i, r in enumerate(records)
    ]


def skip_warmup(records: list[TraceRecord], count: int) -> list[TraceRecord]:
    """Drop the first ``count`` instructions (initialization phase)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return renumber(records[count:])


def region_of_interest(
    records: list[TraceRecord], start: int, length: int
) -> list[TraceRecord]:
    """Extract ``length`` instructions starting at dynamic position
    ``start``."""
    if start < 0 or length <= 0:
        raise ValueError("start must be >= 0 and length positive")
    return renumber(records[start : start + length])


def concatenate(*parts: list[TraceRecord]) -> list[TraceRecord]:
    """Join trace segments into one renumbered trace."""
    joined: list[TraceRecord] = []
    for part in parts:
        joined.extend(part)
    return renumber(joined)


def loop_region(
    records: list[TraceRecord], head_pc: int, max_iterations: int | None = None
) -> list[TraceRecord]:
    """Extract the region spanning executions of the loop headed at
    ``head_pc``: from its first occurrence through its last (or through
    ``max_iterations`` occurrences)."""
    positions = [i for i, r in enumerate(records) if r.pc == head_pc]
    if not positions:
        raise ValueError(f"pc {head_pc:#x} never executed")
    if max_iterations is not None:
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        positions = positions[: max_iterations + 1]
    start = positions[0]
    end = positions[-1] if len(positions) > 1 else len(records)
    return renumber(records[start:end])
