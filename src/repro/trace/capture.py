"""Trace capture: run the functional simulator and record every instruction."""

from __future__ import annotations

from typing import Iterator

from repro.asm.assembler import Program, assemble
from repro.func.machine import Machine
from repro.trace.record import TraceRecord


def capture_trace(
    machine: Machine,
    max_instructions: int | None = None,
) -> list[TraceRecord]:
    """Run ``machine`` to completion (or the instruction budget) and return
    the dynamic trace.

    The trace always ends at either program HALT or exactly
    ``max_instructions`` records — truncation is how the experiment harness
    bounds simulation cost on the pure-Python cycle-level engine.
    """
    return list(iter_trace(machine, max_instructions))


def iter_trace(
    machine: Machine,
    max_instructions: int | None = None,
) -> Iterator[TraceRecord]:
    """Yield trace records as the machine executes."""
    seq = 0
    while not machine.halted:
        if max_instructions is not None and seq >= max_instructions:
            return
        step = machine.step()
        instr = step.instr
        yield TraceRecord(
            seq=seq,
            pc=step.pc,
            opcode=instr.opcode,
            src_regs=instr.source_regs(),
            dest_reg=step.dest_reg if step.dest_reg not in (None, 0) else None,
            dest_value=step.dest_value if step.dest_reg not in (None, 0) else None,
            mem_addr=step.mem_addr,
            mem_size=step.mem_size,
            branch_taken=step.branch_taken,
            next_pc=step.next_pc,
        )
        seq += 1


def trace_program(
    source: str,
    max_instructions: int | None = None,
) -> tuple[Program, list[TraceRecord]]:
    """Assemble ``source``, execute it, and return (program, trace)."""
    program = assemble(source)
    machine = Machine(program)
    trace = capture_trace(machine, max_instructions)
    return program, trace
