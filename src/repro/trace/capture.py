"""Trace capture: run the functional simulator and record every instruction."""

from __future__ import annotations

from typing import Iterator

from repro.asm.assembler import Program, assemble
from repro.func.machine import Machine
from repro.trace.record import TraceRecord


def capture_trace(
    machine: Machine,
    max_instructions: int | None = None,
) -> list[TraceRecord]:
    """Run ``machine`` to completion (or the instruction budget) and return
    the dynamic trace.

    The trace always ends at either program HALT or exactly
    ``max_instructions`` records — truncation is how the experiment harness
    bounds simulation cost on the pure-Python cycle-level engine.
    """
    return list(iter_trace(machine, max_instructions))


def iter_trace(
    machine: Machine,
    max_instructions: int | None = None,
) -> Iterator[TraceRecord]:
    """Yield trace records as the machine executes."""
    seq = 0
    while not machine.halted:
        if max_instructions is not None and seq >= max_instructions:
            return
        step = machine.step()
        instr = step.instr
        yield TraceRecord(
            seq=seq,
            pc=step.pc,
            opcode=instr.opcode,
            src_regs=instr.source_regs(),
            dest_reg=step.dest_reg if step.dest_reg not in (None, 0) else None,
            dest_value=step.dest_value if step.dest_reg not in (None, 0) else None,
            mem_addr=step.mem_addr,
            mem_size=step.mem_size,
            branch_taken=step.branch_taken,
            next_pc=step.next_pc,
        )
        seq += 1


def capture_trace_chunked(
    machine: Machine,
    path,
    max_instructions: int | None = None,
    chunk_records: int | None = None,
):
    """Run ``machine`` and stream its trace to ``path`` as a VSRT v4
    chunked file; returns the reopened :class:`ChunkedTrace`.

    This is the bounded-memory capture path: records go straight from
    the functional simulator into the chunk writer, so peak memory is
    O(chunk) no matter how long the run is (the in-memory
    :func:`capture_trace` accumulates the whole record list).
    """
    from repro.trace.binary import (
        DEFAULT_CHUNK_RECORDS,
        ChunkWriter,
        read_trace_chunked,
    )

    with ChunkWriter(path, chunk_records or DEFAULT_CHUNK_RECORDS) as writer:
        writer.extend(iter_trace(machine, max_instructions))
    return read_trace_chunked(path)


def trace_program(
    source: str,
    max_instructions: int | None = None,
) -> tuple[Program, list[TraceRecord]]:
    """Assemble ``source``, execute it, and return (program, trace)."""
    program = assemble(source)
    machine = Machine(program)
    trace = capture_trace(machine, max_instructions)
    return program, trace
