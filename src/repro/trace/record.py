"""The dynamic trace record."""

from __future__ import annotations

from repro.isa.opcodes import OpClass, Opcode


class TraceRecord:
    """One dynamically executed instruction.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream (0-based).
    pc:
        Byte address of the instruction.
    opcode / opclass:
        Operation identity and functional class.
    src_regs:
        Architectural registers read (``r0`` omitted — it never creates a
        dependence).
    dest_reg / dest_value:
        Destination register and the architecturally correct result, or
        ``None`` when the instruction writes no register.  ``dest_value``
        is what the value predictor must produce for a correct prediction.
    mem_addr / mem_size:
        Effective address and access width for loads and stores.
    branch_taken / next_pc:
        Control outcome.  ``next_pc`` is the architecturally correct
        successor PC for every instruction (fall-through when not a taken
        control transfer).
    """

    __slots__ = (
        "seq",
        "pc",
        "opcode",
        "opclass",
        "src_regs",
        "dest_reg",
        "dest_value",
        "mem_addr",
        "mem_size",
        "branch_taken",
        "next_pc",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        opcode: Opcode,
        src_regs: tuple[int, ...] = (),
        dest_reg: int | None = None,
        dest_value: int | None = None,
        mem_addr: int | None = None,
        mem_size: int | None = None,
        branch_taken: bool | None = None,
        next_pc: int = 0,
    ):
        self.seq = seq
        self.pc = pc
        self.opcode = opcode
        self.opclass = opcode.opclass
        self.src_regs = src_regs
        self.dest_reg = dest_reg
        self.dest_value = dest_value
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.branch_taken = branch_taken
        self.next_pc = next_pc

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE

    @property
    def is_memory(self) -> bool:
        return self.opclass.is_memory

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    @property
    def is_control(self) -> bool:
        return self.opclass.is_control

    @property
    def is_indirect(self) -> bool:
        return self.opclass is OpClass.IJUMP

    @property
    def writes_register(self) -> bool:
        """True when the instruction produces a register value — the
        eligibility condition for value prediction."""
        return self.dest_reg is not None and self.dest_reg != 0

    def __repr__(self) -> str:
        return (
            f"TraceRecord(seq={self.seq}, pc={self.pc:#x}, "
            f"op={self.opcode.mnemonic})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    def __hash__(self) -> int:
        return hash((self.seq, self.pc, self.opcode))
