"""The dynamic trace record."""

from __future__ import annotations

from repro.isa.opcodes import CLASS_LATENCY, OpClass, Opcode

#: Width of the precomputed ``dest_fold`` value fold.  The value-prediction
#: subsystem folds 64-bit values into ``context_bits``-wide chunks on every
#: context hash; for the standard geometry (``context_bits == FOLD_BITS``)
#: the fold is computed once here, when the record is built, and reused for
#: every prediction/training touch of the value (see ``repro.vp.context``).
FOLD_BITS = 16

_MASK64 = (1 << 64) - 1

#: Classification flags (plus functional-unit latency) per operation
#: class, precomputed once so record construction (which runs for every
#: wrong-path instruction synthesized during simulation) is one dict
#: lookup plus a tuple unpack.
_CLASS_FLAGS = {
    opclass: (
        opclass is OpClass.LOAD,
        opclass is OpClass.STORE,
        opclass is OpClass.LOAD or opclass is OpClass.STORE,
        opclass is OpClass.BRANCH,
        opclass is OpClass.BRANCH
        or opclass is OpClass.JUMP
        or opclass is OpClass.IJUMP,
        opclass is OpClass.IJUMP,
        CLASS_LATENCY[opclass],
        # Engine-side derived fields, precomputed here so dispatch writes
        # them straight into the reservation station: selection priority
        # class (0 = branch/load, 1 = everything else) and the
        # control-transfer flag the wakeup predicate gates on.
        0 if opclass is OpClass.BRANCH or opclass is OpClass.LOAD else 1,
        opclass is OpClass.BRANCH or opclass is OpClass.IJUMP,
    )
    for opclass in OpClass
}


class TraceRecord:
    """One dynamically executed instruction.

    Attributes
    ----------
    seq:
        Position in the dynamic instruction stream (0-based).
    pc:
        Byte address of the instruction.
    opcode / opclass:
        Operation identity and functional class.
    src_regs:
        Architectural registers read (``r0`` omitted — it never creates a
        dependence).
    dest_reg / dest_value:
        Destination register and the architecturally correct result, or
        ``None`` when the instruction writes no register.  ``dest_value``
        is what the value predictor must produce for a correct prediction.
    mem_addr / mem_size:
        Effective address and access width for loads and stores.
    branch_taken / next_pc:
        Control outcome.  ``next_pc`` is the architecturally correct
        successor PC for every instruction (fall-through when not a taken
        control transfer).
    """

    __slots__ = (
        "seq",
        "pc",
        "opcode",
        "opclass",
        "src_regs",
        "dest_reg",
        "dest_value",
        "mem_addr",
        "mem_size",
        "branch_taken",
        "next_pc",
        # Derived classification flags, precomputed because the timing
        # engine reads them on every pipeline stage of every instruction;
        # recomputing through properties dominated the hot-path profile.
        "is_load",
        "is_store",
        "is_memory",
        "is_branch",
        "is_control",
        "is_indirect",
        "exec_latency",
        "sel_priority",
        "is_ctrl",
        "writes_register",
        "dest_fold",
    )

    _COMPARED_SLOTS = (
        "seq",
        "pc",
        "opcode",
        "src_regs",
        "dest_reg",
        "dest_value",
        "mem_addr",
        "mem_size",
        "branch_taken",
        "next_pc",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        opcode: Opcode,
        src_regs: tuple[int, ...] = (),
        dest_reg: int | None = None,
        dest_value: int | None = None,
        mem_addr: int | None = None,
        mem_size: int | None = None,
        branch_taken: bool | None = None,
        next_pc: int = 0,
    ):
        self.seq = seq
        self.pc = pc
        self.opcode = opcode
        opclass = opcode.opclass
        self.opclass = opclass
        self.src_regs = src_regs
        self.dest_reg = dest_reg
        self.dest_value = dest_value
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.branch_taken = branch_taken
        self.next_pc = next_pc
        (
            self.is_load,
            self.is_store,
            self.is_memory,
            self.is_branch,
            self.is_control,
            self.is_indirect,
            self.exec_latency,
            self.sel_priority,
            self.is_ctrl,
        ) = _CLASS_FLAGS[opclass]
        #: True when the instruction produces a register value — the
        #: eligibility condition for value prediction.
        self.writes_register = dest_reg is not None and dest_reg != 0
        #: ``FOLD_BITS``-bit XOR-fold of ``dest_value``, precomputed so the
        #: value predictors never re-fold the committed value on their
        #: training hot path (a fold of 0/None is 0).
        if dest_value:
            value = dest_value & _MASK64
            self.dest_fold = (
                value ^ (value >> 16) ^ (value >> 32) ^ (value >> 48)
            ) & 0xFFFF
        else:
            self.dest_fold = 0

    def __repr__(self) -> str:
        return (
            f"TraceRecord(seq={self.seq}, pc={self.pc:#x}, "
            f"op={self.opcode.mnemonic})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self._COMPARED_SLOTS
        )

    def __hash__(self) -> int:
        return hash((self.seq, self.pc, self.opcode))
