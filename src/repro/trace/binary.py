"""Binary trace formats.

Two generations coexist here:

**v2 (varint + delta, sequential).**  Kernel traces compress well — PCs
cluster, sequence numbers increment, addresses stride — so records are
encoded as a flags byte plus LEB128-style varints with PC/address deltas
against the previous record.  Typical traces are 5–10x smaller than the
text format and parse faster.

Layout::

    magic   b"VSRT\\x02"
    count   varint
    records:
      flags   1 byte:  bit0 has_dest, bit1 has_mem, bit2 is_branch-taken,
                       bit3 has_branch_outcome, bit4 pc_delta_is_8,
                       bit5 next_is_fallthrough
      opcode  1 byte (stable opcode code)
      pc      signed varint delta from previous pc (absent if bit4)
      nsrcs   1 byte, then each source register 1 byte
      dest    1 byte + value varint         (if bit0)
      addr    signed varint delta from previous addr + size 1 byte (if bit1)
      next_pc signed varint delta from pc   (if not bit5)

**v3 (fixed-width columnar, mmap-able).**  The trace cache's hot
operation is not the cold write but the warm *read* — every sweep, CI
job and parallel worker re-loads the same entries — so v3 trades disk
bytes for zero parse cost: the file body IS the in-memory column layout
of :class:`~repro.trace.columnar.ColumnarTrace`.  A warm load is an
``mmap`` plus header validation; no per-record decode, no per-record
allocation, and the OS page cache shares the physical pages between
every process mapping the same entry.

Layout (all integers little-endian)::

    magic   b"VSRT\\x03"
    pad     3 bytes (zero)
    count   u64
    columns (each 8-byte aligned, ``count`` items, in COLUMN_SPEC order):
      pc u64 | next_pc u64 | dest_value u64 | mem_addr u64 |
      srcs u32 (count | r0<<8 | r1<<16 | r2<<24) | dest_fold u16 |
      opcode u8 | flags u8 (bit0 has_dest, bit1 has_mem,
      bit2 branch_taken, bit3 has_branch_outcome) | mem_size u8 |
      dest_reg u8 (0xFF = none)

The file size is an exact function of ``count``, which doubles as the
truncation check: a partially-written or clipped entry can never match
the expected size and is rejected before any column is touched.
"""

from __future__ import annotations

import mmap as _mmap
import struct
from pathlib import Path

from repro.isa.opcodes import INSTRUCTION_BYTES, OPCODE_BY_CODE
from repro.trace.columnar import (
    COLUMN_SPEC,
    ColumnarTrace,
    ColumnarTraceError,
    as_columnar,
)
from repro.trace.record import TraceRecord

MAGIC = b"VSRT\x02"
MAGIC_V3 = b"VSRT\x03"

#: v3 header: 5 magic bytes, 3 zero pad bytes, u64 record count.
_V3_HEADER_SIZE = 16


class BinaryTraceError(ValueError):
    """Raised when binary trace data is malformed."""


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise BinaryTraceError(f"uvarint cannot encode {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_svarint(out: bytearray, value: int) -> None:
    # zigzag encoding
    _write_uvarint(out, (value << 1) ^ (value >> 63) if value < 0 else value << 1)


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise BinaryTraceError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _read_svarint(data: bytes, pos: int) -> tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


def dumps_trace_binary(records: list[TraceRecord]) -> bytes:
    """Serialize records to the binary format."""
    out = bytearray(MAGIC)
    _write_uvarint(out, len(records))
    prev_pc = 0
    prev_addr = 0
    for rec in records:
        flags = 0
        has_dest = rec.dest_reg is not None
        has_mem = rec.mem_addr is not None
        fallthrough = rec.next_pc == rec.pc + INSTRUCTION_BYTES
        if has_dest:
            flags |= 1
        if has_mem:
            flags |= 2
        if rec.branch_taken:
            flags |= 4
        if rec.branch_taken is not None:
            flags |= 8
        if rec.pc - prev_pc == INSTRUCTION_BYTES:
            flags |= 16
        if fallthrough:
            flags |= 32
        out.append(flags)
        out.append(rec.opcode.code)
        if not flags & 16:
            _write_svarint(out, rec.pc - prev_pc)
        out.append(len(rec.src_regs))
        out.extend(rec.src_regs)
        if has_dest:
            out.append(rec.dest_reg)
            _write_uvarint(out, rec.dest_value or 0)
        if has_mem:
            _write_svarint(out, rec.mem_addr - prev_addr)
            out.append(rec.mem_size or 0)
            prev_addr = rec.mem_addr
        if not fallthrough:
            _write_svarint(out, rec.next_pc - rec.pc)
        prev_pc = rec.pc
    return bytes(out)


def loads_trace_binary(data: bytes) -> list[TraceRecord]:
    """Parse records from the binary format."""
    try:
        return _loads(data)
    except IndexError:
        raise BinaryTraceError("truncated record") from None


def _loads(data: bytes) -> list[TraceRecord]:
    if not data.startswith(MAGIC):
        raise BinaryTraceError("bad magic (not a v2 binary trace)")
    pos = len(MAGIC)
    count, pos = _read_uvarint(data, pos)
    records: list[TraceRecord] = []
    prev_pc = 0
    prev_addr = 0
    for seq in range(count):
        if pos >= len(data):
            raise BinaryTraceError(f"truncated at record {seq}")
        flags = data[pos]
        opcode_byte = data[pos + 1]
        pos += 2
        opcode = OPCODE_BY_CODE.get(opcode_byte)
        if opcode is None:
            raise BinaryTraceError(f"unknown opcode byte {opcode_byte:#x}")
        if flags & 16:
            pc = prev_pc + INSTRUCTION_BYTES
        else:
            delta, pos = _read_svarint(data, pos)
            pc = prev_pc + delta
        nsrcs = data[pos]
        pos += 1
        src_regs = tuple(data[pos : pos + nsrcs])
        pos += nsrcs
        dest_reg = dest_value = None
        if flags & 1:
            dest_reg = data[pos]
            pos += 1
            dest_value, pos = _read_uvarint(data, pos)
        mem_addr = mem_size = None
        if flags & 2:
            delta, pos = _read_svarint(data, pos)
            mem_addr = prev_addr + delta
            mem_size = data[pos]
            pos += 1
            prev_addr = mem_addr
        branch_taken = bool(flags & 4) if flags & 8 else None
        if flags & 32:
            next_pc = pc + INSTRUCTION_BYTES
        else:
            delta, pos = _read_svarint(data, pos)
            next_pc = pc + delta
        records.append(
            TraceRecord(
                seq=seq,
                pc=pc,
                opcode=opcode,
                src_regs=src_regs,
                dest_reg=dest_reg,
                dest_value=dest_value,
                mem_addr=mem_addr,
                mem_size=mem_size,
                branch_taken=branch_taken,
                next_pc=next_pc,
            )
        )
        prev_pc = pc
    return records


def write_trace_binary(records: list[TraceRecord], path: str | Path) -> int:
    """Write records to ``path``; returns the byte size written."""
    data = dumps_trace_binary(records)
    Path(path).write_bytes(data)
    return len(data)


def read_trace_binary(path: str | Path) -> list[TraceRecord]:
    """Read records from ``path``."""
    return loads_trace_binary(Path(path).read_bytes())


# -- v3: fixed-width columnar, mmap-able -----------------------------------


def v3_layout(count: int) -> tuple[dict[str, int], int]:
    """Column byte offsets and total file size for ``count`` records.

    Each column starts 8-byte aligned so every fixed-width view (and any
    future numpy consumer) sits on a natural boundary regardless of the
    mix of item sizes before it.
    """
    offsets: dict[str, int] = {}
    pos = _V3_HEADER_SIZE
    for name, _typecode, itemsize in COLUMN_SPEC:
        pos = (pos + 7) & ~7
        offsets[name] = pos
        pos += count * itemsize
    return offsets, pos


def dumps_trace_binary_v3(trace) -> bytes:
    """Serialize a trace (records or :class:`ColumnarTrace`) to v3 bytes."""
    columnar = as_columnar(trace)
    count = len(columnar)
    offsets, total = v3_layout(count)
    out = bytearray(total)
    out[: len(MAGIC_V3)] = MAGIC_V3
    struct.pack_into("<Q", out, 8, count)
    for name, _typecode, itemsize in COLUMN_SPEC:
        start = offsets[name]
        out[start : start + count * itemsize] = columnar.column_bytes(name)
    return bytes(out)


def _v3_validate(buffer) -> tuple[int, dict[str, int]]:
    """Check magic, size and count; returns (count, column offsets)."""
    size = len(buffer)
    if size < _V3_HEADER_SIZE:
        raise BinaryTraceError("truncated v3 header")
    if bytes(buffer[: len(MAGIC_V3)]) != MAGIC_V3:
        raise BinaryTraceError("bad magic (not a v3 binary trace)")
    (count,) = struct.unpack_from("<Q", buffer, 8)
    offsets, expected = v3_layout(count)
    if size != expected:
        raise BinaryTraceError(
            f"v3 size mismatch: {count} records need {expected} bytes, "
            f"file has {size}"
        )
    return count, offsets


def loads_trace_binary_v3(buffer) -> ColumnarTrace:
    """Wrap v3 ``buffer`` (bytes, mmap, shared memory) without copying.

    The returned trace's columns are views into ``buffer``; the buffer
    must stay alive (and writable mappings unmodified) for the trace's
    lifetime — the trace holds a reference to enforce the former.
    """
    count, offsets = _v3_validate(buffer)
    try:
        return ColumnarTrace.from_buffer(buffer, count, offsets)
    except ColumnarTraceError as exc:
        raise BinaryTraceError(str(exc)) from None


def write_trace_binary_v3(trace, path: str | Path) -> int:
    """Write a trace to ``path`` in v3; returns the byte size written."""
    data = dumps_trace_binary_v3(trace)
    Path(path).write_bytes(data)
    return len(data)


def read_trace_binary_v3(path: str | Path, use_mmap: bool = True) -> ColumnarTrace:
    """Load a v3 trace from ``path``.

    With ``use_mmap`` (the default) the columns are served straight from
    a read-only shared mapping of the file: load time is O(1) in trace
    length and concurrent processes mapping the same entry share one
    copy of the pages.  The mapping stays open for the trace's lifetime
    (released when the trace is garbage collected).  ``use_mmap=False``
    reads the file into bytes instead — same validation, private copy.
    """
    if not use_mmap:
        return loads_trace_binary_v3(Path(path).read_bytes())
    with open(path, "rb") as handle:
        try:
            mapped = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        except ValueError:  # zero-length file: cannot mmap, and invalid anyway
            raise BinaryTraceError("truncated v3 header") from None
    try:
        return loads_trace_binary_v3(mapped)
    except BinaryTraceError:
        try:
            mapped.close()
        except BufferError:  # column views still referenced by the traceback
            pass
        raise
