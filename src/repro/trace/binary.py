"""Binary trace formats.

Two generations coexist here:

**v2 (varint + delta, sequential).**  Kernel traces compress well — PCs
cluster, sequence numbers increment, addresses stride — so records are
encoded as a flags byte plus LEB128-style varints with PC/address deltas
against the previous record.  Typical traces are 5–10x smaller than the
text format and parse faster.

Layout::

    magic   b"VSRT\\x02"
    count   varint
    records:
      flags   1 byte:  bit0 has_dest, bit1 has_mem, bit2 is_branch-taken,
                       bit3 has_branch_outcome, bit4 pc_delta_is_8,
                       bit5 next_is_fallthrough
      opcode  1 byte (stable opcode code)
      pc      signed varint delta from previous pc (absent if bit4)
      nsrcs   1 byte, then each source register 1 byte
      dest    1 byte + value varint         (if bit0)
      addr    signed varint delta from previous addr + size 1 byte (if bit1)
      next_pc signed varint delta from pc   (if not bit5)

**v3 (fixed-width columnar, mmap-able).**  The trace cache's hot
operation is not the cold write but the warm *read* — every sweep, CI
job and parallel worker re-loads the same entries — so v3 trades disk
bytes for zero parse cost: the file body IS the in-memory column layout
of :class:`~repro.trace.columnar.ColumnarTrace`.  A warm load is an
``mmap`` plus header validation; no per-record decode, no per-record
allocation, and the OS page cache shares the physical pages between
every process mapping the same entry.

Layout (all integers little-endian)::

    magic   b"VSRT\\x03"
    pad     3 bytes (zero)
    count   u64
    columns (each 8-byte aligned, ``count`` items, in COLUMN_SPEC order):
      pc u64 | next_pc u64 | dest_value u64 | mem_addr u64 |
      srcs u32 (count | r0<<8 | r1<<16 | r2<<24) | dest_fold u16 |
      opcode u8 | flags u8 (bit0 has_dest, bit1 has_mem,
      bit2 branch_taken, bit3 has_branch_outcome) | mem_size u8 |
      dest_reg u8 (0xFF = none)

The file size is an exact function of ``count``, which doubles as the
truncation check: a partially-written or clipped entry can never match
the expected size and is rejected before any column is touched.

**v4 (chunked columnar, streaming).**  v3 materializes the whole trace
at capture time and maps the whole body at load time, which caps runs at
traces that fit in memory.  v4 splits the body into fixed-size windowed
chunks (default 1M records, ``REPRO_TRACE_CHUNK``), each an independent
v3-style column block with its own CRC32, written *incrementally* by
:class:`ChunkWriter` as the functional simulator produces records — peak
writer memory is O(chunk), regardless of trace length.  Readers get a
:class:`~repro.trace.columnar.ChunkedTrace` that loads one chunk at a
time (CRC-checked), so replaying a 10M-instruction trace holds at most
two chunks of rows.  Each chunk's index entry also carries a
basic-block-vector fingerprint (instruction counts bucketed by basic-
block leader PC) computed during the write, the raw material for
phase-sampled simulation (:mod:`repro.sampling`).

Layout (all integers little-endian)::

    magic        b"VSRT\\x04"
    pad          3 bytes (zero)
    total        u64    record count over all chunks
    chunk_size   u64    nominal records per chunk (last may be shorter)
    chunk_count  u64
    index_offset u64    byte offset of the chunk index
    bbv_dim      u32    fingerprint buckets per chunk
    index_crc    u32    CRC32 of the index block
    chunks, each 8-byte aligned:
      columns in COLUMN_SPEC order, each 8-byte aligned from chunk start
    index, one entry per chunk:
      offset u64 | count u64 | crc u32 (chunk payload CRC32) | pad u32 |
      bbv    bbv_dim x u32

The file size must equal ``index_offset + chunk_count * entry_size`` —
the truncation check — and the index itself is CRC-guarded, so a torn
write is rejected at open and a corrupt chunk is rejected the first time
it is loaded.
"""

from __future__ import annotations

import io
import mmap as _mmap
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path

from repro.isa.opcodes import INSTRUCTION_BYTES, OPCODE_BY_CODE
from repro.trace.columnar import (
    COLUMN_SPEC,
    ChunkedTrace,
    ColumnarTrace,
    ColumnarTraceError,
    as_columnar,
    pack_record_fields,
)
from repro.trace.record import TraceRecord

MAGIC = b"VSRT\x02"
MAGIC_V3 = b"VSRT\x03"
MAGIC_V4 = b"VSRT\x04"

#: v3 header: 5 magic bytes, 3 zero pad bytes, u64 record count.
_V3_HEADER_SIZE = 16


class BinaryTraceError(ValueError):
    """Raised when binary trace data is malformed."""


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise BinaryTraceError(f"uvarint cannot encode {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_svarint(out: bytearray, value: int) -> None:
    # zigzag encoding
    _write_uvarint(out, (value << 1) ^ (value >> 63) if value < 0 else value << 1)


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise BinaryTraceError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _read_svarint(data: bytes, pos: int) -> tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


def dumps_trace_binary(records: list[TraceRecord]) -> bytes:
    """Serialize records to the binary format."""
    out = bytearray(MAGIC)
    _write_uvarint(out, len(records))
    prev_pc = 0
    prev_addr = 0
    for rec in records:
        flags = 0
        has_dest = rec.dest_reg is not None
        has_mem = rec.mem_addr is not None
        fallthrough = rec.next_pc == rec.pc + INSTRUCTION_BYTES
        if has_dest:
            flags |= 1
        if has_mem:
            flags |= 2
        if rec.branch_taken:
            flags |= 4
        if rec.branch_taken is not None:
            flags |= 8
        if rec.pc - prev_pc == INSTRUCTION_BYTES:
            flags |= 16
        if fallthrough:
            flags |= 32
        out.append(flags)
        out.append(rec.opcode.code)
        if not flags & 16:
            _write_svarint(out, rec.pc - prev_pc)
        out.append(len(rec.src_regs))
        out.extend(rec.src_regs)
        if has_dest:
            out.append(rec.dest_reg)
            _write_uvarint(out, rec.dest_value or 0)
        if has_mem:
            _write_svarint(out, rec.mem_addr - prev_addr)
            out.append(rec.mem_size or 0)
            prev_addr = rec.mem_addr
        if not fallthrough:
            _write_svarint(out, rec.next_pc - rec.pc)
        prev_pc = rec.pc
    return bytes(out)


def loads_trace_binary(data: bytes) -> list[TraceRecord]:
    """Parse records from the binary format."""
    try:
        return _loads(data)
    except IndexError:
        raise BinaryTraceError("truncated record") from None


def _loads(data: bytes) -> list[TraceRecord]:
    if not data.startswith(MAGIC):
        raise BinaryTraceError("bad magic (not a v2 binary trace)")
    pos = len(MAGIC)
    count, pos = _read_uvarint(data, pos)
    records: list[TraceRecord] = []
    prev_pc = 0
    prev_addr = 0
    for seq in range(count):
        if pos >= len(data):
            raise BinaryTraceError(f"truncated at record {seq}")
        flags = data[pos]
        opcode_byte = data[pos + 1]
        pos += 2
        opcode = OPCODE_BY_CODE.get(opcode_byte)
        if opcode is None:
            raise BinaryTraceError(f"unknown opcode byte {opcode_byte:#x}")
        if flags & 16:
            pc = prev_pc + INSTRUCTION_BYTES
        else:
            delta, pos = _read_svarint(data, pos)
            pc = prev_pc + delta
        nsrcs = data[pos]
        pos += 1
        src_regs = tuple(data[pos : pos + nsrcs])
        pos += nsrcs
        dest_reg = dest_value = None
        if flags & 1:
            dest_reg = data[pos]
            pos += 1
            dest_value, pos = _read_uvarint(data, pos)
        mem_addr = mem_size = None
        if flags & 2:
            delta, pos = _read_svarint(data, pos)
            mem_addr = prev_addr + delta
            mem_size = data[pos]
            pos += 1
            prev_addr = mem_addr
        branch_taken = bool(flags & 4) if flags & 8 else None
        if flags & 32:
            next_pc = pc + INSTRUCTION_BYTES
        else:
            delta, pos = _read_svarint(data, pos)
            next_pc = pc + delta
        records.append(
            TraceRecord(
                seq=seq,
                pc=pc,
                opcode=opcode,
                src_regs=src_regs,
                dest_reg=dest_reg,
                dest_value=dest_value,
                mem_addr=mem_addr,
                mem_size=mem_size,
                branch_taken=branch_taken,
                next_pc=next_pc,
            )
        )
        prev_pc = pc
    return records


def write_trace_binary(records: list[TraceRecord], path: str | Path) -> int:
    """Write records to ``path``; returns the byte size written."""
    data = dumps_trace_binary(records)
    Path(path).write_bytes(data)
    return len(data)


def read_trace_binary(path: str | Path) -> list[TraceRecord]:
    """Read records from ``path``."""
    return loads_trace_binary(Path(path).read_bytes())


# -- v3: fixed-width columnar, mmap-able -----------------------------------


def v3_layout(count: int) -> tuple[dict[str, int], int]:
    """Column byte offsets and total file size for ``count`` records.

    Each column starts 8-byte aligned so every fixed-width view (and any
    future numpy consumer) sits on a natural boundary regardless of the
    mix of item sizes before it.
    """
    offsets: dict[str, int] = {}
    pos = _V3_HEADER_SIZE
    for name, _typecode, itemsize in COLUMN_SPEC:
        pos = (pos + 7) & ~7
        offsets[name] = pos
        pos += count * itemsize
    return offsets, pos


def dumps_trace_binary_v3(trace) -> bytes:
    """Serialize a trace (records or :class:`ColumnarTrace`) to v3 bytes."""
    columnar = as_columnar(trace)
    count = len(columnar)
    offsets, total = v3_layout(count)
    out = bytearray(total)
    out[: len(MAGIC_V3)] = MAGIC_V3
    struct.pack_into("<Q", out, 8, count)
    for name, _typecode, itemsize in COLUMN_SPEC:
        start = offsets[name]
        out[start : start + count * itemsize] = columnar.column_bytes(name)
    return bytes(out)


def _v3_validate(buffer) -> tuple[int, dict[str, int]]:
    """Check magic, size and count; returns (count, column offsets)."""
    size = len(buffer)
    if size < _V3_HEADER_SIZE:
        raise BinaryTraceError("truncated v3 header")
    if bytes(buffer[: len(MAGIC_V3)]) != MAGIC_V3:
        raise BinaryTraceError("bad magic (not a v3 binary trace)")
    (count,) = struct.unpack_from("<Q", buffer, 8)
    offsets, expected = v3_layout(count)
    if size != expected:
        raise BinaryTraceError(
            f"v3 size mismatch: {count} records need {expected} bytes, "
            f"file has {size}"
        )
    return count, offsets


def loads_trace_binary_v3(buffer) -> ColumnarTrace:
    """Wrap v3 ``buffer`` (bytes, mmap, shared memory) without copying.

    The returned trace's columns are views into ``buffer``; the buffer
    must stay alive (and writable mappings unmodified) for the trace's
    lifetime — the trace holds a reference to enforce the former.
    """
    count, offsets = _v3_validate(buffer)
    try:
        return ColumnarTrace.from_buffer(buffer, count, offsets)
    except ColumnarTraceError as exc:
        raise BinaryTraceError(str(exc)) from None


def write_trace_binary_v3(trace, path: str | Path) -> int:
    """Write a trace to ``path`` in v3; returns the byte size written."""
    data = dumps_trace_binary_v3(trace)
    Path(path).write_bytes(data)
    return len(data)


def read_trace_binary_v3(path: str | Path, use_mmap: bool = True) -> ColumnarTrace:
    """Load a v3 trace from ``path``.

    With ``use_mmap`` (the default) the columns are served straight from
    a read-only shared mapping of the file: load time is O(1) in trace
    length and concurrent processes mapping the same entry share one
    copy of the pages.  The mapping stays open for the trace's lifetime
    (released when the trace is garbage collected).  ``use_mmap=False``
    reads the file into bytes instead — same validation, private copy.
    """
    if not use_mmap:
        return loads_trace_binary_v3(Path(path).read_bytes())
    with open(path, "rb") as handle:
        try:
            mapped = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        except ValueError:  # zero-length file: cannot mmap, and invalid anyway
            raise BinaryTraceError("truncated v3 header") from None
    try:
        return loads_trace_binary_v3(mapped)
    except BinaryTraceError:
        try:
            mapped.close()
        except BufferError:  # column views still referenced by the traceback
            pass
        raise


# -- v4: chunked columnar, streaming ---------------------------------------

#: Default records per chunk (overridable per writer; the cache layer
#: reads ``REPRO_TRACE_CHUNK`` — see :mod:`repro.trace.cache`).
DEFAULT_CHUNK_RECORDS = 1_000_000

#: Basic-block-vector fingerprint buckets per chunk.
BBV_DIM = 32

#: v4 header: magic(5) pad(3) total u64 chunk_size u64 chunk_count u64
#: index_offset u64 bbv_dim u32 index_crc u32.
_V4_HEADER = struct.Struct("<5s3xQQQQII")
_V4_HEADER_SIZE = _V4_HEADER.size  # 48

_MASK64 = (1 << 64) - 1

_PAYLOAD_LITTLE_ENDIAN = sys.byteorder == "little"


def _v4_entry_struct(bbv_dim: int) -> struct.Struct:
    return struct.Struct(f"<QQI4x{bbv_dim}I")


def chunk_layout(count: int) -> tuple[dict[str, int], int]:
    """Column byte offsets (relative to the chunk start) and payload
    size for a chunk of ``count`` records.  Chunk starts are themselves
    8-byte aligned, so every column sits on a natural boundary."""
    offsets: dict[str, int] = {}
    pos = 0
    for name, _typecode, itemsize in COLUMN_SPEC:
        pos = (pos + 7) & ~7
        offsets[name] = pos
        pos += count * itemsize
    return offsets, pos


def _bbv_bucket(leader_pc: int, dim: int) -> int:
    """Fingerprint bucket for the basic block led by ``leader_pc``."""
    mixed = (leader_pc ^ (leader_pc >> 33)) * 0x9E3779B97F4A7C15 & _MASK64
    return (mixed >> 32) % dim


class ChunkWriter:
    """Incremental VSRT v4 writer with O(chunk) memory.

    Feed it records one at a time (:meth:`append`) or in bulk
    (:meth:`extend`); every ``chunk_records`` records it flushes one
    self-contained column block (with CRC and basic-block-vector
    fingerprint) to the output and drops its buffers.  ``close`` (or
    leaving the context manager) seals the file: tail chunk, index, and
    the header patched in place.

    ``out`` is a path or a seekable binary file object (``BytesIO``
    works, which is how shared-memory staging serializes a chunked
    trace).
    """

    def __init__(
        self,
        out,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        *,
        bbv_dim: int = BBV_DIM,
    ):
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        if bbv_dim < 1:
            raise ValueError("bbv_dim must be >= 1")
        self._chunk_records = chunk_records
        self._bbv_dim = bbv_dim
        if hasattr(out, "write"):
            self._file = out
            self._owns_file = False
        else:
            self._file = open(out, "wb")
            self._owns_file = True
        self._file.write(b"\x00" * _V4_HEADER_SIZE)
        self._pos = _V4_HEADER_SIZE
        self._index: list[tuple[int, int, int, tuple[int, ...]]] = []
        self.total = 0
        self._closed = False
        self._new_columns()
        #: Basic-block tracking: the leader PC of the block the next
        #: record belongs to (``None`` = next record starts a block).
        self._leader: int | None = None
        self._bbv = [0] * bbv_dim

    def _new_columns(self) -> None:
        self._cols = {name: array(tc) for name, tc, _s in COLUMN_SPEC}
        self._buffered = 0

    @property
    def chunk_count(self) -> int:
        return len(self._index) + (1 if self._buffered else 0)

    @property
    def buffered(self) -> int:
        """Records currently held in memory (never exceeds the chunk
        size — the writer's O(chunk) memory bound)."""
        return self._buffered

    def append(self, rec: TraceRecord) -> None:
        """Buffer one record, flushing a chunk when the window fills."""
        packed, flag = pack_record_fields(rec)
        cols = self._cols
        cols["pc"].append(rec.pc & _MASK64)
        cols["next_pc"].append(rec.next_pc & _MASK64)
        cols["dest_value"].append((rec.dest_value or 0) & _MASK64)
        cols["mem_addr"].append((rec.mem_addr or 0) & _MASK64)
        cols["srcs"].append(packed)
        cols["dest_fold"].append(rec.dest_fold)
        cols["opcode"].append(rec.opcode.code)
        cols["flags"].append(flag)
        cols["mem_size"].append(rec.mem_size or 0)
        cols["dest_reg"].append(0xFF if rec.dest_reg is None else rec.dest_reg)
        if self._leader is None:
            self._leader = rec.pc
        self._bbv[_bbv_bucket(self._leader, self._bbv_dim)] += 1
        if rec.is_control:
            self._leader = None
        self._buffered += 1
        self.total += 1
        if self._buffered >= self._chunk_records:
            self._flush_chunk()

    def extend(self, records) -> None:
        append = self.append
        for rec in records:
            append(rec)

    def _flush_chunk(self) -> None:
        count = self._buffered
        if not count:
            return
        offsets, size = chunk_layout(count)
        payload = bytearray(size)
        for name, _typecode, itemsize in COLUMN_SPEC:
            col = self._cols[name]
            if not _PAYLOAD_LITTLE_ENDIAN:  # pragma: no cover - BE hosts
                col = array(col.typecode, col)
                col.byteswap()
            start = offsets[name]
            payload[start : start + count * itemsize] = col.tobytes()
        # 8-align the chunk start so column views sit on natural
        # boundaries in mmap/shared-memory consumers.
        pad = (-self._pos) % 8
        if pad:
            self._file.write(b"\x00" * pad)
            self._pos += pad
        self._file.write(payload)
        self._index.append(
            (self._pos, count, zlib.crc32(payload), tuple(self._bbv))
        )
        self._pos += size
        self._bbv = [0] * self._bbv_dim
        # Fingerprints are per-chunk: a basic block straddling a chunk
        # boundary counts under its first PC in the new chunk, exactly
        # as an after-the-fact walk of that chunk alone would bucket it.
        self._leader = None
        self._new_columns()

    def close(self) -> int:
        """Seal the file (tail chunk + index + header); returns the
        total record count."""
        if self._closed:
            return self.total
        self._flush_chunk()
        self._closed = True
        pad = (-self._pos) % 8
        if pad:
            self._file.write(b"\x00" * pad)
            self._pos += pad
        index_offset = self._pos
        entry = _v4_entry_struct(self._bbv_dim)
        index = bytearray()
        for offset, count, crc, bbv in self._index:
            index += entry.pack(offset, count, crc, *bbv)
        self._file.write(index)
        header = _V4_HEADER.pack(
            MAGIC_V4,
            self.total,
            self._chunk_records,
            len(self._index),
            index_offset,
            self._bbv_dim,
            zlib.crc32(bytes(index)),
        )
        self._file.seek(0)
        self._file.write(header)
        self._file.flush()
        if self._owns_file:
            self._file.close()
        else:
            self._file.seek(0, io.SEEK_END)
        return self.total

    def __enter__(self) -> "ChunkWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self._owns_file:
            self._file.close()


def _v4_parse_header(header: bytes):
    magic, total, chunk_size, chunk_count, index_offset, bbv_dim, index_crc = (
        _V4_HEADER.unpack(header)
    )
    if magic != MAGIC_V4:
        raise BinaryTraceError("bad magic (not a v4 chunked trace)")
    if chunk_size < 1 or bbv_dim < 1:
        raise BinaryTraceError("corrupt v4 header (zero chunk size)")
    return total, chunk_size, chunk_count, index_offset, bbv_dim, index_crc


def _v4_parse_index(
    index_bytes: bytes, chunk_count: int, bbv_dim: int, index_crc: int,
    total: int, chunk_size: int, file_size: int, index_offset: int,
):
    entry = _v4_entry_struct(bbv_dim)
    if len(index_bytes) != chunk_count * entry.size:
        raise BinaryTraceError("truncated v4 index")
    if file_size != index_offset + chunk_count * entry.size:
        raise BinaryTraceError(
            f"v4 size mismatch: expected "
            f"{index_offset + chunk_count * entry.size} bytes, "
            f"file has {file_size}"
        )
    if zlib.crc32(index_bytes) != index_crc:
        raise BinaryTraceError("v4 index CRC mismatch")
    offsets: list[int] = []
    counts: list[int] = []
    crcs: list[int] = []
    bbvs: list[tuple[int, ...]] = []
    for i in range(chunk_count):
        fields = entry.unpack_from(index_bytes, i * entry.size)
        offsets.append(fields[0])
        counts.append(fields[1])
        crcs.append(fields[2])
        bbvs.append(fields[3:])
    if sum(counts) != total:
        raise BinaryTraceError("v4 chunk counts do not sum to the total")
    for i, count in enumerate(counts):
        expected = chunk_size if i + 1 < chunk_count else None
        if count < 1 or (expected is not None and count != expected):
            raise BinaryTraceError(f"v4 chunk {i} has invalid count {count}")
        _coffsets, csize = chunk_layout(count)
        if offsets[i] + csize > index_offset:
            raise BinaryTraceError(f"v4 chunk {i} overruns the index")
    return offsets, counts, crcs, bbvs


class _ChunkSourceBase:
    """Shared v4 chunk-source state (offsets/counts/CRCs/fingerprints)."""

    def __init__(self, header: bytes, index_bytes: bytes, file_size: int):
        (total, chunk_size, chunk_count, index_offset, bbv_dim, index_crc) = (
            _v4_parse_header(header)
        )
        self.total = total
        self.chunk_size = chunk_size
        self.offsets, self.counts, self.crcs, self.bbvs = _v4_parse_index(
            index_bytes, chunk_count, bbv_dim, index_crc,
            total, chunk_size, file_size, index_offset,
        )

    def _wrap(self, payload, index: int, seq_base: int) -> ColumnarTrace:
        count = self.counts[index]
        offsets, _size = chunk_layout(count)
        try:
            return ColumnarTrace.from_buffer(
                payload, count, offsets, seq_base=seq_base
            )
        except ColumnarTraceError as exc:
            raise BinaryTraceError(str(exc)) from None


class _FileChunkSource(_ChunkSourceBase):
    """Chunks served by positional reads from a v4 file — loading a
    chunk costs one bounded read (plus a CRC pass over it), never a
    whole-file map, so resident memory tracks the LRU window, not the
    trace.  Reads use ``os.pread`` so the file offset is never shared
    state: forked pool workers inherit the parent's open file
    description, and seek+read pairs from sibling processes would race
    on its offset and return scrambled payloads."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._file = open(self._path, "rb")
        try:
            file_size = self._file.seek(0, io.SEEK_END)
            if file_size < _V4_HEADER_SIZE:
                raise BinaryTraceError("truncated v4 header")
            header = self._pread(_V4_HEADER_SIZE, 0)
            index_offset = _v4_parse_header(header)[3]
            if index_offset > file_size:
                raise BinaryTraceError("v4 index offset beyond end of file")
            index_bytes = self._pread(file_size - index_offset, index_offset)
            super().__init__(header, index_bytes, file_size)
        except BaseException:
            self._file.close()
            raise

    def _pread(self, size: int, offset: int) -> bytes:
        return os.pread(self._file.fileno(), size, offset)

    def load_chunk(self, index: int, seq_base: int) -> ColumnarTrace:
        _coffsets, size = chunk_layout(self.counts[index])
        payload = self._pread(size, self.offsets[index])
        if len(payload) != size:
            raise BinaryTraceError(f"v4 chunk {index} truncated")
        if zlib.crc32(payload) != self.crcs[index]:
            raise BinaryTraceError(f"v4 chunk {index} CRC mismatch")
        return self._wrap(payload, index, seq_base)

    def verify(self) -> None:
        """CRC-check every chunk (streaming, bounded memory)."""
        for index in range(len(self.counts)):
            _coffsets, size = chunk_layout(self.counts[index])
            payload = self._pread(size, self.offsets[index])
            if len(payload) != size or zlib.crc32(payload) != self.crcs[index]:
                raise BinaryTraceError(f"v4 chunk {index} CRC mismatch")

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self._file.close()
        except Exception:
            pass


class _BufferChunkSource(_ChunkSourceBase):
    """Chunks served zero-copy from one buffer (shared memory, bytes);
    each chunk's CRC is checked once, on first load."""

    def __init__(self, buffer):
        self._view = memoryview(buffer)
        file_size = len(self._view)
        if file_size < _V4_HEADER_SIZE:
            raise BinaryTraceError("truncated v4 header")
        header = bytes(self._view[:_V4_HEADER_SIZE])
        index_offset = _v4_parse_header(header)[3]
        if index_offset > file_size:
            raise BinaryTraceError("v4 index offset beyond end of file")
        index_bytes = bytes(self._view[index_offset:])
        super().__init__(header, index_bytes, file_size)
        self._verified = [False] * len(self.counts)

    def load_chunk(self, index: int, seq_base: int) -> ColumnarTrace:
        _coffsets, size = chunk_layout(self.counts[index])
        start = self.offsets[index]
        payload = self._view[start : start + size]
        if not self._verified[index]:
            if zlib.crc32(payload) != self.crcs[index]:
                raise BinaryTraceError(f"v4 chunk {index} CRC mismatch")
            self._verified[index] = True
        return self._wrap(payload, index, seq_base)


def read_trace_chunked(
    path: str | Path, *, verify: bool = False, keep_chunks: int = 2
) -> ChunkedTrace:
    """Open a v4 chunked trace from ``path``.

    Opening validates the header and CRC-guarded index only — O(1) in
    trace length.  ``verify=True`` additionally CRC-checks every chunk
    in one streaming pass (bounded memory); the cache layer uses it so a
    corrupt entry is detected at load time and regenerated, never
    mid-simulation.
    """
    source = _FileChunkSource(path)
    if verify:
        source.verify()
    return ChunkedTrace(source, keep_chunks=keep_chunks)


def loads_trace_chunked(buffer, *, keep_chunks: int = 2) -> ChunkedTrace:
    """Wrap v4 ``buffer`` (bytes, mmap, shared memory) without copying."""
    return ChunkedTrace(_BufferChunkSource(buffer), keep_chunks=keep_chunks)


def write_trace_chunked(
    records,
    path: str | Path,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> int:
    """Stream ``records`` (any iterable) to ``path`` in v4; returns the
    record count.  Peak memory is O(chunk_records)."""
    with ChunkWriter(path, chunk_records) as writer:
        writer.extend(records)
    return writer.total


def dumps_trace_chunked(
    trace, chunk_records: int = DEFAULT_CHUNK_RECORDS
) -> bytes:
    """Serialize a trace to v4 bytes (for shared-memory staging)."""
    if isinstance(trace, ChunkedTrace):
        chunk_records = trace.chunk_size
    out = io.BytesIO()
    with ChunkWriter(out, chunk_records) as writer:
        writer.extend(iter(trace))
    return out.getvalue()


def sniff_format(path_or_buffer) -> str:
    """``"v2"``, ``"v3"`` or ``"v4"`` from the leading magic bytes."""
    if isinstance(path_or_buffer, (str, Path)):
        with open(path_or_buffer, "rb") as handle:
            head = handle.read(5)
    else:
        head = bytes(memoryview(path_or_buffer)[:5])
    for magic, name in ((MAGIC_V4, "v4"), (MAGIC_V3, "v3"), (MAGIC, "v2")):
        if head == magic:
            return name
    raise BinaryTraceError("unknown trace magic")


def chunked_entry_info(path: str | Path) -> dict:
    """Header/index summary of a v4 file without loading any chunk."""
    source = _FileChunkSource(path)
    sizes = [chunk_layout(count)[1] for count in source.counts]
    return {
        "records": source.total,
        "chunk_size": source.chunk_size,
        "chunks": len(source.counts),
        "chunk_records": list(source.counts),
        "chunk_bytes": sizes,
    }
