"""Binary trace format (v2): varint + delta encoded.

Kernel traces compress well — PCs cluster, sequence numbers increment,
addresses stride — so records are encoded as a flags byte plus
LEB128-style varints with PC/address deltas against the previous record.
Typical traces are 5–10x smaller than the text format and parse faster.

Layout::

    magic   b"VSRT\\x02"
    count   varint
    records:
      flags   1 byte:  bit0 has_dest, bit1 has_mem, bit2 is_branch-taken,
                       bit3 has_branch_outcome, bit4 pc_delta_is_8,
                       bit5 next_is_fallthrough
      opcode  1 byte (stable opcode code)
      pc      signed varint delta from previous pc (absent if bit4)
      nsrcs   1 byte, then each source register 1 byte
      dest    1 byte + value varint         (if bit0)
      addr    signed varint delta from previous addr + size 1 byte (if bit1)
      next_pc signed varint delta from pc   (if not bit5)
"""

from __future__ import annotations

from pathlib import Path

from repro.isa.opcodes import INSTRUCTION_BYTES, OPCODE_BY_CODE
from repro.trace.record import TraceRecord

MAGIC = b"VSRT\x02"


class BinaryTraceError(ValueError):
    """Raised when binary trace data is malformed."""


def _write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise BinaryTraceError(f"uvarint cannot encode {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_svarint(out: bytearray, value: int) -> None:
    # zigzag encoding
    _write_uvarint(out, (value << 1) ^ (value >> 63) if value < 0 else value << 1)


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise BinaryTraceError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _read_svarint(data: bytes, pos: int) -> tuple[int, int]:
    raw, pos = _read_uvarint(data, pos)
    return (raw >> 1) ^ -(raw & 1), pos


def dumps_trace_binary(records: list[TraceRecord]) -> bytes:
    """Serialize records to the binary format."""
    out = bytearray(MAGIC)
    _write_uvarint(out, len(records))
    prev_pc = 0
    prev_addr = 0
    for rec in records:
        flags = 0
        has_dest = rec.dest_reg is not None
        has_mem = rec.mem_addr is not None
        fallthrough = rec.next_pc == rec.pc + INSTRUCTION_BYTES
        if has_dest:
            flags |= 1
        if has_mem:
            flags |= 2
        if rec.branch_taken:
            flags |= 4
        if rec.branch_taken is not None:
            flags |= 8
        if rec.pc - prev_pc == INSTRUCTION_BYTES:
            flags |= 16
        if fallthrough:
            flags |= 32
        out.append(flags)
        out.append(rec.opcode.code)
        if not flags & 16:
            _write_svarint(out, rec.pc - prev_pc)
        out.append(len(rec.src_regs))
        out.extend(rec.src_regs)
        if has_dest:
            out.append(rec.dest_reg)
            _write_uvarint(out, rec.dest_value or 0)
        if has_mem:
            _write_svarint(out, rec.mem_addr - prev_addr)
            out.append(rec.mem_size or 0)
            prev_addr = rec.mem_addr
        if not fallthrough:
            _write_svarint(out, rec.next_pc - rec.pc)
        prev_pc = rec.pc
    return bytes(out)


def loads_trace_binary(data: bytes) -> list[TraceRecord]:
    """Parse records from the binary format."""
    try:
        return _loads(data)
    except IndexError:
        raise BinaryTraceError("truncated record") from None


def _loads(data: bytes) -> list[TraceRecord]:
    if not data.startswith(MAGIC):
        raise BinaryTraceError("bad magic (not a v2 binary trace)")
    pos = len(MAGIC)
    count, pos = _read_uvarint(data, pos)
    records: list[TraceRecord] = []
    prev_pc = 0
    prev_addr = 0
    for seq in range(count):
        if pos >= len(data):
            raise BinaryTraceError(f"truncated at record {seq}")
        flags = data[pos]
        opcode_byte = data[pos + 1]
        pos += 2
        opcode = OPCODE_BY_CODE.get(opcode_byte)
        if opcode is None:
            raise BinaryTraceError(f"unknown opcode byte {opcode_byte:#x}")
        if flags & 16:
            pc = prev_pc + INSTRUCTION_BYTES
        else:
            delta, pos = _read_svarint(data, pos)
            pc = prev_pc + delta
        nsrcs = data[pos]
        pos += 1
        src_regs = tuple(data[pos : pos + nsrcs])
        pos += nsrcs
        dest_reg = dest_value = None
        if flags & 1:
            dest_reg = data[pos]
            pos += 1
            dest_value, pos = _read_uvarint(data, pos)
        mem_addr = mem_size = None
        if flags & 2:
            delta, pos = _read_svarint(data, pos)
            mem_addr = prev_addr + delta
            mem_size = data[pos]
            pos += 1
            prev_addr = mem_addr
        branch_taken = bool(flags & 4) if flags & 8 else None
        if flags & 32:
            next_pc = pc + INSTRUCTION_BYTES
        else:
            delta, pos = _read_svarint(data, pos)
            next_pc = pc + delta
        records.append(
            TraceRecord(
                seq=seq,
                pc=pc,
                opcode=opcode,
                src_regs=src_regs,
                dest_reg=dest_reg,
                dest_value=dest_value,
                mem_addr=mem_addr,
                mem_size=mem_size,
                branch_taken=branch_taken,
                next_pc=next_pc,
            )
        )
        prev_pc = pc
    return records


def write_trace_binary(records: list[TraceRecord], path: str | Path) -> int:
    """Write records to ``path``; returns the byte size written."""
    data = dumps_trace_binary(records)
    Path(path).write_bytes(data)
    return len(data)


def read_trace_binary(path: str | Path) -> list[TraceRecord]:
    """Read records from ``path``."""
    return loads_trace_binary(Path(path).read_bytes())
