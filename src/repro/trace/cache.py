"""Persistent, content-addressed on-disk trace cache.

Capturing a kernel trace means running the functional simulator for the
whole instruction budget — for the full-scale experiments that is minutes
of pure-Python interpretation per benchmark, repeated identically by
every sweep, figure, benchmark run and CI job.  The dynamic trace is a
pure function of (kernel source, instruction limit), so this module
memoises it on disk: entries are stored in the VSRT v3 columnar binary
format (:mod:`repro.trace.binary`) under a key derived from the benchmark
name, a hash of the kernel *source text*, and the limit.  v3 entries are
the on-disk image of a :class:`~repro.trace.columnar.ColumnarTrace`, so a
warm hit is served by ``mmap`` — zero parse cost, zero per-record
allocation, and concurrent sweep workers mapping the same entry share
one copy of the pages in the OS page cache.

Content addressing makes invalidation automatic: editing a kernel changes
its source hash, which changes the file name, so stale entries are simply
never found again (``repro cache clear`` removes them).  Format bumps are
handled the same way: the ``.vsrt3`` suffix changed with the layout, so a
v3 reader never even opens a leftover v2 entry.  The engine-side
representation (``TraceRecord``) never enters the key — row views are
rebuilt from the columns on demand, so engine changes cannot be masked
by a stale cache.

Configuration is via the ``REPRO_TRACE_CACHE`` environment variable:

* unset — cache under ``$XDG_CACHE_HOME/repro/traces`` (falling back to
  ``~/.cache/repro/traces``);
* a path — cache under that directory;
* ``off``, ``none``, ``0`` or empty — disable the cache entirely.

Writes are atomic (temp file + ``os.replace``) so concurrent sweep
workers can share one cache directory without coordination: the worst
case is two workers capturing the same trace and one harmlessly
overwriting the other's identical entry.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.trace.binary import (
    DEFAULT_CHUNK_RECORDS,
    BinaryTraceError,
    ChunkWriter,
    chunked_entry_info,
    dumps_trace_binary_v3,
    read_trace_binary_v3,
    read_trace_chunked,
)
from repro.trace.columnar import ChunkedTrace, ColumnarTrace, as_columnar

ENV_VAR = "REPRO_TRACE_CACHE"

#: Env var: records per chunk for streaming capture and VSRT v4 cache
#: entries.  Unset = the format default (1M records); a positive integer
#: overrides it; any falsy spelling ("0", "off", "none", ...) disables
#: chunked storage entirely (every capture materializes in memory and
#: stores v3, the pre-streaming behavior).
CHUNK_ENV_VAR = "REPRO_TRACE_CHUNK"

#: ``REPRO_TRACE_CACHE`` values that turn the cache off.  Any common
#: falsy spelling disables the cache everywhere rather than being
#: misread as a relocation path named "false"/"no".
_DISABLED_VALUES = frozenset({"", "0", "off", "none", "disabled", "false", "no"})

#: File suffix; bump together with the binary format's magic so readers
#: of a new format never even open old-format files.
_SUFFIX = ".vsrt3"

#: Suffix for chunked (VSRT v4) entries — long traces only; short
#: captures keep the mmap-friendly single-block v3 layout.
_SUFFIX_V4 = ".vsrt4"

#: Hex digits of the kernel-source SHA-256 kept in the key.
_HASH_CHARS = 16


def chunk_records() -> int | None:
    """Records per chunk from ``REPRO_TRACE_CHUNK``; ``None`` when
    chunked storage is disabled."""
    raw = os.environ.get(CHUNK_ENV_VAR)
    if raw is None:
        return DEFAULT_CHUNK_RECORDS
    if raw.strip().lower() in _DISABLED_VALUES:
        return None
    try:
        value = int(raw)
    except ValueError as error:
        raise ValueError(
            f"{CHUNK_ENV_VAR}={raw!r} is not an integer chunk size "
            "(records per chunk, or 0/off to disable chunked storage)"
        ) from error
    if value < 1:
        return None
    return value


def cache_dir() -> Path | None:
    """The configured cache directory, or ``None`` when disabled.

    The directory is *not* created here — only writers create it, so
    read-only consumers (``repro cache info`` on a fresh machine) never
    touch the filesystem.
    """
    override = os.environ.get(ENV_VAR)
    if override is not None:
        if override.strip().lower() in _DISABLED_VALUES:
            return None
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro" / "traces"


def cache_enabled() -> bool:
    return cache_dir() is not None


def source_hash(source: str) -> str:
    """Content hash of a kernel's source text (the invalidation key)."""
    return hashlib.sha256(source.encode()).hexdigest()[:_HASH_CHARS]


def trace_key(benchmark: str, source: str, max_instructions: int | None) -> str:
    """Content-addressed cache key: name, source hash, and limit."""
    limit = "full" if max_instructions is None else str(max_instructions)
    return f"{benchmark}-{source_hash(source)}-{limit}"


def trace_path(
    benchmark: str, source: str, max_instructions: int | None
) -> Path | None:
    """Where the entry for this key lives (``None`` when disabled)."""
    directory = cache_dir()
    if directory is None:
        return None
    return directory / (trace_key(benchmark, source, max_instructions) + _SUFFIX)


def trace_path_chunked(
    benchmark: str, source: str, max_instructions: int | None
) -> Path | None:
    """Where a *chunked* (v4) entry for this key lives."""
    directory = cache_dir()
    if directory is None:
        return None
    return directory / (
        trace_key(benchmark, source, max_instructions) + _SUFFIX_V4
    )


def load_trace(
    benchmark: str, source: str, max_instructions: int | None
) -> ColumnarTrace | ChunkedTrace | None:
    """Return the cached trace for this key, or ``None`` on a miss.

    v3 hits are mmap-backed :class:`ColumnarTrace` objects — the mapping
    stays open for the trace's lifetime.  v4 hits are
    :class:`ChunkedTrace` objects serving one chunk at a time; every
    chunk CRC is verified in one streaming pass at load, so a corrupt
    middle chunk is detected *here* (treated as a miss and deleted —
    the next capture regenerates it), never mid-simulation.
    """
    path = trace_path(benchmark, source, max_instructions)
    if path is not None and path.is_file():
        try:
            return read_trace_binary_v3(path)
        except OSError:
            return None
        except BinaryTraceError:
            try:
                path.unlink()
            except OSError:
                pass
    chunked = trace_path_chunked(benchmark, source, max_instructions)
    if chunked is None or not chunked.is_file():
        return None
    try:
        return read_trace_chunked(chunked, verify=True)
    except OSError:
        return None
    except BinaryTraceError:
        try:
            chunked.unlink()
        except OSError:
            pass
        return None


def store_trace(
    benchmark: str,
    source: str,
    max_instructions: int | None,
    records,
) -> Path | None:
    """Atomically write ``records`` under this key; returns the path.

    Returns ``None`` (and stores nothing) when the cache is disabled or
    the directory is unwritable — caching is an optimisation, never a
    hard dependency.
    """
    path = trace_path(benchmark, source, max_instructions)
    if path is None:
        return None
    data = dumps_trace_binary_v3(records)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return None
    return path


def cached_trace(
    benchmark: str, max_instructions: int | None = None
) -> ColumnarTrace | ChunkedTrace:
    """The dynamic trace for ``benchmark``, from disk when possible.

    This is the high-level entry the harness and CLI use in place of
    ``kernel(name).trace(limit)``: a hit skips the functional simulator
    entirely; a miss captures the trace and populates the cache for the
    next caller.

    Capture *streams*: with the cache writable and chunked storage on
    (``REPRO_TRACE_CHUNK``, default 1M records per chunk), records flow
    from the functional simulator straight into a chunk writer, so peak
    memory is O(chunk) regardless of trace length.  Captures no longer
    than one chunk are converted to the mmap-friendly v3 layout; longer
    captures keep the chunked v4 layout and are served as
    :class:`ChunkedTrace`.
    """
    from repro.programs.suite import kernel

    spec = kernel(benchmark)
    cached = load_trace(benchmark, spec.source, max_instructions)
    if cached is not None:
        return cached
    chunk = chunk_records()
    directory = cache_dir()
    if chunk is not None and directory is not None:
        streamed = _capture_streaming(
            benchmark, spec, max_instructions, chunk, directory
        )
        if streamed is not None:
            return streamed
    trace = as_columnar(spec.trace(max_instructions))
    store_trace(benchmark, spec.source, max_instructions, trace)
    return trace


def _capture_streaming(
    benchmark: str,
    spec,
    max_instructions: int | None,
    chunk: int,
    directory: Path,
) -> ColumnarTrace | ChunkedTrace | None:
    """Capture ``spec``'s trace with bounded memory, storing v4 (long
    captures) or v3 (captures that fit one chunk).  Returns ``None`` on
    any filesystem failure so the caller can fall back to the in-memory
    path — caching is an optimisation, never a hard dependency.
    """
    path = trace_path_chunked(benchmark, spec.source, max_instructions)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        directory.mkdir(parents=True, exist_ok=True)
        with ChunkWriter(tmp, chunk) as writer:
            writer.extend(spec.iter_trace(max_instructions))
        if writer.total <= chunk:
            # Single-chunk capture: keep the zero-parse v3 layout.
            trace = read_trace_chunked(tmp)
            columnar = (
                trace.chunk(0) if trace.chunk_count else as_columnar([])
            )
            # Return the heap-backed decoded chunk, not a re-loaded mmap
            # of the entry just stored: a miss must hand back a trace
            # that stays valid even if the cache file is later deleted
            # or overwritten (warm hits get the zero-parse mmap path).
            store_trace(benchmark, spec.source, max_instructions, columnar)
            tmp.unlink()
            return columnar
        os.replace(tmp, path)
        return read_trace_chunked(path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return None


# -- maintenance (the `repro cache` subcommand) ---------------------------


def cache_entries() -> list[Path]:
    """Every entry file (v3 and v4) currently in the cache directory."""
    directory = cache_dir()
    if directory is None or not directory.is_dir():
        return []
    return sorted(
        list(directory.glob(f"*{_SUFFIX}"))
        + list(directory.glob(f"*{_SUFFIX_V4}"))
    )


def cache_info() -> dict:
    """Summary of the cache's location and contents.

    v4 (chunked) entries additionally report their chunk geometry —
    chunk count and per-chunk payload sizes — read from the entry index
    alone, without loading any chunk data.
    """
    directory = cache_dir()
    entries = cache_entries()
    v3 = [path for path in entries if path.suffix == _SUFFIX]
    v4 = [path for path in entries if path.suffix == _SUFFIX_V4]
    chunked: dict[str, dict] = {}
    for path in v4:
        try:
            chunked[path.name] = chunked_entry_info(path)
        except (OSError, BinaryTraceError):
            chunked[path.name] = {"error": "unreadable"}
    return {
        "enabled": directory is not None,
        "dir": str(directory) if directory is not None else None,
        "entries": len(entries),
        "bytes": sum(path.stat().st_size for path in entries),
        "files": [path.name for path in entries],
        "v3_entries": len(v3),
        "v4_entries": len(v4),
        "chunked": chunked,
    }


def clear_cache() -> int:
    """Delete every cache entry; returns the number removed."""
    removed = 0
    for path in cache_entries():
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def warm_cache(
    benchmarks: list[str], max_instructions: int | None = None
) -> dict[str, int]:
    """Capture-and-store each benchmark's trace; returns name -> length."""
    return {
        name: len(cached_trace(name, max_instructions)) for name in benchmarks
    }
