"""Static/dynamic trace characteristics (the raw material of Table 1)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.opcodes import OPCODE_BY_CODE, OpClass
from repro.trace.columnar import (
    FLAG_BRANCH_TAKEN,
    FLAG_HAS_BRANCH,
    FLAG_HAS_DEST,
    KIND_BRANCH,
    ChunkedTrace,
    ColumnarTrace,
)
from repro.trace.record import TraceRecord


@dataclass
class TraceStats:
    """Aggregate characteristics of a dynamic instruction trace."""

    total: int = 0
    by_class: dict[OpClass, int] = field(default_factory=dict)
    register_writers: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    indirect_jumps: int = 0
    unique_pcs: int = 0

    @property
    def prediction_eligible_fraction(self) -> float:
        """Fraction of dynamic instructions that produce a register value.

        These are the instructions that receive a value prediction; the
        paper's Table 1 "Instructions Predicted (%)" column is this
        quantity for the SPECint95 runs (61.7%–82.0%).
        """
        return self.register_writers / self.total if self.total else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.total if self.total else 0.0

    @property
    def load_fraction(self) -> float:
        return self.loads / self.total if self.total else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.total if self.total else 0.0


# 256-entry translate tables mapping a column byte to 0x01/0x00, so a
# whole column collapses to a 0/1 bytestring in one C-speed call; two
# such bytestrings AND together as big integers and ``bit_count`` gives
# the joint count without a per-record Python loop.
_TAKEN_BITS = FLAG_HAS_BRANCH | FLAG_BRANCH_TAKEN
_FLAGS_TAKEN01 = bytes(
    1 if (value & _TAKEN_BITS) == _TAKEN_BITS else 0 for value in range(256)
)
_FLAGS_DEST01 = bytes(
    1 if value & FLAG_HAS_DEST else 0 for value in range(256)
)
_KIND_BRANCH01 = bytes(1 if value & KIND_BRANCH else 0 for value in range(256))
_NONZERO01 = bytes(1 if value else 0 for value in range(256))


def _joint_count(ones_a: bytes, ones_b: bytes) -> int:
    """How many positions hold 1 in *both* 0/1 bytestrings."""
    return (
        int.from_bytes(ones_a, "little") & int.from_bytes(ones_b, "little")
    ).bit_count()


def _accumulate_columnar(
    stats: TraceStats, pcs: set[int], block: ColumnarTrace
) -> None:
    """Fold one columnar block into ``stats`` without materializing rows.

    Everything is derived straight from the column bytes: per-opcode
    counts classify instructions, flag/kind bytes give taken branches
    and register writers.  Peak memory is O(block), which is what lets
    :func:`compute_stats` walk a chunked 10M-record trace one chunk at
    a time.
    """
    count = len(block)
    if not count:
        return
    stats.total += count
    pcs.update(block.pc)
    for code, n in Counter(block.column_bytes("opcode")).items():
        opclass = OPCODE_BY_CODE[code].opclass
        stats.by_class[opclass] = stats.by_class.get(opclass, 0) + n
        if opclass is OpClass.LOAD:
            stats.loads += n
        elif opclass is OpClass.STORE:
            stats.stores += n
        elif opclass is OpClass.BRANCH:
            stats.branches += n
        elif opclass is OpClass.IJUMP:
            stats.indirect_jumps += n
    flags = block.column_bytes("flags")
    stats.taken_branches += _joint_count(
        flags.translate(_FLAGS_TAKEN01),
        bytes(block.kind).translate(_KIND_BRANCH01),
    )
    stats.register_writers += _joint_count(
        flags.translate(_FLAGS_DEST01),
        block.column_bytes("dest_reg").translate(_NONZERO01),
    )


def compute_stats(trace: list[TraceRecord]) -> TraceStats:
    """Compute aggregate statistics over a trace.

    Single-pass and bounded-memory on every trace representation: a
    :class:`ChunkedTrace` is folded one chunk at a time (never holding
    more than the chunk LRU window), a :class:`ColumnarTrace` is folded
    columnwise (no row materialization, whose memoization would pin
    every record object), and a plain record list falls back to the
    record loop.  All three produce identical statistics — pinned by
    the regression tests.
    """
    stats = TraceStats()
    pcs: set[int] = set()
    if isinstance(trace, ChunkedTrace):
        for index in range(trace.chunk_count):
            _accumulate_columnar(stats, pcs, trace.chunk(index))
    elif isinstance(trace, ColumnarTrace):
        _accumulate_columnar(stats, pcs, trace)
    else:
        for rec in trace:
            stats.total += 1
            stats.by_class[rec.opclass] = (
                stats.by_class.get(rec.opclass, 0) + 1
            )
            pcs.add(rec.pc)
            if rec.writes_register:
                stats.register_writers += 1
            if rec.is_load:
                stats.loads += 1
            elif rec.is_store:
                stats.stores += 1
            elif rec.is_branch:
                stats.branches += 1
                if rec.branch_taken:
                    stats.taken_branches += 1
            elif rec.is_indirect:
                stats.indirect_jumps += 1
    stats.unique_pcs = len(pcs)
    return stats
