"""Static/dynamic trace characteristics (the raw material of Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord


@dataclass
class TraceStats:
    """Aggregate characteristics of a dynamic instruction trace."""

    total: int = 0
    by_class: dict[OpClass, int] = field(default_factory=dict)
    register_writers: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    indirect_jumps: int = 0
    unique_pcs: int = 0

    @property
    def prediction_eligible_fraction(self) -> float:
        """Fraction of dynamic instructions that produce a register value.

        These are the instructions that receive a value prediction; the
        paper's Table 1 "Instructions Predicted (%)" column is this
        quantity for the SPECint95 runs (61.7%–82.0%).
        """
        return self.register_writers / self.total if self.total else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.total if self.total else 0.0

    @property
    def load_fraction(self) -> float:
        return self.loads / self.total if self.total else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.total if self.total else 0.0


def compute_stats(trace: list[TraceRecord]) -> TraceStats:
    """Compute aggregate statistics over a trace."""
    stats = TraceStats()
    pcs: set[int] = set()
    for rec in trace:
        stats.total += 1
        stats.by_class[rec.opclass] = stats.by_class.get(rec.opclass, 0) + 1
        pcs.add(rec.pc)
        if rec.writes_register:
            stats.register_writers += 1
        if rec.is_load:
            stats.loads += 1
        elif rec.is_store:
            stats.stores += 1
        elif rec.is_branch:
            stats.branches += 1
            if rec.branch_taken:
                stats.taken_branches += 1
        elif rec.is_indirect:
            stats.indirect_jumps += 1
    stats.unique_pcs = len(pcs)
    return stats
