"""Dynamic instruction traces.

The timing simulator is trace-driven: the functional simulator executes a
benchmark kernel and captures one :class:`TraceRecord` per architecturally
executed instruction; the out-of-order engine then replays the record stream
against the microarchitecture model.  Trace-driven timing simulation is the
standard methodology for this class of study — the paper's own simulator
(a modified SimpleScalar ``sim-outorder``) derives timing from the same
per-instruction facts captured here.
"""

from repro.trace.record import TraceRecord
from repro.trace.capture import (
    capture_trace,
    capture_trace_chunked,
    iter_trace,
    trace_program,
)
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.writer import write_trace, dumps_trace
from repro.trace.reader import read_trace, loads_trace
from repro.trace.synthetic import (
    PhasedSyntheticConfig,
    SyntheticTraceConfig,
    generate_phased_synthetic_trace,
    generate_synthetic_trace,
    iter_phased_synthetic_trace,
    iter_synthetic_trace,
)
from repro.trace.transform import (
    concatenate,
    loop_region,
    region_of_interest,
    renumber,
    skip_warmup,
)
from repro.trace.binary import (
    ChunkWriter,
    chunked_entry_info,
    dumps_trace_binary,
    dumps_trace_binary_v3,
    dumps_trace_chunked,
    loads_trace_binary,
    loads_trace_binary_v3,
    loads_trace_chunked,
    read_trace_binary,
    read_trace_binary_v3,
    read_trace_chunked,
    sniff_format,
    write_trace_binary,
    write_trace_binary_v3,
    write_trace_chunked,
)
from repro.trace.columnar import ChunkedTrace, ColumnarTrace, as_columnar
from repro.trace.cache import (
    cache_info,
    cached_trace,
    clear_cache,
    warm_cache,
)

__all__ = [
    "TraceRecord",
    "capture_trace",
    "capture_trace_chunked",
    "iter_trace",
    "trace_program",
    "TraceStats",
    "compute_stats",
    "write_trace",
    "dumps_trace",
    "read_trace",
    "loads_trace",
    "PhasedSyntheticConfig",
    "SyntheticTraceConfig",
    "generate_phased_synthetic_trace",
    "generate_synthetic_trace",
    "iter_phased_synthetic_trace",
    "iter_synthetic_trace",
    "renumber",
    "skip_warmup",
    "region_of_interest",
    "concatenate",
    "loop_region",
    "dumps_trace_binary",
    "loads_trace_binary",
    "read_trace_binary",
    "write_trace_binary",
    "dumps_trace_binary_v3",
    "loads_trace_binary_v3",
    "read_trace_binary_v3",
    "write_trace_binary_v3",
    "ChunkWriter",
    "chunked_entry_info",
    "dumps_trace_chunked",
    "loads_trace_chunked",
    "read_trace_chunked",
    "sniff_format",
    "write_trace_chunked",
    "ChunkedTrace",
    "ColumnarTrace",
    "as_columnar",
    "cache_info",
    "cached_trace",
    "clear_cache",
    "warm_cache",
]
