"""Trace deserialization (inverse of :mod:`repro.trace.writer`)."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, TextIO

from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord
from repro.trace.writer import HEADER

_OPCODES_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}


class TraceFormatError(ValueError):
    """Raised when trace text is malformed."""


def _parse_field(token: str) -> int | None:
    return None if token == "-" else int(token)


def _parse_bool(token: str) -> bool | None:
    if token == "-":
        return None
    if token == "T":
        return True
    if token == "F":
        return False
    raise TraceFormatError(f"bad boolean field: {token!r}")


def _parse_line(line: str, lineno: int) -> TraceRecord:
    fields = line.split()
    if len(fields) != 10:
        raise TraceFormatError(f"line {lineno}: expected 10 fields, got {len(fields)}")
    opcode = _OPCODES_BY_MNEMONIC.get(fields[2])
    if opcode is None:
        raise TraceFormatError(f"line {lineno}: unknown opcode {fields[2]!r}")
    srcs = (
        tuple(int(r) for r in fields[3].split(",")) if fields[3] != "-" else ()
    )
    return TraceRecord(
        seq=int(fields[0]),
        pc=int(fields[1], 16),
        opcode=opcode,
        src_regs=srcs,
        dest_reg=_parse_field(fields[4]),
        dest_value=_parse_field(fields[5]),
        mem_addr=_parse_field(fields[6]),
        mem_size=_parse_field(fields[7]),
        branch_taken=_parse_bool(fields[8]),
        next_pc=int(fields[9], 16),
    )


def parse_trace(fp: TextIO) -> Iterator[TraceRecord]:
    """Parse records from an open text file."""
    first = fp.readline().rstrip("\n")
    if first != HEADER:
        raise TraceFormatError(f"missing trace header (got {first!r})")
    for lineno, line in enumerate(fp, start=2):
        line = line.strip()
        if line:
            yield _parse_line(line, lineno)


def loads_trace(text: str) -> list[TraceRecord]:
    """Parse records from a string."""
    import io

    return list(parse_trace(io.StringIO(text)))


def read_trace(path: str | Path) -> list[TraceRecord]:
    """Read records from ``path``."""
    with open(path, "r", encoding="ascii") as fp:
        return list(parse_trace(fp))
