"""Columnar (struct-of-arrays) dynamic-trace storage.

The sweep harness streams *one* dynamic trace through many engine
instances (configurations x models x ablations), so the trace's in-memory
representation is load-bearing for startup cost, memory footprint and
worker fan-out.  A :class:`ColumnarTrace` keeps the per-instruction facts
of :class:`~repro.trace.record.TraceRecord` as parallel fixed-width
columns instead of one Python object per instruction:

* **Zero-parse loading.**  The column layout is exactly the VSRT v3
  on-disk layout (:mod:`repro.trace.binary`), so a cache hit is an
  ``mmap`` plus a handful of ``memoryview.cast`` calls — no per-record
  decode, no per-record allocation, O(1) in trace length.
* **Zero-copy distribution.**  The same property lets the parallel sweep
  runner hand a trace to worker processes as a shared buffer (an mmap'd
  cache file or a ``multiprocessing.shared_memory`` segment) instead of
  pickling a list of records per worker (:mod:`repro.harness.parallel`).
* **Row-view compatibility.**  The timing engine consumes
  ``TraceRecord`` objects; ``trace[i]`` materializes the row *once*, on
  first touch, and memoizes it, so replaying the same trace object
  through many engine instances pays record construction once per
  process, not once per run.  Materialization writes the record's slots
  directly from the columns (the ``dest_fold`` precompute is a stored
  column, the classification flags come from a per-opcode table), which
  is cheaper than re-running ``TraceRecord.__init__``.

Column access returns plain Python ints at ``list``-like speed: columns
are ``memoryview.cast`` views over one backing buffer (or ``array.array``
columns when built from records), and the opcode-derived classification
bits live in a ``bytes`` column produced by ``bytes.translate`` — one C
call for the whole trace.

Layout (all little-endian, each column contiguous):

========== ======= ====================================================
column     type    contents
========== ======= ====================================================
pc         u64     instruction byte address
next_pc    u64     architecturally correct successor PC
dest_value u64     result value (0 when the record carries none)
mem_addr   u64     effective address (0 when not a memory op)
srcs       u32     packed source registers: count | r0<<8 | r1<<16 | r2<<24
dest_fold  u16     precomputed 16-bit XOR fold of dest_value
opcode     u8      stable opcode code (:data:`OPCODE_BY_CODE`)
flags      u8      bit0 has_dest, bit1 has_mem, bit2 branch_taken,
                   bit3 has_branch_outcome
mem_size   u8      access width in bytes (0 when not a memory op)
dest_reg   u8      destination register (0xFF when none)
========== ======= ====================================================

``seq`` is implicit: row *i* has ``seq == i`` (the same contract as the
VSRT v2 stream format — cache entries are always renumbered captures).
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterator

from repro.isa.opcodes import CLASS_LATENCY, OPCODE_BY_CODE, OpClass, Opcode
from repro.trace.record import TraceRecord

_MASK64 = (1 << 64) - 1

# -- flags byte ------------------------------------------------------------

FLAG_HAS_DEST = 1
FLAG_HAS_MEM = 2
FLAG_BRANCH_TAKEN = 4
FLAG_HAS_BRANCH = 8

# -- kind byte (derived, not stored: pure function of the opcode) ----------

KIND_BRANCH = 1
KIND_CONTROL = 2
KIND_LOAD = 4
KIND_STORE = 8
KIND_MEMORY = 16
KIND_INDIRECT = 32

#: Highest source-register arity the packed ``srcs`` column can hold.
MAX_SRC_REGS = 3


def _kind_bits(opclass: OpClass) -> int:
    bits = 0
    if opclass is OpClass.BRANCH:
        bits |= KIND_BRANCH
    if opclass in (OpClass.BRANCH, OpClass.JUMP, OpClass.IJUMP):
        bits |= KIND_CONTROL
    if opclass is OpClass.LOAD:
        bits |= KIND_LOAD | KIND_MEMORY
    if opclass is OpClass.STORE:
        bits |= KIND_STORE | KIND_MEMORY
    if opclass is OpClass.IJUMP:
        bits |= KIND_INDIRECT
    return bits


#: opcode code -> kind byte, as a 256-entry translate table so deriving
#: the whole kind column is one ``bytes.translate`` call.  Codes with no
#: opcode map to 0 (validity is checked separately via ``_VALID_CODES``).
_KIND_TABLE = bytes(
    _kind_bits(OPCODE_BY_CODE[code].opclass) if code in OPCODE_BY_CODE else 0
    for code in range(256)
)

_VALID_CODES = frozenset(OPCODE_BY_CODE)

#: opcode code -> (opcode, opclass, is_load, is_store, is_memory,
#: is_branch, is_control, is_indirect, exec_latency, sel_priority,
#: is_ctrl) for row materialization; None for invalid codes.  Kept in
#: lockstep with ``repro.trace.record._CLASS_FLAGS``.
_ROW_INFO: list[tuple | None] = [None] * 256
for _code, _op in OPCODE_BY_CODE.items():
    _oc = _op.opclass
    _ROW_INFO[_code] = (
        _op,
        _oc,
        _oc is OpClass.LOAD,
        _oc is OpClass.STORE,
        _oc is OpClass.LOAD or _oc is OpClass.STORE,
        _oc is OpClass.BRANCH,
        _oc is OpClass.BRANCH or _oc is OpClass.JUMP or _oc is OpClass.IJUMP,
        _oc is OpClass.IJUMP,
        CLASS_LATENCY[_oc],
        0 if _oc is OpClass.BRANCH or _oc is OpClass.LOAD else 1,
        _oc is OpClass.BRANCH or _oc is OpClass.IJUMP,
    )
del _code, _op, _oc

#: Pre-sliced src_regs tuples for the common arities (count 0/1/2 cover
#: every ISA instruction; 3 is headroom for synthetic traces).
_EMPTY_SRCS: tuple[int, ...] = ()


class ColumnarTraceError(ValueError):
    """Raised when columnar trace data is malformed or unrepresentable."""


#: (attribute name, array typecode, item size) in on-disk column order.
COLUMN_SPEC: tuple[tuple[str, str, int], ...] = (
    ("pc", "Q", 8),
    ("next_pc", "Q", 8),
    ("dest_value", "Q", 8),
    ("mem_addr", "Q", 8),
    ("srcs", "I", 4),
    ("dest_fold", "H", 2),
    ("opcode", "B", 1),
    ("flags", "B", 1),
    ("mem_size", "B", 1),
    ("dest_reg", "B", 1),
)

_LITTLE_ENDIAN = sys.byteorder == "little"


def pack_record_fields(rec: TraceRecord) -> tuple[int, int]:
    """``(packed_srcs, flags)`` for one record — the column encoding
    shared by :meth:`ColumnarTrace.from_records` and the streaming v4
    chunk writer (:class:`repro.trace.binary.ChunkWriter`)."""
    regs = rec.src_regs
    nsrcs = len(regs)
    if nsrcs > MAX_SRC_REGS:
        raise ColumnarTraceError(
            f"record has {nsrcs} source registers; the packed "
            f"srcs column holds at most {MAX_SRC_REGS}"
        )
    packed = nsrcs
    for pos, reg in enumerate(regs):
        if not 0 <= reg <= 0xFF:
            raise ColumnarTraceError(
                f"source register {reg} does not fit the srcs column"
            )
        packed |= reg << (8 * (pos + 1))
    flag = 0
    if rec.dest_reg is not None:
        flag |= FLAG_HAS_DEST
    if rec.mem_addr is not None:
        flag |= FLAG_HAS_MEM
    if rec.branch_taken is not None:
        flag |= FLAG_HAS_BRANCH
        if rec.branch_taken:
            flag |= FLAG_BRANCH_TAKEN
    return packed, flag


class ColumnarTrace:
    """A dynamic instruction trace stored as parallel columns.

    Duck-types the ``list[TraceRecord]`` the engine consumes — ``len``,
    indexing (memoized row materialization), iteration, equality — while
    exposing the raw columns (``pc``, ``opcode``, ``kind``, ...) for
    hot paths that want them directly.
    """

    __slots__ = (
        "pc",
        "next_pc",
        "dest_value",
        "mem_addr",
        "srcs",
        "dest_fold",
        "opcode",
        "flags",
        "mem_size",
        "dest_reg",
        #: Derived per-row classification bits (``KIND_*``), a ``bytes``.
        "kind",
        "_count",
        "_rows",
        "_materialized",
        #: Backing buffer keep-alive (mmap / SharedMemory buffer / bytes);
        #: None when columns are own-memory ``array.array`` objects.
        "_buffer",
        #: Global sequence number of row 0 — non-zero when this trace is
        #: one chunk of a :class:`ChunkedTrace`, so materialized rows
        #: carry their position in the *whole* stream.
        "_seq_base",
    )

    def __init__(self, columns: dict, count: int, buffer=None, seq_base: int = 0):
        for name, _tc, _size in COLUMN_SPEC:
            setattr(self, name, columns[name])
        self.kind = bytes(columns["opcode"]).translate(_KIND_TABLE)
        self._count = count
        self._rows: list[TraceRecord | None] = [None] * count
        self._materialized = 0
        self._buffer = buffer
        self._seq_base = seq_base

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(cls, records: list) -> "ColumnarTrace":
        """Build columns from an iterable of :class:`TraceRecord`."""
        pc = array("Q")
        next_pc = array("Q")
        dest_value = array("Q")
        mem_addr = array("Q")
        srcs = array("I")
        dest_fold = array("H")
        opcode = array("B")
        flags = array("B")
        mem_size = array("B")
        dest_reg = array("B")
        for rec in records:
            packed, flag = pack_record_fields(rec)
            pc.append(rec.pc & _MASK64)
            next_pc.append(rec.next_pc & _MASK64)
            dest_value.append((rec.dest_value or 0) & _MASK64)
            mem_addr.append((rec.mem_addr or 0) & _MASK64)
            srcs.append(packed)
            dest_fold.append(rec.dest_fold)
            opcode.append(rec.opcode.code)
            flags.append(flag)
            mem_size.append(rec.mem_size or 0)
            dest_reg.append(0xFF if rec.dest_reg is None else rec.dest_reg)
        columns = {
            "pc": pc,
            "next_pc": next_pc,
            "dest_value": dest_value,
            "mem_addr": mem_addr,
            "srcs": srcs,
            "dest_fold": dest_fold,
            "opcode": opcode,
            "flags": flags,
            "mem_size": mem_size,
            "dest_reg": dest_reg,
        }
        return cls(columns, len(opcode))

    @classmethod
    def from_buffer(
        cls, buffer, count: int, offsets: dict[str, int], seq_base: int = 0
    ) -> "ColumnarTrace":
        """Wrap columns living inside ``buffer`` (mmap, shared memory,
        bytes) without copying.

        ``offsets`` maps column name to byte offset.  On little-endian
        hosts the columns are ``memoryview.cast`` views straight into the
        buffer; big-endian hosts fall back to copied-and-byteswapped
        ``array`` columns (correctness over zero-copy).
        """
        view = memoryview(buffer)
        columns = {}
        for name, typecode, itemsize in COLUMN_SPEC:
            start = offsets[name]
            chunk = view[start : start + count * itemsize]
            if _LITTLE_ENDIAN:
                columns[name] = chunk.cast(typecode)
            else:  # pragma: no cover - exercised only on big-endian hosts
                col = array(typecode)
                col.frombytes(bytes(chunk))
                col.byteswap()
                columns[name] = col
        keep = buffer if _LITTLE_ENDIAN else None
        trace = cls(columns, count, buffer=keep, seq_base=seq_base)
        opcode_codes = set(bytes(columns["opcode"]))
        if not opcode_codes <= _VALID_CODES:
            bad = min(opcode_codes - _VALID_CODES)
            raise ColumnarTraceError(f"unknown opcode byte {bad:#x}")
        return trace

    # -- row views ---------------------------------------------------------

    def _materialize(self, index: int) -> TraceRecord:
        info = _ROW_INFO[self.opcode[index]]
        if info is None:
            raise ColumnarTraceError(
                f"unknown opcode byte {self.opcode[index]:#x} at row {index}"
            )
        rec = TraceRecord.__new__(TraceRecord)
        rec.seq = self._seq_base + index
        rec.pc = self.pc[index]
        (
            rec.opcode,
            rec.opclass,
            rec.is_load,
            rec.is_store,
            rec.is_memory,
            rec.is_branch,
            rec.is_control,
            rec.is_indirect,
            rec.exec_latency,
            rec.sel_priority,
            rec.is_ctrl,
        ) = info
        packed = self.srcs[index]
        nsrcs = packed & 0xFF
        if nsrcs == 0:
            rec.src_regs = _EMPTY_SRCS
        elif nsrcs == 1:
            rec.src_regs = ((packed >> 8) & 0xFF,)
        elif nsrcs == 2:
            rec.src_regs = ((packed >> 8) & 0xFF, (packed >> 16) & 0xFF)
        else:
            rec.src_regs = (
                (packed >> 8) & 0xFF,
                (packed >> 16) & 0xFF,
                (packed >> 24) & 0xFF,
            )
        flags = self.flags[index]
        if flags & FLAG_HAS_DEST:
            dest = self.dest_reg[index]
            rec.dest_reg = dest
            rec.dest_value = self.dest_value[index]
            rec.writes_register = dest != 0
        else:
            rec.dest_reg = None
            rec.dest_value = None
            rec.writes_register = False
        if flags & FLAG_HAS_MEM:
            rec.mem_addr = self.mem_addr[index]
            rec.mem_size = self.mem_size[index]
        else:
            rec.mem_addr = None
            rec.mem_size = None
        rec.branch_taken = (
            bool(flags & FLAG_BRANCH_TAKEN) if flags & FLAG_HAS_BRANCH else None
        )
        rec.next_pc = self.next_pc[index]
        rec.dest_fold = self.dest_fold[index]
        self._materialized += 1
        return rec

    def row(self, index: int) -> TraceRecord:
        """The memoized :class:`TraceRecord` view of row ``index``."""
        rec = self._rows[index]
        if rec is None:
            rec = self._rows[index] = self._materialize(index)
        return rec

    def rows(self) -> list[TraceRecord]:
        """The fully materialized row list (memoized; also the engine's
        fast path — a plain list the fetch loop can index directly).

        The returned list is the internal memo: callers must treat it as
        read-only.
        """
        if self._materialized < self._count:
            rows = self._rows
            materialize = self._materialize
            for index in range(self._count):
                if rows[index] is None:
                    rows[index] = materialize(index)
        return self._rows  # fully populated from here on

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.row(i) for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError("trace row out of range")
        return self.row(index)

    def __iter__(self) -> Iterator[TraceRecord]:
        for index in range(self._count):
            yield self.row(index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarTrace):
            if self._count != other._count:
                return False
            return all(
                self.row(i) == other.row(i) for i in range(self._count)
            )
        if isinstance(other, (list, tuple)):
            if self._count != len(other):
                return False
            return all(
                self.row(i) == other[i] for i in range(self._count)
            )
        return NotImplemented

    def __repr__(self) -> str:
        backing = "buffer" if self._buffer is not None else "arrays"
        return f"ColumnarTrace({self._count} records, {backing}-backed)"

    # -- introspection -----------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total column payload size in bytes."""
        return self._count * sum(size for _n, _tc, size in COLUMN_SPEC)

    @property
    def materialized_rows(self) -> int:
        """How many row views have been materialized so far."""
        return self._materialized

    def to_records(self) -> list[TraceRecord]:
        """A plain ``list[TraceRecord]`` copy of the trace."""
        return list(self.rows())

    def column_bytes(self, name: str) -> bytes:
        """The raw little-endian bytes of one column."""
        column = getattr(self, name)
        if isinstance(column, array):
            if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian only
                column = array(column.typecode, column)
                column.byteswap()
            return column.tobytes()
        return bytes(column)


class ChunkedTrace:
    """A long dynamic trace served one fixed-size chunk at a time.

    Duck-types the ``list[TraceRecord]`` interface the engine consumes —
    ``len``, integer/slice indexing, iteration, equality — while keeping
    only a bounded number of chunks (default 2: the engine walks mostly
    forward, but value-misspeculation recovery can step back across a
    chunk boundary) materialized at any moment.  Peak memory is
    O(chunk size), independent of trace length.

    The chunk *source* is pluggable: anything with ``counts`` (records
    per chunk), ``chunk_size`` (nominal records per chunk — every chunk
    but the last holds exactly this many), ``load_chunk(i, seq_base)``
    returning a :class:`ColumnarTrace`, and ``bbvs`` (per-chunk
    basic-block-vector fingerprints, tuples of ints).  The on-disk and
    shared-memory VSRT v4 sources live in :mod:`repro.trace.binary`.
    """

    __slots__ = ("_source", "_counts", "_starts", "_chunk_size", "_total",
                 "_loaded", "_keep")

    def __init__(self, source, keep_chunks: int = 2):
        if keep_chunks < 1:
            raise ValueError("keep_chunks must be >= 1")
        self._source = source
        self._counts = tuple(source.counts)
        self._chunk_size = source.chunk_size
        starts = []
        pos = 0
        for count in self._counts:
            starts.append(pos)
            pos += count
        self._starts = tuple(starts)
        self._total = pos
        #: chunk index -> ColumnarTrace, insertion-ordered LRU.
        self._loaded: dict[int, ColumnarTrace] = {}
        self._keep = keep_chunks

    # -- chunk access ------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        return len(self._counts)

    @property
    def chunk_size(self) -> int:
        """Nominal records per chunk (the last chunk may be shorter)."""
        return self._chunk_size

    @property
    def counts(self) -> tuple[int, ...]:
        """Records per chunk."""
        return self._counts

    @property
    def loaded_chunks(self) -> tuple[int, ...]:
        """Indices of the chunks currently materialized (bounded)."""
        return tuple(self._loaded)

    def chunk_bounds(self, index: int) -> tuple[int, int]:
        """``(start, end)`` global record positions of chunk ``index``."""
        start = self._starts[index]
        return start, start + self._counts[index]

    def chunk(self, index: int) -> ColumnarTrace:
        """Chunk ``index`` as a :class:`ColumnarTrace` (LRU-cached)."""
        loaded = self._loaded
        trace = loaded.get(index)
        if trace is not None:
            if next(reversed(loaded)) != index:  # move to LRU tail
                del loaded[index]
                loaded[index] = trace
            return trace
        if not 0 <= index < len(self._counts):
            raise IndexError("chunk index out of range")
        trace = self._source.load_chunk(index, self._starts[index])
        while len(loaded) >= self._keep:
            del loaded[next(iter(loaded))]
        loaded[index] = trace
        return trace

    def bbvs(self) -> tuple[tuple[int, ...], ...]:
        """Per-chunk basic-block-vector fingerprints (capture-time)."""
        return tuple(self._source.bbvs)

    def chunk_crcs(self) -> tuple[int, ...]:
        """Per-chunk payload CRCs from the index (no chunk is loaded).

        Two captures of the same workload are bit-identical exactly when
        these sequences match — the cheap determinism check the 10M-
        record regression uses.
        """
        return tuple(self._source.crcs)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._total))]
        if index < 0:
            index += self._total
        if not 0 <= index < self._total:
            raise IndexError("trace row out of range")
        chunk_index = index // self._chunk_size
        return self.chunk(chunk_index).row(index - self._starts[chunk_index])

    def __iter__(self) -> Iterator[TraceRecord]:
        for chunk_index in range(len(self._counts)):
            yield from self.chunk(chunk_index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (ChunkedTrace, ColumnarTrace, list, tuple)):
            if self._total != len(other):
                return False
            other_iter = iter(other)
            return all(a == b for a, b in zip(self, other_iter))
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"ChunkedTrace({self._total} records, "
            f"{len(self._counts)} chunks of {self._chunk_size})"
        )

    # -- introspection -----------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total column payload size in bytes (all chunks)."""
        itemsize = sum(size for _n, _tc, size in COLUMN_SPEC)
        return self._total * itemsize

    def to_records(self) -> list[TraceRecord]:
        """A plain ``list[TraceRecord]`` copy (materializes everything —
        test/convenience API, not for long traces)."""
        return list(self)


def as_columnar(trace) -> ColumnarTrace:
    """``trace`` as a :class:`ColumnarTrace` (identity when it already is).

    A :class:`ChunkedTrace` is materialized in full — callers that need
    bounded memory should consume chunks directly instead.
    """
    if isinstance(trace, ColumnarTrace):
        return trace
    if isinstance(trace, ChunkedTrace):
        return ColumnarTrace.from_records(iter(trace))
    return ColumnarTrace.from_records(trace)
