"""Synthetic trace generation for controlled experiments.

Kernel traces (from :mod:`repro.programs`) drive the headline reproduction;
synthetic traces let the test suite and the ablation benches dial individual
workload properties — value predictability, dependence-chain depth, branch
bias, load fraction — independently, which no real program allows.

Value streams per static "instruction" follow one of four generators:

* ``constant`` — always the same value (perfectly predictable),
* ``stride``   — arithmetic sequence (predictable by a context predictor
  once the deltas enter its history),
* ``periodic`` — repeating cycle of ``period`` values (the home turf of
  context-based prediction),
* ``random``   — LCG noise (unpredictable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord

_TEXT_BASE = 0x1000
_DATA_BASE = 0x200000
_MASK64 = (1 << 64) - 1


def _lcg(state: int) -> int:
    return (state * 6364136223846793005 + 1442695040888963407) & _MASK64


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs for the synthetic workload generator.

    ``chain_length``: number of back-to-back dependent ALU instructions per
    loop body — the longer the chain, the more value prediction can help.
    ``predictable_fraction``: share of producer instructions whose output
    stream is predictable (periodic) rather than random.
    ``load_every``: one load per this many instructions (0 = no loads).
    ``branch_every``: one conditional branch per this many instructions
    (0 = no branches). ``branch_taken_bias`` sets its taken probability.
    """

    length: int = 10_000
    chain_length: int = 4
    predictable_fraction: float = 0.8
    value_period: int = 4
    load_every: int = 8
    branch_every: int = 16
    branch_taken_bias: float = 0.7
    seed: int = 1

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.chain_length < 1:
            raise ValueError("chain_length must be >= 1")
        if not 0.0 <= self.predictable_fraction <= 1.0:
            raise ValueError("predictable_fraction must be in [0, 1]")
        if self.value_period < 1:
            raise ValueError("value_period must be >= 1")


class _ValueStream:
    """Deterministic per-PC output-value stream."""

    def __init__(self, kind: str, seed: int, period: int):
        self.kind = kind
        self.period = period
        self.count = 0
        self.state = seed | 1
        # Pre-built cycle for periodic streams.
        values = []
        state = self.state
        for _ in range(period):
            state = _lcg(state)
            values.append(state & 0xFFFF)
        self.cycle = values

    def next(self) -> int:
        self.count += 1
        if self.kind == "constant":
            return self.cycle[0]
        if self.kind == "stride":
            return (self.cycle[0] + 3 * self.count) & _MASK64
        if self.kind == "periodic":
            return self.cycle[self.count % self.period]
        self.state = _lcg(self.state)
        return self.state & _MASK64


def generate_synthetic_trace(config: SyntheticTraceConfig) -> list[TraceRecord]:
    """Generate a deterministic synthetic trace.

    The trace models a loop whose body is ``chain_length`` dependent ALU
    instructions (r8 -> r9 -> ... chained), sprinkled with loads and a
    conditional branch, matching the dependence structure the paper's
    Figure 1 example reasons about.
    """
    return list(iter_synthetic_trace(config))


def iter_synthetic_trace(
    config: SyntheticTraceConfig,
    *,
    pc_base: int = _TEXT_BASE,
    seq_start: int = 0,
):
    """Yield :func:`generate_synthetic_trace`'s records one at a time.

    This is the streaming form the 10M-record capture paths use: memory
    stays O(1) in trace length because nothing accumulates a record
    list.  ``pc_base``/``seq_start`` relocate the loop in code space and
    in global sequence numbers — the phased generator below uses them to
    splice several distinct loops into one continuous trace.  With the
    defaults the yielded stream is element-for-element identical to
    ``generate_synthetic_trace(config)``.
    """
    cfg = config
    streams: dict[int, _ValueStream] = {}
    rng = cfg.seed | 1
    seq = seq_start
    limit = seq_start + cfg.length
    pc_slots = max(cfg.chain_length + 2, 4)

    def stream_for(pc: int, slot: int) -> _ValueStream:
        stream = streams.get(pc)
        if stream is None:
            # Deterministic predictability assignment per static pc.
            h = _lcg(pc * 2654435761 + cfg.seed)
            predictable = (h >> 8) % 1000 < cfg.predictable_fraction * 1000
            kind = "periodic" if predictable else "random"
            stream = _ValueStream(kind, h, cfg.value_period)
            streams[pc] = stream
        return stream

    while seq < limit:
        prev_dest: int | None = None
        for slot in range(pc_slots):
            if seq >= limit:
                break
            # Pattern decisions use the position *within this segment*
            # so a phase behaves identically wherever the schedule
            # places it (and identically to the unphased generator).
            pos = seq - seq_start
            pc = pc_base + 8 * slot
            is_load = (
                cfg.load_every
                and slot > 0
                and pos % cfg.load_every == cfg.load_every - 1
            )
            is_branch = (
                cfg.branch_every
                and slot == pc_slots - 1
                and (pos // pc_slots) % max(cfg.branch_every // pc_slots, 1) == 0
            )
            if is_branch:
                rng = _lcg(rng)
                taken = (rng >> 16) % 1000 < cfg.branch_taken_bias * 1000
                yield TraceRecord(
                    seq=seq,
                    pc=pc,
                    opcode=Opcode.BNE,
                    src_regs=(8, 9) if prev_dest else (8,),
                    branch_taken=taken,
                    next_pc=pc_base if taken else pc + 8,
                )
            elif is_load:
                dest = 8 + (slot % cfg.chain_length)
                stream = stream_for(pc, slot)
                value = stream.next()
                rng = _lcg(rng)
                addr = _DATA_BASE + ((rng >> 20) & 0x3FF) * 8
                yield TraceRecord(
                    seq=seq,
                    pc=pc,
                    opcode=Opcode.LD,
                    src_regs=(29,),
                    dest_reg=dest,
                    dest_value=value,
                    mem_addr=addr,
                    mem_size=8,
                    next_pc=pc + 8,
                )
                prev_dest = dest
            else:
                dest = 8 + (slot % cfg.chain_length)
                src: tuple[int, ...] = (prev_dest,) if prev_dest else (4,)
                stream = stream_for(pc, slot)
                value = stream.next()
                yield TraceRecord(
                    seq=seq,
                    pc=pc,
                    opcode=Opcode.ADD,
                    src_regs=src,
                    dest_reg=dest,
                    dest_value=value,
                    next_pc=pc + 8,
                )
                prev_dest = dest
            seq += 1


#: Code-space separation between phases: far enough apart that no two
#: phases share a static PC, so their basic-block-vector fingerprints
#: (and predictor state) are fully distinct.
_PHASE_STRIDE = 0x40000


@dataclass(frozen=True)
class PhasedSyntheticConfig:
    """A phase-rich workload: several synthetic loops spliced in time.

    ``phases`` are the distinct program behaviors; ``schedule`` says
    which phase runs in each segment (default: each phase once, in
    order).  Each scheduled segment emits its phase's ``length`` records
    from a loop at a phase-specific PC base, with globally continuous
    sequence numbers — exactly the recurring-phase structure SimPoint-
    style sampling exploits, under experimental control.
    """

    phases: tuple[SyntheticTraceConfig, ...]
    schedule: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("phases must be non-empty")
        for index in self.schedule:
            if not 0 <= index < len(self.phases):
                raise ValueError(
                    f"schedule entry {index} out of range for "
                    f"{len(self.phases)} phases"
                )

    def resolved_schedule(self) -> tuple[int, ...]:
        return self.schedule or tuple(range(len(self.phases)))

    @property
    def length(self) -> int:
        return sum(
            self.phases[index].length for index in self.resolved_schedule()
        )


def iter_phased_synthetic_trace(config: PhasedSyntheticConfig):
    """Yield a phased workload's records with O(1) memory."""
    seq = 0
    for phase_index in config.resolved_schedule():
        phase = config.phases[phase_index]
        yield from iter_synthetic_trace(
            phase,
            pc_base=_TEXT_BASE + _PHASE_STRIDE * phase_index,
            seq_start=seq,
        )
        seq += phase.length


def generate_phased_synthetic_trace(
    config: PhasedSyntheticConfig,
) -> list[TraceRecord]:
    return list(iter_phased_synthetic_trace(config))
