"""Trace serialization: a compact line-oriented text format.

Each record becomes one line of space-separated fields::

    seq pc opcode srcs dest dest_value mem_addr mem_size taken next_pc

Absent fields are encoded as ``-``.  ``srcs`` is a comma-joined register
list (or ``-``).  The format round-trips exactly (property-tested) and is
diff-friendly, which makes failing timing tests easy to inspect.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from repro.trace.record import TraceRecord

HEADER = "#vsr-trace-v1"


def _field(value: object) -> str:
    if value is None:
        return "-"
    if value is True:
        return "T"
    if value is False:
        return "F"
    return str(value)


def _record_line(rec: TraceRecord) -> str:
    srcs = ",".join(str(r) for r in rec.src_regs) if rec.src_regs else "-"
    return " ".join(
        (
            str(rec.seq),
            format(rec.pc, "x"),
            rec.opcode.mnemonic,
            srcs,
            _field(rec.dest_reg),
            _field(rec.dest_value),
            _field(rec.mem_addr),
            _field(rec.mem_size),
            _field(rec.branch_taken),
            format(rec.next_pc, "x"),
        )
    )


def dump_trace(records: Iterable[TraceRecord], fp: TextIO) -> int:
    """Write records to an open text file; returns the record count."""
    fp.write(HEADER + "\n")
    count = 0
    for rec in records:
        fp.write(_record_line(rec) + "\n")
        count += 1
    return count


def dumps_trace(records: Iterable[TraceRecord]) -> str:
    """Serialize records to a string."""
    lines = [HEADER]
    lines.extend(_record_line(rec) for rec in records)
    return "\n".join(lines) + "\n"


def write_trace(records: Iterable[TraceRecord], path: str | Path) -> int:
    """Write records to ``path``; returns the record count."""
    with open(path, "w", encoding="ascii") as fp:
        return dump_trace(records, fp)
