"""Speedup computation with the paper's averaging conventions.

Section 5.1: "Speedup was calculated as a ratio of the performance of a
configuration with value prediction to an identical configuration without
value prediction.  For average speedup calculation harmonic mean was used.
Arithmetic mean was used for reporting average prediction rates."
"""

from __future__ import annotations

from typing import Iterable


def speedup(base_cycles: int, vp_cycles: int) -> float:
    """Cycles ratio: > 1 means value prediction helped."""
    if vp_cycles <= 0 or base_cycles <= 0:
        raise ValueError("cycle counts must be positive")
    return base_cycles / vp_cycles


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean (the paper's average for speedups)."""
    items = list(values)
    if not items:
        raise ValueError("harmonic mean of no values")
    if any(v <= 0 for v in items):
        raise ValueError("harmonic mean requires positive values")
    return len(items) / sum(1.0 / v for v in items)


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (the paper's average for prediction rates)."""
    items = list(values)
    if not items:
        raise ValueError("arithmetic mean of no values")
    return sum(items) / len(items)
