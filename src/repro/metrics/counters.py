"""Raw event counters collected during one simulation run.

Besides the per-run dataclass, this module provides the aggregation
primitives the harness uses to combine runs: :meth:`SimCounters.merge`
(fold another run's counts into this one), :meth:`SimCounters.merged`
(combine a whole batch, e.g. one per parallel worker), and
:class:`CounterBatch` (phase-batched accumulation with idempotent
flush, for consumers that collect per-phase counters and fold them into
a running total at phase boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable


@dataclass
class SimCounters:
    """Everything the harness needs to compute the paper's metrics."""

    cycles: int = 0
    retired: int = 0  # correct-path instructions retired
    dispatched: int = 0
    dispatched_wrong_path: int = 0
    issued: int = 0
    issued_speculative: int = 0  # issued with predicted/speculative inputs
    reissues: int = 0
    squashed: int = 0

    # -- value prediction ---------------------------------------------------
    predictions: int = 0  # value predictions made (eligible instrs)
    predictions_correct: int = 0
    speculated: int = 0  # predictions actually used (confident)
    misspeculations: int = 0  # speculated and wrong
    invalidation_events: int = 0
    #: Provisional invalidations: speculative-equality mismatches that
    #: muted a prediction before its final resolution.
    provisional_invalidations: int = 0
    #: Predictions accepted only thanks to approximate equality
    #: (config.equality_ignore_low_bits > 0).
    approximate_matches: int = 0
    verification_events: int = 0
    #: (confidence, outcome) breakdown, the raw material of Figure 4.
    correct_high: int = 0
    correct_low: int = 0
    incorrect_high: int = 0
    incorrect_low: int = 0

    # -- branches -------------------------------------------------------------
    branches: int = 0
    branch_mispredictions: int = 0

    # -- memory ----------------------------------------------------------------
    loads: int = 0
    stores: int = 0
    store_forwards: int = 0
    dcache_port_conflicts: int = 0

    # -- dispatch stalls, by cause -------------------------------------------
    stall_window_full: int = 0
    stall_lsq_full: int = 0
    stall_fetch_empty: int = 0

    # -- occupancy ---------------------------------------------------------------
    window_peak: int = 0
    window_occupancy_sum: int = 0

    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def prediction_accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return self.predictions_correct / self.predictions

    @property
    def misspeculation_rate(self) -> float:
        """Fraction of *used* predictions that were wrong."""
        return self.misspeculations / self.speculated if self.speculated else 0.0

    @property
    def branch_misprediction_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.branch_mispredictions / self.branches

    @property
    def mean_window_occupancy(self) -> float:
        if not self.cycles:
            return 0.0
        return self.window_occupancy_sum / self.cycles

    # -- aggregation -------------------------------------------------------

    #: Fields combined by maximum rather than summed when merging runs.
    _MERGE_MAX = frozenset({"window_peak"})

    def merge(self, other: "SimCounters") -> "SimCounters":
        """Fold ``other``'s counts into this instance (returns self).

        Integer fields add (``window_peak`` takes the maximum — a peak
        across runs is the largest single-run peak); ``extra`` entries
        add per key.  Derived rates are recomputed from the merged raw
        counts by the properties, so a merged instance answers e.g.
        ``misspeculation_rate`` for the combined population.
        """
        for spec in fields(self):
            name = spec.name
            if name == "extra":
                continue
            theirs = getattr(other, name)
            if name in self._MERGE_MAX:
                if theirs > getattr(self, name):
                    setattr(self, name, theirs)
            else:
                setattr(self, name, getattr(self, name) + theirs)
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        return self

    @classmethod
    def merged(cls, batch: Iterable["SimCounters"]) -> "SimCounters":
        """Combine a batch of runs (e.g. one per parallel job) into one."""
        out = cls()
        for counters in batch:
            out.merge(counters)
        return out


class CounterBatch:
    """Phase-batched counter accumulation with idempotent flush.

    Consumers that measure in phases (a sweep chunk, a parallel-job
    wave) ``add()`` each run's counters as it completes and ``flush()``
    at the phase boundary, folding the pending runs into ``total``.
    Flushing an empty phase is a no-op and flushing twice is idempotent
    — the pending list is consumed exactly once — so phase boundaries
    can be signalled defensively from multiple places.
    """

    def __init__(self) -> None:
        self.total = SimCounters()
        self._pending: list[SimCounters] = []
        self.flushes = 0  # flushes that folded at least one run

    def add(self, counters: SimCounters) -> None:
        self._pending.append(counters)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def flush(self) -> int:
        """Fold pending runs into ``total``; returns how many were folded."""
        count = len(self._pending)
        if count:
            for counters in self._pending:
                self.total.merge(counters)
            self._pending.clear()
            self.flushes += 1
        return count
