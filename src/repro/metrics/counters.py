"""Raw event counters collected during one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimCounters:
    """Everything the harness needs to compute the paper's metrics."""

    cycles: int = 0
    retired: int = 0  # correct-path instructions retired
    dispatched: int = 0
    dispatched_wrong_path: int = 0
    issued: int = 0
    issued_speculative: int = 0  # issued with predicted/speculative inputs
    reissues: int = 0
    squashed: int = 0

    # -- value prediction ---------------------------------------------------
    predictions: int = 0  # value predictions made (eligible instrs)
    predictions_correct: int = 0
    speculated: int = 0  # predictions actually used (confident)
    misspeculations: int = 0  # speculated and wrong
    invalidation_events: int = 0
    #: Provisional invalidations: speculative-equality mismatches that
    #: muted a prediction before its final resolution.
    provisional_invalidations: int = 0
    #: Predictions accepted only thanks to approximate equality
    #: (config.equality_ignore_low_bits > 0).
    approximate_matches: int = 0
    verification_events: int = 0
    #: (confidence, outcome) breakdown, the raw material of Figure 4.
    correct_high: int = 0
    correct_low: int = 0
    incorrect_high: int = 0
    incorrect_low: int = 0

    # -- branches -------------------------------------------------------------
    branches: int = 0
    branch_mispredictions: int = 0

    # -- memory ----------------------------------------------------------------
    loads: int = 0
    stores: int = 0
    store_forwards: int = 0
    dcache_port_conflicts: int = 0

    # -- dispatch stalls, by cause -------------------------------------------
    stall_window_full: int = 0
    stall_lsq_full: int = 0
    stall_fetch_empty: int = 0

    # -- occupancy ---------------------------------------------------------------
    window_peak: int = 0
    window_occupancy_sum: int = 0

    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def prediction_accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return self.predictions_correct / self.predictions

    @property
    def misspeculation_rate(self) -> float:
        """Fraction of *used* predictions that were wrong."""
        return self.misspeculations / self.speculated if self.speculated else 0.0

    @property
    def branch_misprediction_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.branch_mispredictions / self.branches

    @property
    def mean_window_occupancy(self) -> float:
        if not self.cycles:
            return 0.0
        return self.window_occupancy_sum / self.cycles
