"""Human-readable summaries of simulation counters."""

from __future__ import annotations

from repro.metrics.counters import SimCounters


def summarize_counters(counters: SimCounters, label: str = "") -> str:
    """Multi-line textual summary of one run (CLI / example output)."""
    lines: list[str] = []
    if label:
        lines.append(label)
    lines.append(f"  cycles                  {counters.cycles:>12}")
    lines.append(f"  instructions retired    {counters.retired:>12}")
    lines.append(f"  IPC                     {counters.ipc:>12.3f}")
    lines.append(
        f"  branches                {counters.branches:>12}"
        f"  (mispredict rate {counters.branch_misprediction_rate:.2%})"
    )
    lines.append(
        f"  loads / stores          {counters.loads:>6} / {counters.stores:<6}"
        f" (forwards {counters.store_forwards})"
    )
    if counters.predictions:
        lines.append(
            f"  value predictions       {counters.predictions:>12}"
            f"  (accuracy {counters.prediction_accuracy:.2%})"
        )
        lines.append(
            f"  speculated / missp.     {counters.speculated:>6} /"
            f" {counters.misspeculations:<6}"
            f" (missp. rate {counters.misspeculation_rate:.2%})"
        )
        lines.append(f"  reissues                {counters.reissues:>12}")
        if counters.provisional_invalidations:
            lines.append(
                f"  provisional invalid.    "
                f"{counters.provisional_invalidations:>12}"
            )
    stalls = (
        counters.stall_window_full
        + counters.stall_lsq_full
        + counters.stall_fetch_empty
    )
    if stalls:
        lines.append(
            f"  dispatch stalls         {stalls:>12}"
            f"  (window {counters.stall_window_full},"
            f" lsq {counters.stall_lsq_full},"
            f" fetch {counters.stall_fetch_empty})"
        )
    lines.append(
        f"  window peak / mean      {counters.window_peak:>6} /"
        f" {counters.mean_window_occupancy:<8.1f}"
    )
    return "\n".join(lines)
