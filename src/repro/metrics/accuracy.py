"""Prediction-accuracy breakdown in the Figure 4 format.

Predictions are divided into four sets: correct with high confidence (CH),
correct with low confidence (CL), incorrect with high confidence (IH) and
incorrect with low confidence (IL).  CH + CL is the overall prediction
accuracy; IH is the misspeculation exposure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.metrics.counters import SimCounters
from repro.metrics.speedup import arithmetic_mean


@dataclass(frozen=True)
class AccuracyBreakdown:
    """CH/CL/IH/IL as fractions of all predictions."""

    ch: float
    cl: float
    ih: float
    il: float

    @property
    def correct(self) -> float:
        return self.ch + self.cl

    @classmethod
    def from_counters(cls, counters: SimCounters) -> "AccuracyBreakdown":
        total = (
            counters.correct_high
            + counters.correct_low
            + counters.incorrect_high
            + counters.incorrect_low
        )
        if total == 0:
            return cls(0.0, 0.0, 0.0, 0.0)
        return cls(
            ch=counters.correct_high / total,
            cl=counters.correct_low / total,
            ih=counters.incorrect_high / total,
            il=counters.incorrect_low / total,
        )

    def as_dict(self) -> dict[str, float]:
        return {"CH": self.ch, "CL": self.cl, "IH": self.ih, "IL": self.il}


def average_breakdown(breakdowns: Iterable[AccuracyBreakdown]) -> AccuracyBreakdown:
    """Arithmetic-mean the four components (the paper's convention, so each
    benchmark contributes the same number of predictions)."""
    items = list(breakdowns)
    if not items:
        raise ValueError("no breakdowns to average")
    return AccuracyBreakdown(
        ch=arithmetic_mean(b.ch for b in items),
        cl=arithmetic_mean(b.cl for b in items),
        ih=arithmetic_mean(b.ih for b in items),
        il=arithmetic_mean(b.il for b in items),
    )
