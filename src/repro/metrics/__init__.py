"""Simulation statistics and the paper's reporting conventions."""

from repro.metrics.counters import SimCounters
from repro.metrics.speedup import harmonic_mean, arithmetic_mean, speedup
from repro.metrics.accuracy import AccuracyBreakdown, average_breakdown
from repro.metrics.summary import summarize_counters

__all__ = [
    "SimCounters",
    "harmonic_mean",
    "arithmetic_mean",
    "speedup",
    "AccuracyBreakdown",
    "average_breakdown",
    "summarize_counters",
]
