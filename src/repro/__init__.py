"""repro — a reproduction of *Modeling Value Speculation* (Sazeides, HPCA 2002).

The package provides, end to end:

* the paper's **speculative-execution model** — model variables and latency
  variables with the named **super/great/good** instances (:mod:`repro.core`);
* a cycle-level **out-of-order timing simulator** with a unified instruction
  window, gshare branch prediction, the paper's cache hierarchy, a
  load/store queue, wrong-path modeling, and full value-speculation timing
  (:mod:`repro.engine`);
* the **context-based value predictor** with realistic/oracle confidence and
  immediate/delayed update timing (:mod:`repro.vp`);
* a workload substrate — a small RISC ISA, assembler, functional simulator
  and eight SPECint95 stand-in kernels (:mod:`repro.isa`, :mod:`repro.asm`,
  :mod:`repro.func`, :mod:`repro.programs`, :mod:`repro.trace`);
* an **experiment harness** regenerating every table and figure in the
  paper's evaluation (:mod:`repro.harness`), runnable via ``python -m repro``.

Quickstart::

    from repro import (
        GREAT_MODEL, ProcessorConfig, kernel, run_baseline, run_trace,
    )

    trace = kernel("m88ksim").trace(max_instructions=10_000)
    config = ProcessorConfig(issue_width=8, window_size=48)
    base = run_baseline(trace, config)
    vp = run_trace(trace, config, GREAT_MODEL, confidence="real",
                   update_timing="D")
    print("speedup:", base.cycles / vp.cycles)
"""

from repro.core import (
    GOOD_MODEL,
    GREAT_MODEL,
    SUPER_MODEL,
    LatencyModel,
    ModelVariables,
    SpeculativeExecutionModel,
    ValueState,
    named_models,
)
from repro.engine import (
    PAPER_CONFIGS,
    PipelineSimulator,
    ProcessorConfig,
    SimulationResult,
    paper_config,
    run_baseline,
    run_speedup,
    run_trace,
)
from repro.programs import KernelSpec, benchmark_suite, kernel, kernel_names
from repro.trace import TraceRecord, capture_trace, compute_stats, trace_program
from repro.vp import (
    ContextValuePredictor,
    HybridPredictor,
    LastValuePredictor,
    OracleConfidence,
    ResettingConfidenceEstimator,
    StridePredictor,
    UpdateTiming,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "SpeculativeExecutionModel",
    "LatencyModel",
    "ModelVariables",
    "ValueState",
    "SUPER_MODEL",
    "GREAT_MODEL",
    "GOOD_MODEL",
    "named_models",
    # engine
    "ProcessorConfig",
    "PAPER_CONFIGS",
    "paper_config",
    "PipelineSimulator",
    "SimulationResult",
    "run_baseline",
    "run_trace",
    "run_speedup",
    # workloads
    "KernelSpec",
    "benchmark_suite",
    "kernel",
    "kernel_names",
    "TraceRecord",
    "trace_program",
    "capture_trace",
    "compute_stats",
    # value prediction
    "ContextValuePredictor",
    "LastValuePredictor",
    "StridePredictor",
    "HybridPredictor",
    "ResettingConfidenceEstimator",
    "OracleConfidence",
    "UpdateTiming",
]
