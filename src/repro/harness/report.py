"""Automated reproduction report: results JSON → markdown with verdicts.

Consumes the JSON written by ``scripts/run_full_experiments.py`` and
renders a markdown report that re-checks every qualitative claim the
paper makes against the measured data, marking each REPRODUCED or
DEVIATION.  The checks are the machine-verifiable core of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Verdict:
    """One checked claim."""

    claim: str
    reproduced: bool
    evidence: str

    @property
    def tag(self) -> str:
        return "REPRODUCED" if self.reproduced else "DEVIATION"


def _figure3_grid(results: dict) -> dict[tuple[str, str, str], float]:
    return {
        (c["config"], c["setting"], c["model"]): c["speedup"]
        for c in results["figure3"]
    }


def check_claims(results: dict) -> list[Verdict]:
    """Evaluate the paper's stated findings against measured results."""
    verdicts: list[Verdict] = []

    # Table 1: predicted-% within tolerance per benchmark.
    worst = max(
        (abs(row["predicted_pct"] - row["paper_predicted_pct"]), row["benchmark"])
        for row in results["table1"]
    )
    verdicts.append(
        Verdict(
            "Table 1: per-benchmark predicted-instruction share matches",
            worst[0] < 6.0,
            f"worst deviation {worst[0]:.1f} points ({worst[1]})",
        )
    )

    # Figure 1: base takes 5 cycles; model ordering.
    f1 = results["figure1"]
    verdicts.append(
        Verdict(
            "Figure 1: base processor retires the chain in 5 cycles",
            f1["base"] == 5,
            f"measured {f1['base']}",
        )
    )
    verdicts.append(
        Verdict(
            "Figure 1: correct-prediction ordering super=great<good<base",
            f1["super/correct"] == f1["great/correct"]
            < f1["good/correct"] < f1["base"],
            f"{f1['super/correct']}/{f1['great/correct']}/"
            f"{f1['good/correct']}/{f1['base']}",
        )
    )
    verdicts.append(
        Verdict(
            "Figure 1: misprediction ordering super<great<good",
            f1["super/incorrect"] < f1["great/incorrect"] < f1["good/incorrect"],
            f"{f1['super/incorrect']}/{f1['great/incorrect']}/"
            f"{f1['good/incorrect']}",
        )
    )

    grid = _figure3_grid(results)
    configs = sorted({k[0] for k in grid}, key=lambda c: int(c.split("/")[0]))
    settings = sorted({k[1] for k in grid})

    # Speedups grow with width/window.
    monotone = all(
        grid[(configs[i], s, m)] <= grid[(configs[i + 1], s, m)] + 0.01
        for s in settings
        for m in ("good", "great", "super")
        for i in range(len(configs) - 1)
    )
    verdicts.append(
        Verdict(
            "Figure 3: benefits increase with issue width and window size",
            monotone,
            "checked all models/settings across configurations",
        )
    )

    # good significantly worse; sometimes below base.
    good_below_super = all(
        grid[(c, s, "good")] < grid[(c, s, "super")]
        for c in configs
        for s in settings
    )
    good_below_base_somewhere = any(
        grid[(c, s, "good")] < 1.0 for c in configs for s in settings
    )
    verdicts.append(
        Verdict(
            "Figure 3: good is significantly worse, sometimes below base",
            good_below_super and good_below_base_somewhere,
            f"good<super everywhere: {good_below_super}; "
            f"good<1.0 somewhere: {good_below_base_somewhere}",
        )
    )

    # Confidence matters more than update timing (largest config).
    big = configs[-1]
    conf_gain = grid[(big, "I/O", "super")] - grid[(big, "I/R", "super")]
    timing_gain = grid[(big, "I/R", "super")] - grid[(big, "D/R", "super")]
    verdicts.append(
        Verdict(
            "Figure 3: confidence moves performance more than update timing",
            conf_gain >= timing_gain,
            f"R->O gain {conf_gain:.3f} vs D->I gain {timing_gain:.3f} at {big}",
        )
    )

    # Figure 4: IH small, CL large, delayed degrades with geometry.
    f4 = {(c["config"], c["timing"]): c for c in results["figure4"]}
    ih_small = all(cell["IH"] < 0.02 for cell in f4.values())
    cl_large = all(cell["CL"] > 0.10 for cell in f4.values())
    d_correct = [
        f4[(c, "D")]["CH"] + f4[(c, "D")]["CL"] for c in configs if (c, "D") in f4
    ]
    d_degrades = all(
        d_correct[i] >= d_correct[i + 1] - 0.02 for i in range(len(d_correct) - 1)
    )
    verdicts.append(
        Verdict(
            "Figure 4: resetting counters keep IH tiny at a large CL cost",
            ih_small and cl_large,
            f"max IH {max(c['IH'] for c in f4.values()):.3f}, "
            f"min CL {min(c['CL'] for c in f4.values()):.3f}",
        )
    )
    verdicts.append(
        Verdict(
            "Figure 4: delayed-update accuracy decreases with width/window",
            d_degrades,
            f"D-timing correct fractions: "
            + ", ".join(f"{v:.3f}" for v in d_correct),
        )
    )

    # ABL-L: verification most sensitive; invalidation/reissue not.
    abl = results.get("ABL-L latency sensitivity")
    if abl:
        ver_drop = abl["Exec-Eq-Verification=0"] - abl["Exec-Eq-Verification=2"]
        inv_drop = abl["Exec-Eq-Invalidation=0"] - abl["Exec-Eq-Invalidation=2"]
        reissue_drop = abl["Invalidation-Reissue=0"] - abl["Invalidation-Reissue=2"]
        verdicts.append(
            Verdict(
                "Conclusion: fast verification essential; slow invalidation "
                "acceptable when misspeculation is infrequent",
                ver_drop > inv_drop and ver_drop > reissue_drop,
                f"0->2 cycle cost: verification {ver_drop:.3f}, "
                f"invalidation {inv_drop:.3f}, reissue {reissue_drop:.3f}",
            )
        )
    return verdicts


def render_report(results: dict) -> str:
    """Markdown report with the verdict table and the headline data."""
    verdicts = check_claims(results)
    reproduced = sum(1 for v in verdicts if v.reproduced)
    lines = [
        "# Reproduction report",
        "",
        f"Trace limit: {results.get('trace_limit')} instructions/kernel; "
        f"wall time {results.get('wall_seconds', '?')}s.",
        "",
        f"**{reproduced}/{len(verdicts)} checked claims reproduced.**",
        "",
        "| Verdict | Claim | Evidence |",
        "|---------|-------|----------|",
    ]
    for v in verdicts:
        lines.append(f"| {v.tag} | {v.claim} | {v.evidence} |")
    lines.append("")
    lines.append("## Figure 3 headline (harmonic-mean speedups)")
    lines.append("")
    grid = _figure3_grid(results)
    configs = sorted({k[0] for k in grid}, key=lambda c: int(c.split("/")[0]))
    settings = sorted({k[1] for k in grid})
    lines.append("| Config | Setting | good | great | super |")
    lines.append("|--------|---------|------|-------|-------|")
    for config in configs:
        for setting in settings:
            lines.append(
                f"| {config} | {setting} | "
                f"{grid[(config, setting, 'good')]:.3f} | "
                f"{grid[(config, setting, 'great')]:.3f} | "
                f"{grid[(config, setting, 'super')]:.3f} |"
            )
    return "\n".join(lines)
