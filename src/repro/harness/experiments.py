"""The experiment registry: every paper artifact and ablation by id.

``EXPERIMENTS`` maps DESIGN.md's experiment ids to runnable entries; the
CLI (``python -m repro run <id>``) executes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.harness import figure1, figure3, figure4, sweeps, table1
from repro.harness.render import render_table


@dataclass(frozen=True)
class Experiment:
    """A runnable reproduction artifact."""

    id: str
    title: str
    paper_ref: str
    run: Callable[..., str]  # returns rendered text


def _run_table1(**kwargs) -> str:
    kwargs.pop("jobs", None)  # pure trace analysis; nothing to fan out
    kwargs.pop("backend", None)
    return table1.render_table1(table1.run_table1(**kwargs))


def _run_figure1(**kwargs) -> str:
    kwargs.pop("jobs", None)  # seven hand-built scenarios; nothing to fan out
    kwargs.pop("backend", None)
    return figure1.render_figure1(figure1.run_figure1(**kwargs))


def _run_figure3(**kwargs) -> str:
    cells = figure3.run_figure3(**kwargs)
    return figure3.render_figure3(cells) + "\n" + figure3.figure3_table(cells)


def _run_figure4(**kwargs) -> str:
    return figure4.render_figure4(figure4.run_figure4(**kwargs))


def _render_sweep(points, title: str) -> str:
    return render_table(
        ("Point", "HM Speedup"),
        [(p.label, p.speedup) for p in points],
        title=title,
    )


def _run_abl_latency(**kwargs) -> str:
    return _render_sweep(
        sweeps.latency_sensitivity_sweep(**kwargs),
        "ABL-L: per-latency-variable sensitivity (around great)",
    )


def _run_abl_verify(**kwargs) -> str:
    return _render_sweep(
        sweeps.verification_scheme_sweep(**kwargs),
        "ABL-V: verification schemes (great latencies)",
    )


def _run_abl_inval(**kwargs) -> str:
    return _render_sweep(
        sweeps.invalidation_scheme_sweep(**kwargs),
        "ABL-I: invalidation schemes (great latencies)",
    )


def _run_abl_predictor(**kwargs) -> str:
    return _render_sweep(
        sweeps.predictor_sweep(**kwargs),
        "ABL-P: value predictors (great model)",
    )


def _run_abl_equality(**kwargs) -> str:
    return _render_sweep(
        sweeps.approximate_equality_sweep(**kwargs),
        "ABL-E: approximate (non-strict) equality",
    )


def _run_abl_bpred(**kwargs) -> str:
    return _render_sweep(
        sweeps.branch_predictor_sweep(**kwargs),
        "ABL-B: branch predictors x value speculation (great model)",
    )


def _run_limit_study(
    max_instructions: int | None = 6000,
    benchmarks: list[str] | None = None,
    jobs: int = 1,  # accepted for CLI uniformity; the study is pure analysis
    backend: str | None = None,
) -> str:
    from repro.analysis.limits import limit_study, render_limit_study
    from repro.programs.suite import benchmark_suite

    parts = []
    for spec in benchmark_suite():
        if benchmarks is not None and spec.name not in benchmarks:
            continue
        trace = spec.trace(max_instructions)
        parts.append(render_limit_study(limit_study(trace), spec.name))
    if not parts:
        raise ValueError(f"no benchmarks selected from {benchmarks!r}")
    return "\n\n".join(parts)


def _run_abl_selective(**kwargs) -> str:
    return _render_sweep(
        sweeps.selective_prediction_sweep(**kwargs),
        "ABL-S: selective value prediction by instruction class",
    )


def _run_abl_ports(**kwargs) -> str:
    return _render_sweep(
        sweeps.vp_ports_sweep(**kwargs),
        "ABL-PT: value-predictor ports per cycle",
    )


def _run_abl_scaling(**kwargs) -> str:
    return _render_sweep(
        sweeps.width_scaling_sweep(**kwargs),
        "ABL-W: width/window scaling (great model, I/R)",
    )


def _run_abl_confidence_scheme(**kwargs) -> str:
    return _render_sweep(
        sweeps.confidence_scheme_sweep(**kwargs),
        "ABL-CS: confidence estimation schemes (great model, I timing)",
    )


def _run_abl_tables(**kwargs) -> str:
    return _render_sweep(
        sweeps.predictor_size_sweep(**kwargs),
        "ABL-T: predictor table sizes (great model)",
    )


def _run_abl_frontend(**kwargs) -> str:
    return _render_sweep(
        sweeps.frontend_idealism_sweep(**kwargs),
        "ABL-F: frontend idealism (great model vs per-frontend base)",
    )


def _run_abl_resolution(**kwargs) -> str:
    return _render_sweep(
        sweeps.resolution_policy_sweep(**kwargs),
        "ABL-R: branch/memory resolution policies (great latencies)",
    )


def _run_abl_confidence(**kwargs) -> str:
    return _render_sweep(
        sweeps.confidence_strength_sweep(**kwargs),
        "ABL-C: confidence counter width (great model, I timing)",
    )


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in (
        Experiment("table1", "Benchmark characteristics", "Table 1", _run_table1),
        Experiment(
            "figure1",
            "Pipeline execution example (3-instruction chain)",
            "Figure 1",
            _run_figure1,
        ),
        Experiment(
            "figure3",
            "Average speedup of speculative execution models",
            "Figure 3",
            _run_figure3,
        ),
        Experiment(
            "figure4",
            "Average prediction accuracy (CH/CL/IH/IL)",
            "Figure 4",
            _run_figure4,
        ),
        Experiment(
            "abl-latency",
            "Latency-variable sensitivity sweep",
            "Section 6 discussion",
            _run_abl_latency,
        ),
        Experiment(
            "abl-verify",
            "Verification scheme comparison",
            "Section 3.2",
            _run_abl_verify,
        ),
        Experiment(
            "abl-inval",
            "Invalidation scheme comparison",
            "Section 3.1",
            _run_abl_inval,
        ),
        Experiment(
            "abl-predictor",
            "Value predictor comparison",
            "extension",
            _run_abl_predictor,
        ),
        Experiment(
            "abl-resolution",
            "Branch/memory resolution policy comparison",
            "Section 3.2 discussion",
            _run_abl_resolution,
        ),
        Experiment(
            "abl-confidence",
            "Confidence counter-width sweep",
            "Section 3.6 discussion",
            _run_abl_confidence,
        ),
        Experiment(
            "abl-confidence-scheme",
            "Confidence estimation scheme comparison",
            "Section 3.6 discussion",
            _run_abl_confidence_scheme,
        ),
        Experiment(
            "abl-tables",
            "Predictor table-size sweep",
            "Section 3 (deferred dimension)",
            _run_abl_tables,
        ),
        Experiment(
            "abl-frontend",
            "Frontend idealism (ideal targets vs BTB+RAS)",
            "Section 5.1 assumption",
            _run_abl_frontend,
        ),
        Experiment(
            "abl-scaling",
            "Width/window scaling beyond the paper's three points",
            "Section 6 trend",
            _run_abl_scaling,
        ),
        Experiment(
            "limit-study",
            "Window-constrained ILP limits, base vs perfect value prediction",
            "Section 1 motivation",
            _run_limit_study,
        ),
        Experiment(
            "abl-selective",
            "Selective value prediction by instruction class",
            "Sections 3.5-3.6 discussion",
            _run_abl_selective,
        ),
        Experiment(
            "abl-ports",
            "Value-predictor port count",
            "Section 3 (deferred dimension)",
            _run_abl_ports,
        ),
        Experiment(
            "abl-bpred",
            "Branch predictors x value speculation",
            "Section 5.1 configuration",
            _run_abl_bpred,
        ),
        Experiment(
            "abl-equality",
            "Approximate (non-strict) value equality",
            "Section 3.3 (explicitly unexplored)",
            _run_abl_equality,
        ),
    )
}
