"""Table 1 reproduction: benchmark characteristics.

Paper columns: benchmark, input flags, dynamic instructions (millions),
instructions predicted (%).  Our kernels are small stand-ins, so the
dynamic count is reported in raw instructions alongside the paper's
millions; the predicted-% column is the directly comparable quantity
(the kernels were tuned to land near the paper's per-benchmark values).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.render import render_table
from repro.programs.suite import benchmark_suite
from repro.trace.stats import compute_stats


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's characteristics, measured and paper-reference."""

    benchmark: str
    input_label: str
    dynamic_instructions: int
    predicted_pct: float
    paper_dynamic_mil: int
    paper_predicted_pct: float


def run_table1(max_instructions: int | None = None) -> list[Table1Row]:
    """Execute every kernel and measure its Table 1 characteristics."""
    rows: list[Table1Row] = []
    for spec in benchmark_suite():
        trace = spec.trace(max_instructions)
        stats = compute_stats(trace)
        rows.append(
            Table1Row(
                benchmark=spec.name,
                input_label=spec.input_label,
                dynamic_instructions=stats.total,
                predicted_pct=100.0 * stats.prediction_eligible_fraction,
                paper_dynamic_mil=spec.paper_dynamic_mil,
                paper_predicted_pct=spec.paper_predicted_pct,
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Print the Table 1 shape with paper reference columns."""
    return render_table(
        headers=(
            "Benchmark",
            "Input",
            "Dyn Instr",
            "Predicted %",
            "Paper Instr (mil)",
            "Paper Predicted %",
        ),
        rows=[
            (
                r.benchmark,
                r.input_label,
                r.dynamic_instructions,
                f"{r.predicted_pct:.1f}",
                r.paper_dynamic_mil,
                f"{r.paper_predicted_pct:.1f}",
            )
            for r in rows
        ],
        title="Table 1: Benchmark Characteristics (measured vs paper)",
    )
