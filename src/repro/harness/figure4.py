"""Figure 4 reproduction: average prediction accuracy for the great model.

The paper splits all value predictions into four sets — correct/high
confidence (CH), correct/low (CL), incorrect/high (IH), incorrect/low
(IL) — and reports the arithmetic-mean fractions per configuration and
update timing (with realistic confidence).  The headline findings: total
correct is 63–71%; IH is held under 1% by the resetting counters, but at
the cost of a 20–25% CL set; delayed updating and larger windows lower
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import GREAT_MODEL, SpeculativeExecutionModel
from repro.engine.config import PAPER_CONFIGS, ProcessorConfig
from repro.harness.parallel import SimJob, run_jobs
from repro.harness.render import render_table
from repro.metrics.accuracy import AccuracyBreakdown, average_breakdown
from repro.programs.suite import benchmark_suite


@dataclass(frozen=True)
class Figure4Cell:
    """One bar group of Figure 4: a (config, timing) accuracy breakdown."""

    config_label: str
    timing: str  # "D" or "I"
    breakdown: AccuracyBreakdown


def run_figure4(
    max_instructions: int | None = 6000,
    benchmarks: list[str] | None = None,
    configs: tuple[ProcessorConfig, ...] = PAPER_CONFIGS,
    model: SpeculativeExecutionModel = GREAT_MODEL,
    jobs: int = 1,
    backend: str | None = None,
    batch: int | None = None,
) -> list[Figure4Cell]:
    """Measure the CH/CL/IH/IL breakdown for the great model (real
    confidence) across configurations and update timings.  ``jobs`` fans
    the (config x timing x benchmark) grid over worker processes;
    ``batch`` groups same-benchmark points into batched-engine units."""
    names = [
        spec.name
        for spec in benchmark_suite()
        if benchmarks is None or spec.name in benchmarks
    ]
    if not names:
        raise ValueError(f"no benchmarks selected from {benchmarks!r}")
    grid = [(config, timing) for config in configs for timing in ("D", "I")]
    job_list = [
        SimJob(
            name,
            config,
            model,
            max_instructions,
            confidence="R",
            update_timing=timing,
        )
        for config, timing in grid
        for name in names
    ]
    results = iter(run_jobs(job_list, jobs=jobs, backend=backend, batch=batch))
    cells: list[Figure4Cell] = []
    for config, timing in grid:
        breakdowns = [next(results).accuracy_breakdown for _ in names]
        cells.append(
            Figure4Cell(
                config_label=config.label,
                timing=timing,
                breakdown=average_breakdown(breakdowns),
            )
        )
    return cells


def render_figure4(cells: list[Figure4Cell]) -> str:
    """The figure's stacked-bar data as a table (percentages)."""
    rows = []
    for cell in cells:
        b = cell.breakdown
        rows.append(
            (
                cell.config_label,
                cell.timing,
                f"{100 * b.ch:.1f}",
                f"{100 * b.cl:.1f}",
                f"{100 * b.ih:.2f}",
                f"{100 * b.il:.1f}",
                f"{100 * b.correct:.1f}",
            )
        )
    return render_table(
        ("Config", "Timing", "CH %", "CL %", "IH %", "IL %", "Correct %"),
        rows,
        title="Figure 4: Average Prediction Accuracy (great model, real confidence)",
    )
