"""Plain-text table rendering shared by the experiment harnesses."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, header has {columns}: {row!r}"
            )
    cells = [[_format(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_bar(fraction: float, width: int = 30, fill: str = "#") -> str:
    """An ASCII bar for figure-style output (fraction in [0, 1+])."""
    clamped = max(0.0, fraction)
    filled = round(min(clamped, 1.0) * width)
    overflow = "+" if clamped > 1.0 else ""
    return fill * filled + "." * (width - filled) + overflow
