"""Process-parallel fan-out for simulation grids.

Every sweep, figure and experiment in the harness reduces to a grid of
independent simulation points: one (benchmark, processor configuration,
speculation model, confidence, update timing, value predictor) tuple per
engine run.  The cycle-level engine is pure Python and single-threaded,
so the only way to use more than one core is process parallelism; this
module provides it without changing any result.

Design rules that keep ``--jobs N`` cycle-exact against ``--jobs 1``:

* A job is a *description*, not live state.  :class:`SimJob` carries the
  benchmark **name** (the worker rebuilds the trace, memoised per
  process), the frozen config/model dataclasses, and *factories* for the
  stateful collaborators (value predictor, confidence estimator).  A
  factory is constructed fresh inside each job, so no estimator or
  predictor state ever leaks between points — in either execution mode.
* Jobs are seeded deterministically.  Each job derives a seed from its
  own content (CRC of benchmark name and trace limit) and reseeds
  :mod:`random` before building the trace and running, so results do not
  depend on which worker process ran which job, how many jobs a worker
  had run before, or scheduling order.  (The kernels and the engine are
  already deterministic; the seeding is a guard rail, not a dependency.)
* Results are merged by *submission index*, never by completion order:
  ``run_jobs`` returns results positionally aligned with its input list.

The sequential path (``jobs <= 1``) runs the exact same ``_execute``
function inline — same trace cache, same factory handling — so it is not
a separate code path that can drift.
"""

from __future__ import annotations

import os
import random
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

from repro.core.model import SpeculativeExecutionModel
from repro.engine.config import ProcessorConfig
from repro.engine.sim import SimulationResult, run_baseline, run_trace
from repro.trace.record import TraceRecord


@dataclass(frozen=True)
class SimJob:
    """One point of a simulation grid, picklable by construction.

    ``model=None`` requests a baseline (no value speculation) run.
    ``confidence`` may be the usual one-letter kind ("R"/"O") or a
    zero-argument callable returning a fresh estimator; ``predictor``
    is ``None`` (the model's default predictor) or a zero-argument
    callable.  Callables must be picklable — a top-level class or a
    :func:`functools.partial` over one, never a lambda.
    """

    benchmark: str
    config: ProcessorConfig
    model: SpeculativeExecutionModel | None = None
    max_instructions: int | None = None
    confidence: object = "R"
    update_timing: str = "I"
    predictor: Callable | None = None
    #: Per-task seed; derived from the job's content when ``None``.
    seed: int | None = field(default=None)

    def task_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        key = f"{self.benchmark}:{self.max_instructions}".encode()
        return zlib.crc32(key)


#: Per-process memo of built traces.  Workers are long-lived (one pool
#: services a whole grid), so each process pays trace acquisition once
#: per (benchmark, limit) no matter how many jobs it executes.
_TRACE_CACHE: dict[tuple[str, int | None], list[TraceRecord]] = {}


def _trace_for(benchmark: str, max_instructions: int | None) -> list[TraceRecord]:
    """The trace for one grid point: process memo, then the persistent
    on-disk cache (:mod:`repro.trace.cache`), then functional capture.

    The disk tier makes trace construction a once-per-machine cost
    instead of once-per-process: a warm cache means a sweep's workers
    (and every later sweep over the same kernels) never run the
    functional simulator at all.
    """
    key = (benchmark, max_instructions)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        from repro.trace.cache import cached_trace

        trace = cached_trace(benchmark, max_instructions)
        _TRACE_CACHE[key] = trace
    return trace


def _execute(job: SimJob) -> SimulationResult:
    """Run one job to completion (worker side; also the inline path).

    The job seed feeds a *local* :class:`random.Random`, not the global
    module state: reseeding the process-wide RNG from a worker would
    leak across jobs sharing the process (and, on the inline path, into
    the caller's interpreter), making results depend on job order.
    Nothing in the engine draws from global :mod:`random`; collaborators
    that want stochasticity receive this instance explicitly.
    """
    rng = random.Random(job.task_seed())
    trace = _trace_for(job.benchmark, job.max_instructions)
    if job.model is None:
        return run_baseline(trace, job.config)
    confidence = job.confidence() if callable(job.confidence) else job.confidence
    predictor = job.predictor() if job.predictor is not None else None
    return run_trace(
        trace,
        job.config,
        job.model,
        confidence=confidence,
        update_timing=job.update_timing,
        predictor=predictor,
    )


def effective_jobs(jobs: int | None, n_tasks: int) -> int:
    """Clamp a ``--jobs`` request to something sensible.

    ``None`` or values < 1 mean "use every core"; the result never
    exceeds the task count (spawning idle workers costs startup time).
    """
    if n_tasks <= 0:
        return 1
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_tasks))


def run_jobs(job_list: list[SimJob], jobs: int = 1) -> list[SimulationResult]:
    """Execute a grid of simulation points, ``jobs`` processes wide.

    Returns results positionally aligned with ``job_list`` regardless of
    completion order, so callers can ``zip`` jobs with results and the
    merged output is identical for any worker count.
    """
    workers = effective_jobs(jobs, len(job_list))
    if workers <= 1:
        return [_execute(job) for job in job_list]
    results: list[SimulationResult | None] = [None] * len(job_list)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {
            pool.submit(_execute, job): index
            for index, job in enumerate(job_list)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                results[pending.pop(future)] = future.result()
    return results  # type: ignore[return-value]


def run_grid(
    benchmarks: list[str],
    config: ProcessorConfig,
    model: SpeculativeExecutionModel | None,
    *,
    max_instructions: int | None = None,
    confidence: object = "R",
    update_timing: str = "I",
    predictor: Callable | None = None,
    jobs: int = 1,
) -> dict[str, SimulationResult]:
    """One (config, model, setting) row across a benchmark suite.

    The common harness shape: same settings, one run per benchmark,
    results keyed by benchmark name in input order.
    """
    job_list = [
        SimJob(
            benchmark=name,
            config=config,
            model=model,
            max_instructions=max_instructions,
            confidence=confidence,
            update_timing=update_timing,
            predictor=predictor,
        )
        for name in benchmarks
    ]
    return dict(zip(benchmarks, run_jobs(job_list, jobs=jobs)))
