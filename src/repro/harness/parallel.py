"""Process-parallel fan-out for simulation grids.

Every sweep, figure and experiment in the harness reduces to a grid of
independent simulation points: one (benchmark, processor configuration,
speculation model, confidence, update timing, value predictor) tuple per
engine run.  The cycle-level engine is pure Python and single-threaded,
so the only way to use more than one core is process parallelism; this
module provides it without changing any result.

Design rules that keep ``--jobs N`` cycle-exact against ``--jobs 1``:

* A job is a *description*, not live state.  :class:`SimJob` carries the
  benchmark **name** (the worker rebuilds the trace, memoised per
  process), the frozen config/model dataclasses, and *factories* for the
  stateful collaborators (value predictor, confidence estimator).  A
  factory is constructed fresh inside each job, so no estimator or
  predictor state ever leaks between points — in either execution mode.
* Jobs are seeded deterministically.  Each job derives a seed from its
  own content (CRC of benchmark name and trace limit) and reseeds
  :mod:`random` before building the trace and running, so results do not
  depend on which worker process ran which job, how many jobs a worker
  had run before, or scheduling order.  (The kernels and the engine are
  already deterministic; the seeding is a guard rail, not a dependency.)
* Results are merged by *submission index*, never by completion order:
  ``run_jobs`` returns results positionally aligned with its input list.
* Workers build their config-specialized engine classes locally.
  ``_execute`` runs ``run_baseline``/``run_trace`` in-process, so each
  pool worker grows its own fingerprint-keyed class cache
  (:mod:`repro.engine.specialize`); generated classes are never pickled
  or shipped, and ``REPRO_ENGINE_SPECIALIZE=0`` (exported by
  ``--no-specialize``) is inherited through the worker environment.

The sequential path (``jobs <= 1``) runs the exact same ``_execute``
function inline — same trace cache, same factory handling — so it is not
a separate code path that can drift.

Trace distribution is zero-copy.  Before spawning workers, ``run_jobs``
*stages* every distinct (benchmark, limit) the grid needs exactly once:
when the persistent disk cache is enabled the stage is just "make sure
the VSRT v3 entry exists", and each worker ``mmap``s the entry file;
when it is disabled, the parent serializes the columnar trace into one
``multiprocessing.shared_memory`` segment per key and workers attach to
it.  Either way the instruction stream crosses the process boundary as
*shared pages*, not pickled ``TraceRecord`` lists — a host materializes
each trace at most once per sweep, and worker startup cost is O(1) in
trace length.  Setting ``REPRO_TRACE_STRICT=1`` makes workers *fail*
instead of falling back to functional capture, which is how the tests
and the CI warm-sweep smoke assert the zero-materialization property.
"""

from __future__ import annotations

import logging
import os
import random
import tempfile
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

from repro.core.model import SpeculativeExecutionModel
from repro.engine.config import ProcessorConfig
from repro.engine.sim import SimulationResult, run_baseline, run_trace
from repro.trace.columnar import ColumnarTrace

#: Env var: when truthy, workers refuse to regenerate traces (memo or
#: staged handle only).  Used by tests/CI to assert warm sweeps perform
#: zero per-worker trace materializations.
STRICT_ENV_VAR = "REPRO_TRACE_STRICT"

#: Env var: default execution backend for ``run_jobs`` when the caller
#: does not pass one — ``local`` (this module's process pool),
#: ``cluster`` (the fault-tolerant sweep service, :mod:`repro.cluster`)
#: or ``service`` (the always-on HTTP front door, :mod:`repro.service`,
#: at ``REPRO_SERVICE_ADDR``).  Lets any harness entry point ride a
#: shared backend without code changes.
BACKEND_ENV_VAR = "REPRO_SWEEP_BACKEND"

#: Env var: default batch size for the batching planner when the caller
#: does not pass one — ``1`` (scalar, the default), ``N`` (up to N
#: compatible same-trace jobs per execution unit), or ``0`` (unbounded:
#: one unit per compatible same-trace group).  See :func:`plan_units`.
BATCH_ENV_VAR = "REPRO_SWEEP_BATCH"

_log = logging.getLogger(__name__)

#: Default per-job attempt budget when a *worker* dies mid-grid (the
#: job itself raising is never retried — jobs are deterministic, so a
#: job error would just recur).
DEFAULT_MAX_ATTEMPTS = 3

_STRICT_TRUE = frozenset({"1", "true", "yes", "on"})


def strict_no_capture() -> bool:
    """Whether ``REPRO_TRACE_STRICT`` asks workers to never capture."""
    return os.environ.get(STRICT_ENV_VAR, "").strip().lower() in _STRICT_TRUE


@dataclass(frozen=True)
class SimJob:
    """One point of a simulation grid, picklable by construction.

    ``model=None`` requests a baseline (no value speculation) run.
    ``confidence`` may be the usual one-letter kind ("R"/"O") or a
    zero-argument callable returning a fresh estimator; ``predictor``
    is ``None`` (the model's default predictor) or a zero-argument
    callable.  Callables must be picklable — a top-level class or a
    :func:`functools.partial` over one, never a lambda.
    """

    benchmark: str
    config: ProcessorConfig
    model: SpeculativeExecutionModel | None = None
    max_instructions: int | None = None
    confidence: object = "R"
    update_timing: str = "I"
    predictor: Callable | None = None
    #: Per-task seed; derived from the job's content when ``None``.
    seed: int | None = field(default=None)

    def task_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        key = f"{self.benchmark}:{self.max_instructions}".encode()
        return zlib.crc32(key)


@dataclass(frozen=True)
class BatchJob:
    """A planner execution unit: several :class:`SimJob` points that
    share one staged trace and run as lanes of the batched engine
    (:mod:`repro.engine.batched`) in a single worker.

    Exposes ``benchmark``/``max_instructions`` like a :class:`SimJob`
    (every member shares them, by construction in :func:`plan_units`) so
    trace staging, cluster cache warming and worker-side trace
    acquisition treat a batch exactly like a point.  Executing a
    ``BatchJob`` yields a *list* of results, positionally aligned with
    ``jobs``.
    """

    jobs: tuple[SimJob, ...]

    @property
    def benchmark(self) -> str:
        return self.jobs[0].benchmark

    @property
    def max_instructions(self) -> int | None:
        return self.jobs[0].max_instructions

    def task_seed(self) -> int:
        return self.jobs[0].task_seed()


def resolve_batch(batch: int | None = None) -> int:
    """The effective planner batch size: explicit argument, then
    ``REPRO_SWEEP_BATCH``, then 1 (scalar execution)."""
    source = "batch size"
    if batch is None:
        raw = os.environ.get(BATCH_ENV_VAR, "").strip()
        if not raw:
            return 1
        source = f"{BATCH_ENV_VAR}={raw!r}"
        try:
            batch = int(raw)
        except ValueError as error:
            raise ValueError(
                f"{source} is not an integer batch size "
                "(use 1 for scalar, N for chunks of N, 0 for unbounded)"
            ) from error
    if batch < 0:
        raise ValueError(
            f"{source} must be >= 0 (1 = scalar, N = chunks of N, "
            f"0 = unbounded), got {batch}"
        )
    return batch


def plan_units(
    job_list: list[SimJob], batch: int
) -> tuple[list, list[list[int]]]:
    """Group a grid into execution units for the batched engine.

    Returns ``(units, slots)``: ``units`` is a list of :class:`SimJob`
    (scalar) and :class:`BatchJob` (batched) entries, and ``slots[k]``
    holds the original ``job_list`` indices unit ``k`` produces, so
    results expand back to submission order regardless of how the grid
    was grouped.

    Planner rules (documented in docs/PERFORMANCE.md §8):

    * ``batch == 1`` — identity: every job is its own scalar unit
      (the default; ``batch == 0`` means unbounded group size).
    * Jobs group by (benchmark, trace limit); different traces cannot
      share a batch and stay scalar relative to each other.
    * Within a group, jobs rejected by
      :func:`repro.engine.batched.batch_compatible` (e.g. complete
      invalidation, whose recovery rewinds the shared fetch stream)
      fall back to scalar units, with the reason logged — never an
      error.
    * Compatible group members are chunked into ``BatchJob`` units of at
      most ``batch`` jobs (``batch == 0`` means one unit per group); a
      chunk of one is kept scalar (a one-lane batch only adds column
      recording cost).

    Grouping preserves submission order within and across groups, so
    planning is deterministic for a given ``job_list``.
    """
    if batch == 1:
        return list(job_list), [[i] for i in range(len(job_list))]
    from repro.engine.batched import batch_compatible

    groups: dict[tuple, list[int]] = {}
    for i, job in enumerate(job_list):
        groups.setdefault((job.benchmark, job.max_instructions), []).append(i)
    units: list = []
    slots: list[list[int]] = []
    for key, indices in groups.items():
        compatible: list[int] = []
        for i in indices:
            ok, reason = batch_compatible(job_list[i])
            if ok:
                compatible.append(i)
            else:
                _log.info(
                    "batch planner: job %d (%s) runs scalar: %s",
                    i, job_list[i].benchmark, reason,
                )
                units.append(job_list[i])
                slots.append([i])
        size = len(compatible) if batch == 0 else batch
        for start in range(0, len(compatible), max(size, 1)):
            chunk = compatible[start : start + max(size, 1)]
            if len(chunk) == 1:
                _log.info(
                    "batch planner: job %d (%s) runs scalar: "
                    "singleton group", chunk[0], key[0],
                )
                units.append(job_list[chunk[0]])
            else:
                units.append(
                    BatchJob(jobs=tuple(job_list[i] for i in chunk))
                )
            slots.append(chunk)
    return units, slots


def _expand_units(
    unit_results: list, slots: list[list[int]], n_jobs: int
) -> list[SimulationResult]:
    """Scatter per-unit results back to submission order."""
    results: list[SimulationResult | None] = [None] * n_jobs
    for unit_result, indices in zip(unit_results, slots):
        if len(indices) == 1 and not isinstance(unit_result, list):
            results[indices[0]] = unit_result
        else:
            for index, result in zip(indices, unit_result):
                results[index] = result
    return results  # type: ignore[return-value]


#: Per-process memo of built traces.  Workers are long-lived (one pool
#: services a whole grid), so each process pays trace acquisition once
#: per (benchmark, limit) no matter how many jobs it executes.
_TRACE_CACHE: dict[tuple[str, int | None], ColumnarTrace | list] = {}


@dataclass(frozen=True)
class TraceHandle:
    """A picklable pointer to a staged trace's shared bytes.

    ``kind`` is ``"file"`` (``name`` is a VSRT v3 or v4 file — usually a
    disk-cache entry, sometimes a staged temp file) or ``"shm"``
    (``name`` is a ``multiprocessing.shared_memory`` segment holding
    ``nbytes`` of v3 or v4 payload).  The attach side sniffs the magic,
    so one handle shape covers both formats.
    """

    kind: str
    name: str
    nbytes: int


#: Handles staged by the parent, installed by the pool initializer.
_TRACE_HANDLES: dict[tuple[str, int | None], TraceHandle] = {}

#: Worker-side strictness (parent processes are never strict — staging
#: itself may legitimately capture on a cold cache).
_WORKER_STRICT = False

#: Attached shared-memory segments, kept alive for the process lifetime
#: (their buffers back live ColumnarTrace columns).
_ATTACHED_SEGMENTS: list = []


def _init_worker(
    handles: dict[tuple[str, int | None], TraceHandle], strict: bool
) -> None:
    """Pool initializer: receive staged trace handles (cheap — a few
    strings per benchmark, never trace data)."""
    global _WORKER_STRICT
    _TRACE_HANDLES.clear()
    _TRACE_HANDLES.update(handles)
    _WORKER_STRICT = strict


def _attach_handle(handle: TraceHandle):
    """Open a staged trace without copying its payload.

    The leading magic selects the reader: v3 entries attach as one
    mmap/buffer-backed :class:`ColumnarTrace`; v4 entries attach as a
    :class:`~repro.trace.columnar.ChunkedTrace`, so a worker simulating
    a long trace holds at most its chunk LRU window — never the whole
    payload — whether the handle is a file or a shared-memory segment.
    """
    from repro.trace.binary import (
        loads_trace_binary_v3,
        loads_trace_chunked,
        read_trace_binary_v3,
        read_trace_chunked,
        sniff_format,
    )

    if handle.kind == "file":
        if sniff_format(handle.name) == "v4":
            return read_trace_chunked(handle.name)
        return read_trace_binary_v3(handle.name)
    from multiprocessing import resource_tracker
    from multiprocessing.shared_memory import SharedMemory

    segment = SharedMemory(name=handle.name)
    try:
        # Attaching registers the segment with this process's resource
        # tracker (fixed by track=False in 3.13); unregister so a worker
        # exit does not unlink a segment the parent still owns.
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    _ATTACHED_SEGMENTS.append(segment)
    payload = segment.buf[: handle.nbytes]
    if sniff_format(payload) == "v4":
        return loads_trace_chunked(payload)
    return loads_trace_binary_v3(payload)


def _trace_for(benchmark: str, max_instructions: int | None):
    """The trace for one grid point: process memo, then a staged
    zero-copy handle, then the persistent on-disk cache
    (:mod:`repro.trace.cache`), then functional capture.

    The handle tier is what makes parallel sweeps O(1) in trace length
    per worker: the parent stages each distinct trace once and workers
    map the same physical pages.  The disk tier behind it makes trace
    *construction* a once-per-machine cost.  Under
    ``REPRO_TRACE_STRICT`` a worker that would fall past the handle
    tier raises instead — the regression tests' proof that warm sweeps
    never re-materialize traces in workers.
    """
    key = (benchmark, max_instructions)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        return trace
    handle = _TRACE_HANDLES.get(key)
    if handle is not None:
        try:
            trace = _attach_handle(handle)
        except Exception:
            if _WORKER_STRICT:
                raise
            trace = None
    if trace is None:
        if _WORKER_STRICT:
            raise RuntimeError(
                f"{STRICT_ENV_VAR}: no staged trace for {key!r} and "
                "capture is forbidden in workers"
            )
        from repro.trace.cache import cached_trace

        trace = cached_trace(benchmark, max_instructions)
    _TRACE_CACHE[key] = trace
    return trace


def _stage_traces(
    job_list: list[SimJob],
) -> tuple[dict[tuple[str, int | None], TraceHandle], list]:
    """Materialize each distinct trace the grid needs exactly once and
    expose it as a shared buffer; returns (handles, cleanup callables).

    Preference order per key: an existing (or freshly stored) disk-cache
    entry mmap'd by name; a ``multiprocessing.shared_memory`` segment
    with the v3 bytes; a temp file as the last resort when shared memory
    is unavailable.  Cleanups run after the pool has shut down — and if
    staging *itself* fails partway (a capture error on the third
    benchmark after two segments exist), the segments already created
    are released before the exception escapes, so no error path leaks
    shared memory.
    """
    handles: dict[tuple[str, int | None], TraceHandle] = {}
    cleanups: list = []
    try:
        _stage_traces_into(job_list, handles, cleanups)
    except BaseException:
        for release in cleanups:
            try:
                release()
            except Exception:
                pass
        raise
    return handles, cleanups


def _stage_traces_into(
    job_list: list[SimJob],
    handles: dict[tuple[str, int | None], TraceHandle],
    cleanups: list,
) -> None:
    from repro.trace import cache as trace_cache
    from repro.trace.binary import dumps_trace_binary_v3, dumps_trace_chunked
    from repro.trace.columnar import ChunkedTrace

    for key in dict.fromkeys((job.benchmark, job.max_instructions) for job in job_list):
        benchmark, limit = key
        if trace_cache.cache_enabled():
            from repro.programs.suite import kernel

            source = kernel(benchmark).source
            path = trace_cache.trace_path(benchmark, source, limit)
            chunked_path = trace_cache.trace_path_chunked(benchmark, source, limit)
            if (
                path is not None
                and not path.is_file()
                and (chunked_path is None or not chunked_path.is_file())
            ):
                # Cold cache: capture once here in the parent (also
                # memoized, so the inline path reuses it) and store.
                _TRACE_CACHE[key] = trace_cache.cached_trace(benchmark, limit)
            if path is not None and path.is_file():
                handles[key] = TraceHandle("file", str(path), path.stat().st_size)
                continue
            if chunked_path is not None and chunked_path.is_file():
                handles[key] = TraceHandle(
                    "file", str(chunked_path), chunked_path.stat().st_size
                )
                continue
        staged = _trace_for(benchmark, limit)
        if isinstance(staged, ChunkedTrace):
            # Preserve the chunked layout in shared memory so workers
            # attach a ChunkedTrace over the shared buffer (per-chunk
            # zero-copy slices) instead of materializing every record.
            data = dumps_trace_chunked(staged)
        else:
            data = dumps_trace_binary_v3(staged)
        handle = None
        try:
            from multiprocessing.shared_memory import SharedMemory

            segment = SharedMemory(create=True, size=len(data))
        except (ImportError, OSError):
            segment = None
        if segment is not None:
            segment.buf[: len(data)] = data
            handle = TraceHandle("shm", segment.name, len(data))

            def _release(segment=segment):
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass

            cleanups.append(_release)
        else:  # pragma: no cover - hosts without POSIX shared memory
            fd, tmp_path = tempfile.mkstemp(suffix=".vsrt3")
            with os.fdopen(fd, "wb") as tmp:
                tmp.write(data)
            handle = TraceHandle("file", tmp_path, len(data))
            cleanups.append(lambda tmp_path=tmp_path: os.unlink(tmp_path))
        handles[key] = handle


def _execute(job: SimJob | BatchJob) -> SimulationResult | list[SimulationResult]:
    """Run one execution unit to completion (worker side; also the
    inline path).  A :class:`BatchJob` unit runs all its lanes through
    the batched engine over the one shared trace and returns a *list*
    of results aligned with ``job.jobs``.

    The job seed feeds a *local* :class:`random.Random`, not the global
    module state: reseeding the process-wide RNG from a worker would
    leak across jobs sharing the process (and, on the inline path, into
    the caller's interpreter), making results depend on job order.
    Nothing in the engine draws from global :mod:`random`; collaborators
    that want stochasticity receive this instance explicitly.
    """
    if isinstance(job, BatchJob):
        from repro.engine.batched import run_batch

        trace = _trace_for(job.benchmark, job.max_instructions)
        return run_batch(job.jobs, trace)
    rng = random.Random(job.task_seed())
    trace = _trace_for(job.benchmark, job.max_instructions)
    if job.model is None:
        return run_baseline(trace, job.config)
    confidence = job.confidence() if callable(job.confidence) else job.confidence
    predictor = job.predictor() if job.predictor is not None else None
    return run_trace(
        trace,
        job.config,
        job.model,
        confidence=confidence,
        update_timing=job.update_timing,
        predictor=predictor,
    )


def effective_jobs(jobs: int | None, n_tasks: int) -> int:
    """Clamp a ``--jobs`` request to something sensible.

    ``None`` or values < 1 mean "use every core"; the result never
    exceeds the task count (spawning idle workers costs startup time).
    """
    if n_tasks <= 0:
        return 1
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_tasks))


def resolve_backend(backend: str | None = None) -> str:
    """The effective sweep backend: explicit argument, then
    ``REPRO_SWEEP_BACKEND``, then ``local``."""
    chosen = backend or os.environ.get(BACKEND_ENV_VAR, "").strip() or "local"
    if chosen not in ("local", "cluster", "service"):
        raise ValueError(
            f"unknown sweep backend {chosen!r} "
            "(expected 'local', 'cluster' or 'service')"
        )
    return chosen


def _run_pool(
    job_list: list[SimJob],
    workers: int,
    handles: dict[tuple[str, int | None], TraceHandle],
    results: list[SimulationResult | None],
    max_attempts: int,
) -> None:
    """Drive the process pool until every slot in ``results`` is filled.

    Survives worker death (OOM kill, segfault, ``os.kill``): when the
    pool breaks, results already completed are kept, a fresh pool is
    built, and only the unfinished jobs are resubmitted — each with a
    bounded attempt budget so a job that reliably kills its worker
    cannot retry forever.  A job *raising* is not retried: jobs are
    deterministic, so the error would simply recur.
    """
    strict = strict_no_capture()
    attempts = [0] * len(job_list)
    outstanding = [i for i, r in enumerate(results) if r is None]
    while outstanding:
        broken: BrokenProcessPool | None = None
        with ProcessPoolExecutor(
            max_workers=min(workers, len(outstanding)),
            initializer=_init_worker,
            initargs=(handles, strict),
        ) as pool:
            pending: dict = {}
            try:
                pending = {
                    pool.submit(_execute, job_list[i]): i for i in outstanding
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        results[index] = future.result()
            except BrokenProcessPool as error:
                # Harvest whatever finished before the break; everything
                # else (cancelled or poisoned by the dead worker) stays
                # None and is requeued below.
                broken = error
                for future, index in pending.items():
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        results[index] = future.result()
        if broken is None:
            return
        outstanding = [i for i in outstanding if results[i] is None]
        for i in outstanding:
            attempts[i] += 1
            if attempts[i] >= max_attempts:
                raise BrokenProcessPool(
                    f"job {i} ({job_list[i].benchmark}) lost its worker "
                    f"{attempts[i]} times; giving up after the attempt "
                    f"budget ({max_attempts})"
                ) from broken


def run_jobs(
    job_list: list[SimJob],
    jobs: int = 1,
    *,
    backend: str | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    batch: int | None = None,
) -> list[SimulationResult]:
    """Execute a grid of simulation points, ``jobs`` processes wide.

    Returns results positionally aligned with ``job_list`` regardless of
    completion order, so callers can ``zip`` jobs with results and the
    merged output is identical for any worker count — and for any
    backend: ``backend="cluster"`` (or ``REPRO_SWEEP_BACKEND=cluster``)
    routes the grid through the fault-tolerant sweep service
    (:mod:`repro.cluster`) with bit-identical results.

    ``batch`` (default ``REPRO_SWEEP_BATCH``, then 1) turns on the
    batching planner: up to ``batch`` compatible jobs sharing one
    (benchmark, trace limit) run as lanes of the batched engine in a
    single worker, paying the shared front end once per unit instead of
    once per point (``0`` = unbounded group size).  Results stay
    bit-identical and positionally aligned for every batch size and
    backend; incompatible jobs fall back to scalar units with a logged
    reason (see :func:`plan_units`).

    The local pool survives worker death: completed results are kept,
    the pool is rebuilt, and only unfinished jobs are resubmitted, each
    with a ``max_attempts`` budget.

    When the persistent result store is configured
    (``REPRO_RESULT_STORE=<dir>``; see :mod:`repro.service.results`),
    jobs whose results are already on disk are served from the store —
    *warm jobs skip execution on every backend* — and freshly computed
    results are written back, so any sweep this process runs warms the
    same store the always-on simulation service reads.
    """
    backend = resolve_backend(backend)
    if backend == "service":
        # The service owns planning, dedup and the result store; jobs
        # travel as submitted points.  Imported lazily — the service
        # client depends (via repro.cluster) on this module.
        from repro.service.client import run_jobs_service

        return run_jobs_service(job_list)
    from repro.cluster.serial import job_key

    keys = [job_key(job) for job in job_list]
    first: dict[str, int] = {}
    for index, key in enumerate(keys):
        first.setdefault(key, index)
    if len(first) < len(keys):
        # A grid repeating a point (ablation run sets share their
        # baseline jobs) pays for each distinct key once, on every
        # backend — store configured or not.  Distinct jobs execute in
        # first-submission order and the shared result is scattered
        # back to every occurrence, so results stay positionally
        # aligned with the submitted list.
        unique = run_jobs(
            [job_list[index] for index in first.values()],
            jobs, backend=backend,
            max_attempts=max_attempts, batch=batch,
        )
        by_key = dict(zip(first, unique))
        return [by_key[key] for key in keys]
    from repro.service import results as result_store

    directory = result_store.store_dir()
    if directory is None:
        return _run_jobs_backend(
            job_list, jobs, backend=backend,
            max_attempts=max_attempts, batch=batch,
        )
    # Store consult: serve warm keys from disk, execute only the cold
    # remainder, then persist what was computed.
    results: list = [
        result_store.load_result(key, directory) for key in keys
    ]
    cold: dict[str, int] = {}
    for index, (key, result) in enumerate(zip(keys, results)):
        if result is None and key not in cold:
            cold[key] = index
    if cold:
        computed = _run_jobs_backend(
            [job_list[index] for index in cold.values()],
            jobs, backend=backend,
            max_attempts=max_attempts, batch=batch,
        )
        fresh = dict(zip(cold.keys(), computed))
        for key, result in fresh.items():
            result_store.store_result(key, result, directory)
        for index, key in enumerate(keys):
            if results[index] is None:
                results[index] = fresh[key]
    return results


def _run_jobs_backend(
    job_list: list[SimJob],
    jobs: int = 1,
    *,
    backend: str = "local",
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    batch: int | None = None,
) -> list[SimulationResult]:
    """The execution core behind :func:`run_jobs`: plan units, then run
    them on the local pool or the cluster (no store involvement)."""
    units, slots = plan_units(job_list, resolve_batch(batch))
    if backend == "cluster":
        # Imported lazily: repro.cluster depends on this module.
        from repro.cluster.client import run_jobs_cluster

        return _expand_units(
            run_jobs_cluster(units, jobs), slots, len(job_list)
        )
    workers = effective_jobs(jobs, len(units))
    if workers <= 1:
        return _expand_units(
            [_execute(unit) for unit in units], slots, len(job_list)
        )
    handles, cleanups = _stage_traces(units)
    results: list = [None] * len(units)
    try:
        _run_pool(units, workers, handles, results, max_attempts)
    finally:
        for release in cleanups:
            release()
    return _expand_units(results, slots, len(job_list))


def run_grid(
    benchmarks: list[str],
    config: ProcessorConfig,
    model: SpeculativeExecutionModel | None,
    *,
    max_instructions: int | None = None,
    confidence: object = "R",
    update_timing: str = "I",
    predictor: Callable | None = None,
    jobs: int = 1,
    backend: str | None = None,
    batch: int | None = None,
) -> dict[str, SimulationResult]:
    """One (config, model, setting) row across a benchmark suite.

    The common harness shape: same settings, one run per benchmark,
    results keyed by benchmark name in input order.  (Each row job has a
    distinct benchmark, so ``batch`` only matters here when the caller's
    grid shares traces — it is accepted for interface symmetry and
    forwarded to :func:`run_jobs`.)
    """
    job_list = [
        SimJob(
            benchmark=name,
            config=config,
            model=model,
            max_instructions=max_instructions,
            confidence=confidence,
            update_timing=update_timing,
            predictor=predictor,
        )
        for name in benchmarks
    ]
    return dict(
        zip(
            benchmarks,
            run_jobs(job_list, jobs=jobs, backend=backend, batch=batch),
        )
    )
