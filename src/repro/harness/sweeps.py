"""Design-space sweeps beyond the paper's headline figures.

These regenerate the ablations DESIGN.md indexes: per-latency-variable
sensitivity (ABL-L), the Section 3.2 verification-scheme comparison
(ABL-V), the Section 3.1 invalidation-scheme comparison (ABL-I), and a
value-predictor comparison (extension).

Every sweep flattens its whole grid — the baseline runs *and* every
variant x benchmark point — into a single batch for
:func:`repro.harness.parallel.run_jobs`, so ``jobs=N`` fans the entire
sweep out over N worker processes while ``jobs=1`` (the default) runs
the identical batch inline.  Results are merged positionally, so the
sweep output is bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import Callable

from repro.core.latency import GREAT_LATENCIES, LatencyModel
from repro.core.model import GREAT_MODEL, SpeculativeExecutionModel
from repro.core.variables import (
    BranchResolution,
    InvalidationScheme,
    MemoryResolution,
    ModelVariables,
    VerificationScheme,
)
from repro.engine.config import ProcessorConfig
from repro.engine.sim import SimulationResult
from repro.harness.parallel import SimJob, run_jobs
from repro.metrics.speedup import harmonic_mean
from repro.programs.suite import benchmark_suite
from repro.vp.base import ValuePredictor
from repro.vp.context import ContextValuePredictor
from repro.vp.hybrid import HybridPredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor
from repro.vp.tagged import TaggedContextPredictor


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a sweep."""

    label: str
    speedup: float
    detail: dict[str, float]


@dataclass(frozen=True)
class SweepVariant:
    """One sweep variant: the settings for a suite-wide engine run.

    ``base_config`` names the baseline (no-speculation) configuration the
    variant's speedups are normalised against; ``None`` means "its own
    config" (the common case — sweeps that perturb the processor itself,
    like branch predictors or width scaling, compare against a base
    machine with the same perturbation).

    Variants are the unit of re-instrumentation: hand one to
    :func:`instrument_variant` to re-run any sweep point with the
    observability tracer attached.
    """

    label: str
    config: ProcessorConfig
    model: SpeculativeExecutionModel
    confidence: object = "R"
    update_timing: str = "I"
    predictor: Callable | None = None
    base_config: ProcessorConfig | None = None

    @property
    def baseline(self) -> ProcessorConfig:
        return self.base_config if self.base_config is not None else self.config


#: Backwards-compatible alias (the pre-observability private name).
_Variant = SweepVariant


def instrument_variant(
    variant: SweepVariant,
    benchmark: str,
    max_instructions: int | None = 5000,
):
    """Re-run one sweep point instrumented; returns an
    :class:`repro.obs.run.InstrumentedRun`.

    ``benchmark`` accepts suite kernel names and the ``micro:<name>``
    form.  The run reproduces the variant's exact settings (config,
    model, confidence scheme, update timing, predictor), so a sweep
    anomaly can be drilled into with latency-event histograms and a
    Chrome trace without re-deriving the configuration by hand.
    """
    from repro.engine.sim import run_trace
    from repro.obs.run import InstrumentedRun, resolve_trace
    from repro.obs.tracer import PipelineTracer

    trace = resolve_trace(benchmark, max_instructions)
    tracer = PipelineTracer()
    confidence = (
        variant.confidence() if callable(variant.confidence) else variant.confidence
    )
    result = run_trace(
        trace,
        variant.config,
        variant.model,
        confidence=confidence,
        update_timing=variant.update_timing,
        predictor=variant.predictor() if variant.predictor is not None else None,
        tracer=tracer,
    )
    return InstrumentedRun(
        benchmark=benchmark,
        model_name=variant.model.name,
        tracer=tracer,
        result=result,
    )


def _benchmark_names(benchmarks: list[str] | None) -> list[str]:
    names = [
        spec.name
        for spec in benchmark_suite()
        if benchmarks is None or spec.name in benchmarks
    ]
    if not names:
        raise ValueError(f"no benchmarks selected from {benchmarks!r}")
    return names


def _run_sweep(
    names: list[str],
    max_instructions: int | None,
    variants: list[_Variant],
    *,
    jobs: int = 1,
    backend: str | None = None,
    extra_detail: Callable[[list[SimulationResult]], dict[str, float]] | None = None,
) -> list[SweepPoint]:
    """Execute a sweep's full grid as one parallel batch.

    The batch is: one baseline run per distinct baseline config per
    benchmark, then every variant x benchmark point, all submitted to
    :func:`run_jobs` together so a multi-benchmark, multi-variant sweep
    saturates the worker pool instead of synchronising per variant.
    """
    base_configs: list[ProcessorConfig] = []
    for variant in variants:
        if variant.baseline not in base_configs:
            base_configs.append(variant.baseline)
    job_list = [
        SimJob(name, config, None, max_instructions)
        for config in base_configs
        for name in names
    ]
    for variant in variants:
        job_list.extend(
            SimJob(
                name,
                variant.config,
                variant.model,
                max_instructions,
                confidence=variant.confidence,
                update_timing=variant.update_timing,
                predictor=variant.predictor,
            )
            for name in names
        )
    results = run_jobs(job_list, jobs=jobs, backend=backend)

    width = len(names)
    base_cycles: dict[ProcessorConfig, dict[str, int]] = {}
    for i, config in enumerate(base_configs):
        chunk = results[i * width : (i + 1) * width]
        base_cycles[config] = {n: r.cycles for n, r in zip(names, chunk)}
    points: list[SweepPoint] = []
    offset = len(base_configs) * width
    for i, variant in enumerate(variants):
        chunk = results[offset + i * width : offset + (i + 1) * width]
        base = base_cycles[variant.baseline]
        per_benchmark = {n: base[n] / r.cycles for n, r in zip(names, chunk)}
        detail = dict(per_benchmark)
        if extra_detail is not None:
            detail.update(extra_detail(chunk))
        points.append(
            SweepPoint(variant.label, harmonic_mean(per_benchmark.values()), detail)
        )
    return points


#: The latency variables the sensitivity sweep perturbs, as LatencyModel
#: field names mapped to display labels.
LATENCY_FIELDS: dict[str, str] = {
    "equality_to_verification": "Exec-Eq-Verification",
    "equality_to_invalidation": "Exec-Eq-Invalidation",
    "invalidation_to_reissue": "Invalidation-Reissue",
    "verification_to_branch": "Verification-Branch",
    "verification_addr_to_mem_access": "VerifAddr-MemAccess",
    "verification_to_free_issue": "Verification-FreeRes",
}


def latency_sensitivity_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    values: tuple[int, ...] = (0, 1, 2),
    base_latencies: LatencyModel = GREAT_LATENCIES,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """ABL-L: vary each latency variable independently around a base model.

    Reproduces the paper's core claim of *non-uniform sensitivity*: fast
    verification matters; with infrequent misspeculation, invalidation and
    reissue latency barely do.
    """
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants: list[_Variant] = []
    for field_name, label in LATENCY_FIELDS.items():
        for value in values:
            overrides = {field_name: value}
            if field_name == "verification_to_free_issue":
                overrides["verification_to_free_retirement"] = value
            latencies = replace(base_latencies, **overrides)
            model = SpeculativeExecutionModel(
                f"great[{label}={value}]", GREAT_MODEL.variables, latencies
            )
            variants.append(_Variant(f"{label}={value}", config, model))
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def verification_scheme_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """ABL-V: the Section 3.2 verification approaches under great latencies."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            scheme.value,
            config,
            SpeculativeExecutionModel(
                f"great-verify-{scheme.value}",
                ModelVariables(verification=scheme),
                GREAT_LATENCIES,
            ),
        )
        for scheme in VerificationScheme
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def invalidation_scheme_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    confidence: str = "R",
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """ABL-I: selective (parallel/hierarchical) vs complete invalidation."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            scheme.value,
            config,
            SpeculativeExecutionModel(
                f"great-inval-{scheme.value}",
                ModelVariables(invalidation=scheme),
                GREAT_LATENCIES,
            ),
            confidence=confidence,
        )
        for scheme in InvalidationScheme
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def resolution_policy_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Section 3.2 follow-up: resolve branches/memory with valid operands
    only (the paper's choice) versus allowing speculative resolution.

    With speculative resolution allowed, the Verification–Branch and
    Verification-Address–Memory-Access latencies become irrelevant (the
    model validator enforces they be zero), so instructions stop waiting
    for the network at the price of acting on possibly-wrong inputs.
    """
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants: list[_Variant] = []
    for label, branch_res, memory_res in (
        ("valid-only (paper)", BranchResolution.VALID_ONLY,
         MemoryResolution.VALID_ONLY),
        ("speculative-branches", BranchResolution.SPECULATIVE_ALLOWED,
         MemoryResolution.VALID_ONLY),
        ("speculative-memory", BranchResolution.VALID_ONLY,
         MemoryResolution.SPECULATIVE_ALLOWED),
        ("speculative-both", BranchResolution.SPECULATIVE_ALLOWED,
         MemoryResolution.SPECULATIVE_ALLOWED),
    ):
        latencies = replace(
            GREAT_LATENCIES,
            verification_to_branch=(
                0 if branch_res is BranchResolution.SPECULATIVE_ALLOWED
                else GREAT_LATENCIES.verification_to_branch
            ),
            verification_addr_to_mem_access=(
                0 if memory_res is MemoryResolution.SPECULATIVE_ALLOWED
                else GREAT_LATENCIES.verification_addr_to_mem_access
            ),
        )
        model = SpeculativeExecutionModel(
            f"great-{label}",
            ModelVariables(
                branch_resolution=branch_res, memory_resolution=memory_res
            ),
            latencies,
        )
        variants.append(_Variant(label, config, model))
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def confidence_strength_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    counter_bits: tuple[int, ...] = (1, 2, 3, 4),
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Section 3.6 follow-up: vary the resetting-counter width.

    Wider counters demand longer correct streaks before speculating:
    misspeculation falls (toward the oracle's zero) but more correct
    predictions go unused (the CL set grows) — the coverage/accuracy
    trade-off behind the paper's real-vs-oracle gap.
    """
    from repro.vp.confidence import ResettingConfidenceEstimator

    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            f"{bits}-bit counters",
            config,
            GREAT_MODEL,
            confidence=partial(ResettingConfidenceEstimator, counter_bits=bits),
        )
        for bits in counter_bits
    ]
    variants.append(_Variant("oracle", config, GREAT_MODEL, confidence="O"))
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def approximate_equality_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    low_bits: tuple[int, ...] = (0, 4, 8, 16),
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Section 3.3 extension: non-strict equality.

    "Alternatives that do not require strict equality have been suggested
    but have not been explored" — this sweep explores them: the EQ
    comparators ignore the low N bits, accepting near-miss predictions
    (timing-only tolerance; architectural results are unaffected).
    """
    base_config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            "strict (paper)" if bits == 0 else f"ignore low {bits} bits",
            base_config.with_overrides(equality_ignore_low_bits=bits),
            GREAT_MODEL,
            base_config=base_config,
        )
        for bits in low_bits
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def branch_predictor_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Front-end direction predictors and their interaction with value
    speculation: each point reports the VP speedup *relative to a base
    processor with the same branch predictor*, so the column isolates how
    branch quality modulates what value speculation can add (fewer
    squashes leave longer stretches of useful speculative work — but also
    fewer pipeline drains to re-seed the delayed-update predictor)."""
    base_config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            f"{bp} (paper)" if bp == "gshare" else bp,
            base_config.with_overrides(branch_predictor=bp),
            GREAT_MODEL,
        )
        for bp in ("bimodal", "local", "gshare", "tournament")
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def selective_prediction_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Selective value prediction (Calder et al. [8], discussed in the
    paper's Sections 3.5–3.6): restrict prediction to instruction classes.

    Loads and other long-latency producers are where a correct prediction
    buys the most; predicting everything buys breadth at the cost of
    predictor pressure (and, in real designs, ports and power).
    """
    base_config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            policy,
            base_config.with_overrides(predict_classes=policy),
            GREAT_MODEL,
            base_config=base_config,
        )
        for policy in ("all", "long-latency", "loads", "alu")
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def vp_ports_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    ports: tuple[int, ...] = (1, 2, 4, 0),
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Predictor-port sensitivity: how many predictions per cycle the
    dispatch stage may request (0 = unlimited, the paper's assumption)."""
    base_config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            "unlimited" if count == 0 else f"{count} port(s)",
            base_config.with_overrides(vp_ports=count),
            GREAT_MODEL,
            base_config=base_config,
        )
        for count in ports
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def width_scaling_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    widths: tuple[int, ...] = (2, 4, 8, 16, 32),
    window_per_width: int = 6,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Extend the paper's width/window axis beyond its three points.

    Gabbay & Mendelson's argument, which the paper confirms at 4/24–16/96:
    "wider processors expose more dependences and hence increase the
    potential of value speculation."  This sweep continues the curve.
    """
    if any(w <= 0 for w in widths) or window_per_width <= 0:
        raise ValueError("widths and window_per_width must be positive")
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            f"{width}/{width * window_per_width}",
            ProcessorConfig(
                issue_width=width, window_size=width * window_per_width
            ),
            GREAT_MODEL,
        )
        for width in widths
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def confidence_scheme_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Section 3.6: compare confidence estimation mechanisms.

    The paper evaluates resetting counters against an oracle and points
    at Calder et al.'s levels and Bekerman et al.'s history scheme as
    alternatives; this sweep runs all of them under the great model.
    """
    from repro.vp.confidence import (
        HistoryConfidenceEstimator,
        ResettingConfidenceEstimator,
        SaturatingConfidenceEstimator,
    )
    from repro.vp.oracle import OracleConfidence

    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    schemes = {
        "resetting (paper)": ResettingConfidenceEstimator,
        "saturating": SaturatingConfidenceEstimator,
        "history": HistoryConfidenceEstimator,
        "oracle": OracleConfidence,
    }
    variants = [
        _Variant(label, config, GREAT_MODEL, confidence=factory)
        for label, factory in schemes.items()
    ]

    def misspeculation_rate(chunk: list[SimulationResult]) -> dict[str, float]:
        from repro.metrics.counters import SimCounters

        combined = SimCounters.merged(r.counters for r in chunk)
        return {"_misspeculation_rate": combined.misspeculation_rate}

    return _run_sweep(
        names, max_instructions, variants, jobs=jobs, backend=backend,
        extra_detail=misspeculation_rate,
    )


def predictor_size_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    table_bits: tuple[int, ...] = (8, 10, 12, 16),
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Predictor table-size sensitivity (the "tables configuration"
    dimension the paper defers): shrink the context predictor's level-1
    and level-2 tables and watch aliasing erode speedup."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            f"{1 << bits}-entry tables",
            config,
            GREAT_MODEL,
            predictor=partial(
                ContextValuePredictor, history_bits=bits, context_bits=bits
            ),
        )
        for bits in table_bits
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


def frontend_idealism_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Relax the paper's ideal-target front end: control-transfer targets
    come from a BTB and return-address stack instead of being free."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(
            label,
            config.with_overrides(ideal_branch_targets=ideal),
            GREAT_MODEL,
        )
        for label, ideal in (
            ("ideal targets (paper)", True), ("BTB + RAS", False)
        )
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)


#: Predictor factories for the predictor-comparison sweep.
PREDICTOR_FACTORIES: dict[str, type[ValuePredictor]] = {
    "context": ContextValuePredictor,
    "last-value": LastValuePredictor,
    "stride": StridePredictor,
    "hybrid": HybridPredictor,
    "tagged-context": TaggedContextPredictor,
}


def predictor_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    jobs: int = 1,
    backend: str | None = None,
) -> list[SweepPoint]:
    """Extension: compare value predictors under the great model."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    names = _benchmark_names(benchmarks)
    variants = [
        _Variant(label, config, GREAT_MODEL, predictor=factory)
        for label, factory in PREDICTOR_FACTORIES.items()
    ]
    return _run_sweep(names, max_instructions, variants, jobs=jobs, backend=backend)
