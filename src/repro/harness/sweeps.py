"""Design-space sweeps beyond the paper's headline figures.

These regenerate the ablations DESIGN.md indexes: per-latency-variable
sensitivity (ABL-L), the Section 3.2 verification-scheme comparison
(ABL-V), the Section 3.1 invalidation-scheme comparison (ABL-I), and a
value-predictor comparison (extension).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.latency import GREAT_LATENCIES, LatencyModel
from repro.core.model import GREAT_MODEL, SpeculativeExecutionModel
from repro.core.variables import (
    BranchResolution,
    InvalidationScheme,
    MemoryResolution,
    ModelVariables,
    VerificationScheme,
)
from repro.engine.config import ProcessorConfig
from repro.engine.sim import run_baseline, run_trace
from repro.metrics.speedup import harmonic_mean
from repro.programs.suite import benchmark_suite
from repro.trace.record import TraceRecord
from repro.vp.base import ValuePredictor
from repro.vp.context import ContextValuePredictor
from repro.vp.hybrid import HybridPredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor
from repro.vp.tagged import TaggedContextPredictor


@dataclass(frozen=True)
class SweepPoint:
    """One measured point of a sweep."""

    label: str
    speedup: float
    detail: dict[str, float]


def _traces(
    max_instructions: int | None, benchmarks: list[str] | None
) -> dict[str, list[TraceRecord]]:
    out = {
        spec.name: spec.trace(max_instructions)
        for spec in benchmark_suite()
        if benchmarks is None or spec.name in benchmarks
    }
    if not out:
        raise ValueError(f"no benchmarks selected from {benchmarks!r}")
    return out


def _suite_speedup(
    traces: dict[str, list[TraceRecord]],
    base_cycles: dict[str, int],
    config: ProcessorConfig,
    model: SpeculativeExecutionModel,
    *,
    confidence: str = "R",
    update_timing: str = "I",
    predictor_factory=None,
) -> tuple[float, dict[str, float]]:
    per_benchmark: dict[str, float] = {}
    for name, trace in traces.items():
        predictor = predictor_factory() if predictor_factory else None
        result = run_trace(
            trace,
            config,
            model,
            confidence=confidence,
            update_timing=update_timing,
            predictor=predictor,
        )
        per_benchmark[name] = base_cycles[name] / result.cycles
    return harmonic_mean(per_benchmark.values()), per_benchmark


#: The latency variables the sensitivity sweep perturbs, as LatencyModel
#: field names mapped to display labels.
LATENCY_FIELDS: dict[str, str] = {
    "equality_to_verification": "Exec-Eq-Verification",
    "equality_to_invalidation": "Exec-Eq-Invalidation",
    "invalidation_to_reissue": "Invalidation-Reissue",
    "verification_to_branch": "Verification-Branch",
    "verification_addr_to_mem_access": "VerifAddr-MemAccess",
    "verification_to_free_issue": "Verification-FreeRes",
}


def latency_sensitivity_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    values: tuple[int, ...] = (0, 1, 2),
    base_latencies: LatencyModel = GREAT_LATENCIES,
) -> list[SweepPoint]:
    """ABL-L: vary each latency variable independently around a base model.

    Reproduces the paper's core claim of *non-uniform sensitivity*: fast
    verification matters; with infrequent misspeculation, invalidation and
    reissue latency barely do.
    """
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for field_name, label in LATENCY_FIELDS.items():
        for value in values:
            overrides = {field_name: value}
            if field_name == "verification_to_free_issue":
                overrides["verification_to_free_retirement"] = value
            latencies = replace(base_latencies, **overrides)
            model = SpeculativeExecutionModel(
                f"great[{label}={value}]", GREAT_MODEL.variables, latencies
            )
            speedup, detail = _suite_speedup(traces, base_cycles, config, model)
            points.append(SweepPoint(f"{label}={value}", speedup, detail))
    return points


def verification_scheme_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
) -> list[SweepPoint]:
    """ABL-V: the Section 3.2 verification approaches under great latencies."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for scheme in VerificationScheme:
        model = SpeculativeExecutionModel(
            f"great-verify-{scheme.value}",
            ModelVariables(verification=scheme),
            GREAT_LATENCIES,
        )
        speedup, detail = _suite_speedup(traces, base_cycles, config, model)
        points.append(SweepPoint(scheme.value, speedup, detail))
    return points


def invalidation_scheme_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    confidence: str = "R",
) -> list[SweepPoint]:
    """ABL-I: selective (parallel/hierarchical) vs complete invalidation."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for scheme in InvalidationScheme:
        model = SpeculativeExecutionModel(
            f"great-inval-{scheme.value}",
            ModelVariables(invalidation=scheme),
            GREAT_LATENCIES,
        )
        speedup, detail = _suite_speedup(
            traces, base_cycles, config, model, confidence=confidence
        )
        points.append(SweepPoint(scheme.value, speedup, detail))
    return points


def resolution_policy_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
) -> list[SweepPoint]:
    """Section 3.2 follow-up: resolve branches/memory with valid operands
    only (the paper's choice) versus allowing speculative resolution.

    With speculative resolution allowed, the Verification–Branch and
    Verification-Address–Memory-Access latencies become irrelevant (the
    model validator enforces they be zero), so instructions stop waiting
    for the network at the price of acting on possibly-wrong inputs.
    """
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for label, branch_res, memory_res in (
        ("valid-only (paper)", BranchResolution.VALID_ONLY,
         MemoryResolution.VALID_ONLY),
        ("speculative-branches", BranchResolution.SPECULATIVE_ALLOWED,
         MemoryResolution.VALID_ONLY),
        ("speculative-memory", BranchResolution.VALID_ONLY,
         MemoryResolution.SPECULATIVE_ALLOWED),
        ("speculative-both", BranchResolution.SPECULATIVE_ALLOWED,
         MemoryResolution.SPECULATIVE_ALLOWED),
    ):
        latencies = replace(
            GREAT_LATENCIES,
            verification_to_branch=(
                0 if branch_res is BranchResolution.SPECULATIVE_ALLOWED
                else GREAT_LATENCIES.verification_to_branch
            ),
            verification_addr_to_mem_access=(
                0 if memory_res is MemoryResolution.SPECULATIVE_ALLOWED
                else GREAT_LATENCIES.verification_addr_to_mem_access
            ),
        )
        model = SpeculativeExecutionModel(
            f"great-{label}",
            ModelVariables(
                branch_resolution=branch_res, memory_resolution=memory_res
            ),
            latencies,
        )
        speedup, detail = _suite_speedup(traces, base_cycles, config, model)
        points.append(SweepPoint(label, speedup, detail))
    return points


def confidence_strength_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    counter_bits: tuple[int, ...] = (1, 2, 3, 4),
) -> list[SweepPoint]:
    """Section 3.6 follow-up: vary the resetting-counter width.

    Wider counters demand longer correct streaks before speculating:
    misspeculation falls (toward the oracle's zero) but more correct
    predictions go unused (the CL set grows) — the coverage/accuracy
    trade-off behind the paper's real-vs-oracle gap.
    """
    from repro.vp.confidence import ResettingConfidenceEstimator

    config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for bits in counter_bits:
        per_benchmark: dict[str, float] = {}
        for name, trace in traces.items():
            result = run_trace(
                trace,
                config,
                GREAT_MODEL,
                confidence=ResettingConfidenceEstimator(counter_bits=bits),
                update_timing="I",
            )
            per_benchmark[name] = base_cycles[name] / result.cycles
        points.append(
            SweepPoint(
                f"{bits}-bit counters",
                harmonic_mean(per_benchmark.values()),
                per_benchmark,
            )
        )
    points.append(SweepPoint("oracle", *_oracle_point(traces, base_cycles, config)))
    return points


def approximate_equality_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    low_bits: tuple[int, ...] = (0, 4, 8, 16),
) -> list[SweepPoint]:
    """Section 3.3 extension: non-strict equality.

    "Alternatives that do not require strict equality have been suggested
    but have not been explored" — this sweep explores them: the EQ
    comparators ignore the low N bits, accepting near-miss predictions
    (timing-only tolerance; architectural results are unaffected).
    """
    base_config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, base_config).cycles
        for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for bits in low_bits:
        variant = base_config.with_overrides(equality_ignore_low_bits=bits)
        speedup, detail = _suite_speedup(
            traces, base_cycles, variant, GREAT_MODEL
        )
        label = "strict (paper)" if bits == 0 else f"ignore low {bits} bits"
        points.append(SweepPoint(label, speedup, detail))
    return points


def branch_predictor_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
) -> list[SweepPoint]:
    """Front-end direction predictors and their interaction with value
    speculation: each point reports the VP speedup *relative to a base
    processor with the same branch predictor*, so the column isolates how
    branch quality modulates what value speculation can add (fewer
    squashes leave longer stretches of useful speculative work — but also
    fewer pipeline drains to re-seed the delayed-update predictor)."""
    base_config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    points: list[SweepPoint] = []
    for bp in ("bimodal", "local", "gshare", "tournament"):
        variant = base_config.with_overrides(branch_predictor=bp)
        base_cycles = {
            name: run_baseline(trace, variant).cycles
            for name, trace in traces.items()
        }
        speedup, detail = _suite_speedup(
            traces, base_cycles, variant, GREAT_MODEL
        )
        label = f"{bp} (paper)" if bp == "gshare" else bp
        points.append(SweepPoint(label, speedup, detail))
    return points


def selective_prediction_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
) -> list[SweepPoint]:
    """Selective value prediction (Calder et al. [8], discussed in the
    paper's Sections 3.5–3.6): restrict prediction to instruction classes.

    Loads and other long-latency producers are where a correct prediction
    buys the most; predicting everything buys breadth at the cost of
    predictor pressure (and, in real designs, ports and power).
    """
    base_config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, base_config).cycles
        for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for policy in ("all", "long-latency", "loads", "alu"):
        variant = base_config.with_overrides(predict_classes=policy)
        speedup, detail = _suite_speedup(
            traces, base_cycles, variant, GREAT_MODEL
        )
        points.append(SweepPoint(policy, speedup, detail))
    return points


def vp_ports_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    ports: tuple[int, ...] = (1, 2, 4, 0),
) -> list[SweepPoint]:
    """Predictor-port sensitivity: how many predictions per cycle the
    dispatch stage may request (0 = unlimited, the paper's assumption)."""
    base_config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, base_config).cycles
        for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for count in ports:
        variant = base_config.with_overrides(vp_ports=count)
        speedup, detail = _suite_speedup(
            traces, base_cycles, variant, GREAT_MODEL
        )
        label = "unlimited" if count == 0 else f"{count} port(s)"
        points.append(SweepPoint(label, speedup, detail))
    return points


def width_scaling_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    widths: tuple[int, ...] = (2, 4, 8, 16, 32),
    window_per_width: int = 6,
) -> list[SweepPoint]:
    """Extend the paper's width/window axis beyond its three points.

    Gabbay & Mendelson's argument, which the paper confirms at 4/24–16/96:
    "wider processors expose more dependences and hence increase the
    potential of value speculation."  This sweep continues the curve.
    """
    if any(w <= 0 for w in widths) or window_per_width <= 0:
        raise ValueError("widths and window_per_width must be positive")
    traces = _traces(max_instructions, benchmarks)
    points: list[SweepPoint] = []
    for width in widths:
        config = ProcessorConfig(
            issue_width=width, window_size=width * window_per_width
        )
        base_cycles = {
            name: run_baseline(trace, config).cycles
            for name, trace in traces.items()
        }
        speedup, detail = _suite_speedup(
            traces, base_cycles, config, GREAT_MODEL
        )
        points.append(
            SweepPoint(f"{width}/{width * window_per_width}", speedup, detail)
        )
    return points


def confidence_scheme_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
) -> list[SweepPoint]:
    """Section 3.6: compare confidence estimation mechanisms.

    The paper evaluates resetting counters against an oracle and points
    at Calder et al.'s levels and Bekerman et al.'s history scheme as
    alternatives; this sweep runs all of them under the great model.
    """
    from repro.vp.confidence import (
        HistoryConfidenceEstimator,
        ResettingConfidenceEstimator,
        SaturatingConfidenceEstimator,
    )
    from repro.vp.oracle import OracleConfidence

    config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }
    schemes = {
        "resetting (paper)": ResettingConfidenceEstimator,
        "saturating": SaturatingConfidenceEstimator,
        "history": HistoryConfidenceEstimator,
        "oracle": OracleConfidence,
    }
    points: list[SweepPoint] = []
    for label, factory in schemes.items():
        per_benchmark: dict[str, float] = {}
        misspeculations = speculated = 0
        for name, trace in traces.items():
            result = run_trace(
                trace,
                config,
                GREAT_MODEL,
                confidence=factory(),
                update_timing="I",
            )
            per_benchmark[name] = base_cycles[name] / result.cycles
            misspeculations += result.counters.misspeculations
            speculated += result.counters.speculated
        detail = dict(per_benchmark)
        detail["_misspeculation_rate"] = (
            misspeculations / speculated if speculated else 0.0
        )
        points.append(
            SweepPoint(label, harmonic_mean(per_benchmark.values()), detail)
        )
    return points


def predictor_size_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
    table_bits: tuple[int, ...] = (8, 10, 12, 16),
) -> list[SweepPoint]:
    """Predictor table-size sensitivity (the "tables configuration"
    dimension the paper defers): shrink the context predictor's level-1
    and level-2 tables and watch aliasing erode speedup."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for bits in table_bits:
        speedup, detail = _suite_speedup(
            traces,
            base_cycles,
            config,
            GREAT_MODEL,
            predictor_factory=lambda bits=bits: ContextValuePredictor(
                history_bits=bits, context_bits=bits
            ),
        )
        points.append(SweepPoint(f"{1 << bits}-entry tables", speedup, detail))
    return points


def frontend_idealism_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
) -> list[SweepPoint]:
    """Relax the paper's ideal-target front end: control-transfer targets
    come from a BTB and return-address stack instead of being free."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    points: list[SweepPoint] = []
    for label, ideal in (("ideal targets (paper)", True), ("BTB + RAS", False)):
        variant = config.with_overrides(ideal_branch_targets=ideal)
        traces = _traces(max_instructions, benchmarks)
        base_cycles = {
            name: run_baseline(trace, variant).cycles
            for name, trace in traces.items()
        }
        speedup, detail = _suite_speedup(traces, base_cycles, variant, GREAT_MODEL)
        points.append(SweepPoint(label, speedup, detail))
    return points


def _oracle_point(traces, base_cycles, config) -> tuple[float, dict[str, float]]:
    per_benchmark = {}
    for name, trace in traces.items():
        result = run_trace(
            trace, config, GREAT_MODEL, confidence="O", update_timing="I"
        )
        per_benchmark[name] = base_cycles[name] / result.cycles
    return harmonic_mean(per_benchmark.values()), per_benchmark


#: Predictor factories for the predictor-comparison sweep.
PREDICTOR_FACTORIES: dict[str, type[ValuePredictor]] = {
    "context": ContextValuePredictor,
    "last-value": LastValuePredictor,
    "stride": StridePredictor,
    "hybrid": HybridPredictor,
    "tagged-context": TaggedContextPredictor,
}


def predictor_sweep(
    max_instructions: int | None = 5000,
    benchmarks: list[str] | None = None,
    config: ProcessorConfig | None = None,
) -> list[SweepPoint]:
    """Extension: compare value predictors under the great model."""
    config = config or ProcessorConfig(issue_width=8, window_size=48)
    traces = _traces(max_instructions, benchmarks)
    base_cycles = {
        name: run_baseline(trace, config).cycles for name, trace in traces.items()
    }
    points: list[SweepPoint] = []
    for label, factory in PREDICTOR_FACTORIES.items():
        speedup, detail = _suite_speedup(
            traces,
            base_cycles,
            config,
            GREAT_MODEL,
            predictor_factory=factory,
        )
        points.append(SweepPoint(label, speedup, detail))
    return points
