"""Experiment harness: one module per paper table/figure, plus sweeps.

Every artifact in the paper's evaluation has a ``run_*`` function here
that regenerates it and a renderer that prints the same rows/series the
paper reports (see DESIGN.md's experiment index and EXPERIMENTS.md for
paper-vs-measured results).
"""

from repro.harness.table1 import Table1Row, run_table1, render_table1
from repro.harness.figure1 import Figure1Scenario, run_figure1, render_figure1
from repro.harness.figure3 import Figure3Cell, run_figure3, render_figure3
from repro.harness.figure4 import Figure4Cell, run_figure4, render_figure4
from repro.harness.sweeps import (
    latency_sensitivity_sweep,
    verification_scheme_sweep,
    invalidation_scheme_sweep,
    predictor_sweep,
)
from repro.harness.experiments import EXPERIMENTS, Experiment

__all__ = [
    "Table1Row",
    "run_table1",
    "render_table1",
    "Figure1Scenario",
    "run_figure1",
    "render_figure1",
    "Figure3Cell",
    "run_figure3",
    "render_figure3",
    "Figure4Cell",
    "run_figure4",
    "render_figure4",
    "latency_sensitivity_sweep",
    "verification_scheme_sweep",
    "invalidation_scheme_sweep",
    "predictor_sweep",
    "EXPERIMENTS",
    "Experiment",
]
