"""Figure 3 reproduction: average speedup of the speculative execution
models.

The paper reports, for each processor configuration (4/24, 8/48, 16/96)
and each setting (D/R, I/R, D/O, I/O — update timing / confidence), the
harmonic-mean speedup of the good, great and super models over the base
processor across the SPECint95 suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.model import (
    GOOD_MODEL,
    GREAT_MODEL,
    SUPER_MODEL,
    SpeculativeExecutionModel,
)
from repro.engine.config import PAPER_CONFIGS, ProcessorConfig
from repro.harness.parallel import SimJob, run_jobs
from repro.harness.render import render_bar, render_table
from repro.metrics.speedup import harmonic_mean
from repro.programs.suite import benchmark_suite

#: The paper's four update-timing/confidence settings.
SETTINGS: tuple[tuple[str, str], ...] = (
    ("D", "R"),
    ("I", "R"),
    ("D", "O"),
    ("I", "O"),
)

MODELS: tuple[SpeculativeExecutionModel, ...] = (GOOD_MODEL, GREAT_MODEL, SUPER_MODEL)


@dataclass(frozen=True)
class Figure3Cell:
    """One bar of Figure 3: a (config, setting, model) harmonic mean."""

    config_label: str
    setting: str  # e.g. "D/R"
    model_name: str
    speedup: float
    per_benchmark: dict[str, float] = field(default_factory=dict, compare=False)


def _suite_names(benchmarks: list[str] | None) -> list[str]:
    names = [
        spec.name
        for spec in benchmark_suite()
        if benchmarks is None or spec.name in benchmarks
    ]
    if not names:
        raise ValueError(f"no benchmarks selected from {benchmarks!r}")
    return names


def run_figure3(
    max_instructions: int | None = 6000,
    benchmarks: list[str] | None = None,
    configs: tuple[ProcessorConfig, ...] = PAPER_CONFIGS,
    models: tuple[SpeculativeExecutionModel, ...] = MODELS,
    jobs: int = 1,
    backend: str | None = None,
    batch: int | None = None,
) -> list[Figure3Cell]:
    """Run the full Figure 3 sweep.

    ``max_instructions`` truncates each kernel trace (the pure-Python
    cycle-level engine is the cost driver — see DESIGN.md); the paper's
    qualitative shape is stable from a few thousand instructions up.
    ``jobs`` fans the whole (config x setting x model x benchmark) grid —
    baselines included — over worker processes; ``batch`` additionally
    groups same-benchmark points into batched-engine units (see
    :mod:`repro.engine.batched`).  The cells are identical for any
    combination of the two.
    """
    names = _suite_names(benchmarks)
    # One flat batch: per config, the baselines then every
    # (setting, model, benchmark) point, submitted together.
    job_list: list[SimJob] = []
    for config in configs:
        job_list.extend(SimJob(n, config, None, max_instructions) for n in names)
        for timing, conf in SETTINGS:
            for model in models:
                job_list.extend(
                    SimJob(
                        n,
                        config,
                        model,
                        max_instructions,
                        confidence=conf,
                        update_timing=timing,
                    )
                    for n in names
                )
    results = iter(run_jobs(job_list, jobs=jobs, backend=backend, batch=batch))

    cells: list[Figure3Cell] = []
    for config in configs:
        base_cycles = {n: next(results).cycles for n in names}
        for timing, conf in SETTINGS:
            for model in models:
                per_benchmark = {
                    n: base_cycles[n] / next(results).cycles for n in names
                }
                cells.append(
                    Figure3Cell(
                        config_label=config.label,
                        setting=f"{timing}/{conf}",
                        model_name=model.name,
                        speedup=harmonic_mean(per_benchmark.values()),
                        per_benchmark=per_benchmark,
                    )
                )
    return cells


def render_figure3(cells: list[Figure3Cell]) -> str:
    """Bar-style rendering grouped the way the paper's figure is."""
    lines = ["Figure 3: Speculative Execution Models Average Speedup", ""]
    config_labels = []
    for cell in cells:
        if cell.config_label not in config_labels:
            config_labels.append(cell.config_label)
    for config_label in config_labels:
        lines.append(f"configuration {config_label}:")
        for setting in (f"{t}/{c}" for t, c in SETTINGS):
            group = [
                c
                for c in cells
                if c.config_label == config_label and c.setting == setting
            ]
            for cell in group:
                # Bars span 0.9 .. 1.5 like the paper's y-axis.
                fraction = (cell.speedup - 0.9) / 0.6
                lines.append(
                    f"  {setting}  {cell.model_name:6s} "
                    f"{render_bar(fraction)} {cell.speedup:.3f}"
                )
        lines.append("")
    return "\n".join(lines)


def render_figure3_per_benchmark(
    cells: list[Figure3Cell], setting: str = "I/R"
) -> str:
    """Per-benchmark speedups for one setting (the detail the paper omits
    "due to space limitations — the individual benchmark behavior is
    similar to the overall")."""
    chosen = [c for c in cells if c.setting == setting]
    if not chosen:
        raise ValueError(f"no cells for setting {setting!r}")
    benchmarks = sorted(
        {name for cell in chosen for name in cell.per_benchmark}
    )
    headers = ["Config", "Model"] + benchmarks + ["HMEAN"]
    rows = []
    for cell in chosen:
        rows.append(
            [cell.config_label, cell.model_name]
            + [f"{cell.per_benchmark.get(b, float('nan')):.3f}" for b in benchmarks]
            + [f"{cell.speedup:.3f}"]
        )
    return render_table(
        headers, rows, title=f"Figure 3 per-benchmark detail ({setting})"
    )


def figure3_table(cells: list[Figure3Cell]) -> str:
    """The same data as an aligned table (model x setting per config)."""
    rows = [
        (c.config_label, c.setting, c.model_name, c.speedup) for c in cells
    ]
    return render_table(
        ("Config", "Setting", "Model", "HM Speedup"),
        rows,
        title="Figure 3 data",
    )
