"""Structured data export for plotting and downstream analysis.

Every experiment's *data* (not its rendered text) as CSV: Figure 3 cells,
Figure 4 breakdowns, and any sweep's points (with per-benchmark columns).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Callable, Sequence

from repro.harness import sweeps as _sweeps
from repro.harness.figure3 import Figure3Cell, run_figure3
from repro.harness.figure4 import Figure4Cell, run_figure4
from repro.harness.table1 import Table1Row, run_table1


def _csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return out.getvalue()


def table1_csv(rows: list[Table1Row]) -> str:
    """Table 1 rows as CSV."""
    return _csv(
        ("benchmark", "input", "dynamic_instructions", "predicted_pct",
         "paper_dynamic_mil", "paper_predicted_pct"),
        [
            (r.benchmark, r.input_label, r.dynamic_instructions,
             round(r.predicted_pct, 2), r.paper_dynamic_mil,
             r.paper_predicted_pct)
            for r in rows
        ],
    )


def figure3_csv(cells: list[Figure3Cell]) -> str:
    """Figure 3 cells as long-format CSV (one row per benchmark value)."""
    rows = []
    for cell in cells:
        rows.append(
            (cell.config_label, cell.setting, cell.model_name, "HMEAN",
             round(cell.speedup, 4))
        )
        for benchmark, value in sorted(cell.per_benchmark.items()):
            rows.append(
                (cell.config_label, cell.setting, cell.model_name,
                 benchmark, round(value, 4))
            )
    return _csv(("config", "setting", "model", "benchmark", "speedup"), rows)


def figure4_csv(cells: list[Figure4Cell]) -> str:
    """Figure 4 breakdowns as CSV."""
    rows = [
        (c.config_label, c.timing, round(c.breakdown.ch, 4),
         round(c.breakdown.cl, 4), round(c.breakdown.ih, 4),
         round(c.breakdown.il, 4), round(c.breakdown.correct, 4))
        for c in cells
    ]
    return _csv(("config", "timing", "CH", "CL", "IH", "IL", "correct"), rows)


def sweep_csv(points) -> str:
    """Any sweep's points as long-format CSV."""
    rows = []
    for point in points:
        rows.append((point.label, "HMEAN", round(point.speedup, 4)))
        for key, value in sorted(point.detail.items()):
            rows.append((point.label, key, round(value, 4)))
    return _csv(("point", "benchmark", "speedup"), rows)


#: Exportable datasets: id -> (runner, csv-formatter).  Runner kwargs are
#: the usual (max_instructions=..., benchmarks=...).
EXPORTS: dict[str, tuple[Callable, Callable]] = {
    "table1": (run_table1, table1_csv),
    "figure3": (run_figure3, figure3_csv),
    "figure4": (run_figure4, figure4_csv),
    "abl-latency": (_sweeps.latency_sensitivity_sweep, sweep_csv),
    "abl-verify": (_sweeps.verification_scheme_sweep, sweep_csv),
    "abl-inval": (_sweeps.invalidation_scheme_sweep, sweep_csv),
    "abl-predictor": (_sweeps.predictor_sweep, sweep_csv),
    "abl-resolution": (_sweeps.resolution_policy_sweep, sweep_csv),
    "abl-confidence": (_sweeps.confidence_strength_sweep, sweep_csv),
    "abl-confidence-scheme": (_sweeps.confidence_scheme_sweep, sweep_csv),
    "abl-tables": (_sweeps.predictor_size_sweep, sweep_csv),
    "abl-frontend": (_sweeps.frontend_idealism_sweep, sweep_csv),
    "abl-scaling": (_sweeps.width_scaling_sweep, sweep_csv),
    "abl-selective": (_sweeps.selective_prediction_sweep, sweep_csv),
    "abl-ports": (_sweeps.vp_ports_sweep, sweep_csv),
    "abl-bpred": (_sweeps.branch_predictor_sweep, sweep_csv),
    "abl-equality": (_sweeps.approximate_equality_sweep, sweep_csv),
}


def export_csv(experiment_id: str, path: str | Path | None = None, **kwargs) -> str:
    """Run an exportable experiment and return (and optionally write) CSV."""
    entry = EXPORTS.get(experiment_id)
    if entry is None:
        raise KeyError(
            f"no CSV export for {experiment_id!r}; know {sorted(EXPORTS)}"
        )
    runner, formatter = entry
    text = formatter(runner(**kwargs))
    if path is not None:
        Path(path).write_text(text)
    return text
