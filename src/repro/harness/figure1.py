"""Figure 1 reproduction: pipelined execution of a three-instruction
dependence chain under the base processor and the super/great/good models
with correct and incorrect predictions.

The paper's figure shows seven scenarios over instructions 1, 2, 3 where
2 depends on 1 and 3 depends on 2, all resident in the instruction window
at cycle t, with the outputs of 1 and 2 value-predicted.  This harness
rebuilds exactly that situation, runs the timing engine with event logging
and renders the per-cycle pipeline diagram plus the cycles-to-retire-all
count (the base processor takes 5 cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import SpecEventKind
from repro.core.model import (
    GOOD_MODEL,
    GREAT_MODEL,
    SUPER_MODEL,
    SpeculativeExecutionModel,
)
from repro.engine.config import ProcessorConfig
from repro.engine.pipeline import PipelineSimulator
from repro.isa.opcodes import Opcode
from repro.trace.record import TraceRecord
from repro.vp.fixed import ConfidentForPCs, FixedValuePredictor
from repro.vp.update_timing import UpdateTiming

_PCS = (0x1000, 0x1008, 0x1010)
_VALUES = (1, 2, 3)


def chain_trace() -> list[TraceRecord]:
    """The figure's dependence chain: 2 depends on 1, 3 depends on 2."""
    records = []
    sources = ((4,), (10,), (11,))
    dests = (10, 11, 12)
    for i in range(3):
        records.append(
            TraceRecord(
                seq=i,
                pc=_PCS[i],
                opcode=Opcode.ADD,
                src_regs=sources[i],
                dest_reg=dests[i],
                dest_value=_VALUES[i],
                next_pc=_PCS[i] + 8,
            )
        )
    return records


@dataclass(frozen=True)
class Figure1Scenario:
    """One of the figure's seven scenarios."""

    label: str
    model_name: str  # "base", "super", "great", "good"
    prediction: str  # "none", "correct", "incorrect"
    cycles: int  # cycles from first issue opportunity to last retirement
    timeline: dict[int, list[tuple[int, str]]]  # cycle -> [(seq, stage)]


_STAGE_LABEL = {
    SpecEventKind.ISSUE: "EX",
    SpecEventKind.REISSUE: "EX*",
    SpecEventKind.WRITE: "W",
    SpecEventKind.EQUALITY: "EQ",
    SpecEventKind.VERIFY: "V",
    SpecEventKind.INVALIDATE: "X",
    SpecEventKind.RETIRE: "C",
    SpecEventKind.PREDICT: "P",
}


def _run_scenario(
    label: str,
    model: SpeculativeExecutionModel | None,
    prediction: str,
) -> Figure1Scenario:
    trace = chain_trace()
    config = ProcessorConfig(issue_width=4, window_size=24, log_events=True)
    predictor = None
    confidence = None
    if model is not None and prediction != "none":
        offset = 0 if prediction == "correct" else 99
        predictor = FixedValuePredictor(
            {_PCS[0]: _VALUES[0] + offset, _PCS[1]: _VALUES[1] + offset}
        )
        confidence = ConfidentForPCs({_PCS[0], _PCS[1]})
    simulator = PipelineSimulator(
        trace,
        config,
        model,
        predictor=predictor,
        confidence=confidence,
        update_timing=UpdateTiming.IMMEDIATE,
    )
    simulator.run()
    events = simulator.log.events
    dispatch_cycle = min(
        e.cycle for e in events if e.kind is SpecEventKind.DISPATCH
    )
    first_issue = dispatch_cycle + 1  # the figure's cycle t
    last_retire = max(e.cycle for e in events if e.kind is SpecEventKind.RETIRE)
    timeline: dict[int, list[tuple[int, str]]] = {}
    for event in events:
        stage = _STAGE_LABEL.get(event.kind)
        if stage is None:
            continue
        timeline.setdefault(event.cycle - first_issue, []).append(
            (event.seq, stage)
        )
    return Figure1Scenario(
        label=label,
        model_name=model.name if model is not None else "base",
        prediction=prediction,
        cycles=last_retire - first_issue + 1,
        timeline=timeline,
    )


def run_figure1() -> list[Figure1Scenario]:
    """All seven scenarios of the paper's Figure 1."""
    scenarios = [_run_scenario("base", None, "none")]
    for model in (SUPER_MODEL, GREAT_MODEL, GOOD_MODEL):
        for prediction in ("correct", "incorrect"):
            scenarios.append(
                _run_scenario(f"{model.name}/{prediction}", model, prediction)
            )
    return scenarios


def render_figure1(scenarios: list[Figure1Scenario]) -> str:
    """ASCII pipeline diagrams, one per scenario."""
    lines: list[str] = [
        "Figure 1: execution of a 3-instruction dependence chain",
        "(cycle t = first issue opportunity; stages: EX execute, EX* reissue,",
        " W write, EQ equality, V verify, X invalidate, C commit, P predict)",
        "",
    ]
    for scenario in scenarios:
        lines.append(
            f"{scenario.label:16s} retires all 3 in {scenario.cycles} cycles"
        )
        max_cycle = max(scenario.timeline) if scenario.timeline else 0
        cells: dict[tuple[int, int], str] = {}
        width = 7
        for cycle in range(0, max_cycle + 1):
            for seq in range(3):
                stages = [
                    stage
                    for (s, stage) in scenario.timeline.get(cycle, [])
                    if s == seq
                ]
                text = ",".join(dict.fromkeys(stages))  # dedupe, keep order
                cells[(seq, cycle)] = text
                width = max(width, len(text) + 1)
        header = "    instr |" + "".join(
            (f"t+{c}" if c else "t").center(width) for c in range(0, max_cycle + 1)
        )
        lines.append(header)
        for seq in range(3):
            row = [f"        {seq + 1} |"]
            for cycle in range(0, max_cycle + 1):
                row.append(cells[(seq, cycle)].center(width))
            lines.append("".join(row).rstrip())
        lines.append("")
    return "\n".join(lines)
