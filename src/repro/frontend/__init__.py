"""Front-end models: branch prediction and fetch.

The paper's configuration (Section 5.1): a gshare predictor hashing 16 bits
of global history with the low 16 bits of the branch PC into a 64K-entry
table of 2-bit counters, updated with correct information after each
prediction; unconditional and direct jumps always predicted correctly;
conditional-branch targets correct whenever the direction is correct; an
ideal fetch engine that can read and align past multiple basic blocks per
cycle as long as predictions are correct and fetches hit in the L1 I-cache.
"""

from repro.frontend.gshare import GsharePredictor
from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.local import LocalHistoryPredictor
from repro.frontend.tournament import TournamentPredictor
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.fetch import FetchEngine, FetchedInstruction

__all__ = [
    "GsharePredictor",
    "BimodalPredictor",
    "LocalHistoryPredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "FetchEngine",
    "FetchedInstruction",
]
