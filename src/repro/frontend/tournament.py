"""McFarling combining (tournament) branch predictor [24].

The paper uses plain gshare; this is the combining predictor from the
same tech report — gshare and a local-history component arbitrated by a
chooser of 2-bit counters indexed by PC — provided for front-end
ablations.
"""

from __future__ import annotations

from repro.frontend.gshare import GsharePredictor
from repro.frontend.local import LocalHistoryPredictor
from repro.isa.opcodes import INSTRUCTION_BYTES


class TournamentPredictor:
    """gshare + local-history with a per-PC chooser."""

    def __init__(
        self,
        global_history_bits: int = 12,
        global_table_bits: int = 12,
        local_history_bits: int = 10,
        local_bht_bits: int = 10,
        chooser_bits: int = 12,
    ):
        if chooser_bits <= 0:
            raise ValueError("chooser_bits must be positive")
        self.gshare = GsharePredictor(global_history_bits, global_table_bits)
        self.local = LocalHistoryPredictor(local_history_bits, local_bht_bits)
        self._chooser_mask = (1 << chooser_bits) - 1
        # >= 2 selects gshare
        self._chooser = bytearray([2] * (1 << chooser_bits))
        self.predictions = 0
        self.mispredictions = 0

    def _chooser_index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & self._chooser_mask

    def predict(self, pc: int) -> bool:
        if self._chooser[self._chooser_index(pc)] >= 2:
            return self.gshare.predict(pc)
        return self.local.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        index = self._chooser_index(pc)
        use_gshare = self._chooser[index] >= 2
        gshare_pred = self.gshare.predict(pc)
        local_pred = self.local.predict(pc)
        predicted = gshare_pred if use_gshare else local_pred
        # train the components (they also record their own accuracy)
        self.gshare.update(pc, taken)
        self.local.update(pc, taken)
        gshare_right = gshare_pred == taken
        local_right = local_pred == taken
        counter = self._chooser[index]
        if gshare_right and not local_right and counter < 3:
            self._chooser[index] = counter + 1
        elif local_right and not gshare_right and counter > 0:
            self._chooser[index] = counter - 1
        self.predictions += 1
        correct = predicted == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
