"""Return address stack for predicting ``jr ra`` targets.

Like the BTB this is not needed under the paper's ideal-target assumption;
it backs the relaxed-frontend ablation.
"""

from __future__ import annotations


class ReturnAddressStack:
    """Fixed-depth circular return-address predictor stack."""

    def __init__(self, depth: int = 16):
        if depth <= 0:
            raise ValueError("depth must be > 0")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        """Record a call's return address."""
        self._stack.append(return_address)
        self.pushes += 1
        if len(self._stack) > self.depth:
            # Oldest entry falls off the bottom, as in hardware.
            self._stack.pop(0)

    def pop(self) -> int | None:
        """Predict a return target; ``None`` when the stack is empty."""
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
