"""Branch target buffer.

The paper assumes conditional-branch targets are predicted correctly
whenever the direction is correct, so the headline configuration does not
need a BTB.  The model is provided for ablations that relax that
assumption (``ProcessorConfig.ideal_branch_targets = False``), where
taken branches missing in the BTB cost a fetch redirect.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Direct-mapped tagged target buffer."""

    def __init__(self, entries_bits: int = 11):
        if entries_bits <= 0:
            raise ValueError("entries_bits must be > 0")
        self.entries_bits = entries_bits
        self._index_mask = (1 << entries_bits) - 1
        self._tags: list[int | None] = [None] * (1 << entries_bits)
        self._targets: list[int] = [0] * (1 << entries_bits)
        self.hits = 0
        self.misses = 0

    def _index_tag(self, pc: int) -> tuple[int, int]:
        word = pc >> 3
        return word & self._index_mask, word >> self.entries_bits

    def lookup(self, pc: int) -> int | None:
        """Return the predicted target for ``pc``, or ``None`` on a miss."""
        index, tag = self._index_tag(pc)
        if self._tags[index] == tag:
            self.hits += 1
            return self._targets[index]
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for a taken control transfer."""
        index, tag = self._index_tag(pc)
        self._tags[index] = tag
        self._targets[index] = target
