"""Two-level local-history (PAg) branch predictor.

Per-branch history registers indexing a shared pattern table — the
per-address half of McFarling's combining predictor.  Captures short
per-branch patterns (loop trip counts) that global history dilutes.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES


class LocalHistoryPredictor:
    """BHT of per-branch histories over a shared 2-bit-counter PHT."""

    def __init__(self, history_bits: int = 10, bht_bits: int = 10):
        if history_bits <= 0 or bht_bits <= 0:
            raise ValueError("history_bits and bht_bits must be positive")
        self.history_bits = history_bits
        self.bht_bits = bht_bits
        self._bht_mask = (1 << bht_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._histories = [0] * (1 << bht_bits)
        self._pht = bytearray([1] * (1 << history_bits))
        self.predictions = 0
        self.mispredictions = 0

    def _bht_index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & self._bht_mask

    def predict(self, pc: int) -> bool:
        history = self._histories[self._bht_index(pc)]
        return self._pht[history] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        index = self._bht_index(pc)
        history = self._histories[index]
        predicted = self._pht[history] >= 2
        counter = self._pht[history]
        if taken:
            if counter < 3:
                self._pht[history] = counter + 1
        elif counter > 0:
            self._pht[history] = counter - 1
        self._histories[index] = ((history << 1) | int(taken)) & self._history_mask
        self.predictions += 1
        correct = predicted == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
