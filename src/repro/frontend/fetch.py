"""The fetch engine.

Implements the paper's ideal fetch assumption: "provided instruction
references hit in the cache and branches are predicted correctly, the
fetch engine can read and align from multiple basic blocks in the same
cycle."  Fetch is therefore limited only by fetch width, I-cache misses,
and branch mispredictions.

On a conditional-branch direction misprediction the engine switches to
wrong-path mode: it synthesizes a deterministic stream of wrong-path
instructions ("Wrong path instructions are executed and their side effects
are modeled") that occupy window slots, issue bandwidth and D-cache ports
until the timing engine resolves the branch and calls :meth:`redirect`.
Wrong-path *data* side effects are approximated: wrong-path loads touch the
data cache (pollution), but wrong-path memory operations do not enter the
load/store queue (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import INSTRUCTION_BYTES, Opcode
from repro.mem.cache import Cache
from repro.trace.record import TraceRecord
from repro.trace.columnar import ColumnarTrace

_MASK64 = (1 << 64) - 1
_WRONG_PATH_SEQ = -1


def _mix(state: int) -> int:
    state = (state ^ (state >> 33)) * 0xFF51AFD7ED558CCD & _MASK64
    return (state ^ (state >> 33)) & _MASK64


@dataclass(slots=True)
class FetchedInstruction:
    """One instruction leaving the fetch stage."""

    rec: TraceRecord
    wrong_path: bool = False
    #: True for a correct-path conditional branch whose direction the
    #: branch predictor got wrong — fetch goes wrong-path after it.
    mispredicted: bool = False


class _WrongPathGenerator:
    """Deterministic synthetic wrong-path instruction stream.

    The stream for a given (seed, start pc) is a pure function of its
    position, and a branch that mispredicts repeatedly replays the same
    stream from the top — so generated records are memoized in a shared
    ``[records, state, pc]`` cache (one per mispredicted branch, owned by
    the :class:`FetchEngine`) and the generator only runs the synthesis
    arithmetic when a replay walks past the longest previous one.
    ``TraceRecord`` instances are immutable to the engine, so sharing
    them across replays (and runs) is safe."""

    __slots__ = ("_cache", "_pos", "_data_base")

    def __init__(
        self,
        seed: int = 0,
        start_pc: int = 0,
        data_base: int = 0x600000,
        cache: list | None = None,
    ):
        if cache is None:
            cache = _wrong_path_cache(seed, start_pc)
        self._cache = cache
        self._pos = 0
        self._data_base = data_base

    def next(self) -> TraceRecord:
        cache = self._cache
        records = cache[0]
        pos = self._pos
        self._pos = pos + 1
        if pos < len(records):
            return records[pos]
        state = _mix(cache[1])
        cache[1] = state
        pc = cache[2]
        next_pc = pc + INSTRUCTION_BYTES
        cache[2] = next_pc
        roll = state % 100
        dest = 8 + (state >> 8) % 8
        src = 8 + (state >> 16) % 8
        if roll < 70:
            opcode, mem_addr, mem_size = Opcode.ADD, None, None
        elif roll < 85:
            opcode = Opcode.LD
            mem_addr = self._data_base + ((state >> 24) & 0xFFF) * 8
            mem_size = 8
        elif roll < 90:
            opcode, mem_addr, mem_size = Opcode.MUL, None, None
        else:
            # Wrong-path branch: executes but never redirects fetch.
            rec = TraceRecord(
                seq=_WRONG_PATH_SEQ,
                pc=pc,
                opcode=Opcode.BNE,
                src_regs=(src,),
                branch_taken=bool(state & 1),
                next_pc=next_pc,
            )
            records.append(rec)
            return rec
        rec = TraceRecord(
            seq=_WRONG_PATH_SEQ,
            pc=pc,
            opcode=opcode,
            src_regs=(src,),
            dest_reg=dest,
            dest_value=state & 0xFFFF,
            mem_addr=mem_addr,
            mem_size=mem_size,
            next_pc=next_pc,
        )
        records.append(rec)
        return rec


#: Process-wide wrong-path memo, keyed by ``(seed, start_pc)``.  A stream
#: is a pure function of its key, so the memo is shared across engines and
#: runs — repeated simulations of one trace (config sweeps, benchmark
#: repetitions) replay recorded streams instead of re-synthesizing them.
_WP_STREAMS: dict[tuple[int, int], list] = {}
_WP_STREAM_LIMIT = 1 << 16


def _wrong_path_cache(seed: int, start_pc: int) -> list:
    """The memoized ``[records, rng_state, next_pc]`` stream cache for
    ``(seed, start_pc)``, creating (and registering) it on first use.

    The memo is a bounded LRU: a hit reinserts its key at the dict tail
    (dicts preserve insertion order), so the head is always the coldest
    stream and reaching the cap evicts exactly one entry instead of
    dropping the whole memo.  The move-to-end runs once per wrong-path
    episode, not per fetched instruction, so it stays off the hot path.
    """
    key = (seed, start_pc)
    streams = _WP_STREAMS
    cache = streams.get(key)
    if cache is None:
        if len(streams) >= _WP_STREAM_LIMIT:
            del streams[next(iter(streams))]
        cache = streams[key] = [[], _mix(seed | 1), start_pc]
    else:
        del streams[key]
        streams[key] = cache
    return cache


class FetchEngine:
    """Trace replay with branch-prediction and I-cache timing."""

    def __init__(
        self,
        trace: list[TraceRecord],
        icache: Cache | None,
        branch_predictor,
        *,
        model_wrong_path: bool = True,
        ideal_branch_targets: bool = True,
        btb=None,
        ras=None,
        seed: int = 7,
    ):
        # A ColumnarTrace duck-types list[TraceRecord], but its
        # __getitem__ goes through a Python-level method; replaying
        # indexes the materialized row list directly at list speed.
        self.trace = trace.rows() if isinstance(trace, ColumnarTrace) else trace
        self.icache = icache
        self.branch_predictor = branch_predictor
        self.model_wrong_path = model_wrong_path
        self.ideal_branch_targets = ideal_branch_targets
        self.btb = btb
        self.ras = ras
        self._seed = seed
        self._index = 0
        self._stall_until = 0
        self._wrong_path_gen: _WrongPathGenerator | None = None
        self._last_block: int | None = None
        self.fetched_correct = 0
        self.fetched_wrong_path = 0
        self.icache_stall_cycles = 0

    @property
    def exhausted(self) -> bool:
        """Correct path fully delivered and not stuck on a wrong path."""
        return self._index >= len(self.trace) and self._wrong_path_gen is None

    @property
    def on_wrong_path(self) -> bool:
        return self._wrong_path_gen is not None

    def _icache_ready(self, pc: int, cycle: int) -> bool:
        """Model the I-cache access for the block holding ``pc``."""
        if self.icache is None:
            return True
        block = pc // self.icache.block_bytes
        if block == self._last_block:
            return True
        latency = self.icache.access(pc)
        self._last_block = block
        if latency > self.icache.hit_latency:
            self._stall_until = cycle + latency
            self.icache_stall_cycles += latency - self.icache.hit_latency
            return False
        return True

    def _predict_direction(self, rec: TraceRecord) -> bool:
        """Predict and (immediately) train; returns direction-correct.

        ``update`` recomputes the prediction itself before training (every
        predictor's ``predict`` is a pure read), so one call does both.
        """
        if self.branch_predictor is None:
            return True
        return self.branch_predictor.update(rec.pc, bool(rec.branch_taken))

    def _target_correct(self, rec: TraceRecord) -> bool:
        """Target prediction under the configured frontend idealism."""
        if self.ideal_branch_targets:
            return True
        if rec.opcode in (Opcode.JR,):
            predicted = self.ras.pop() if self.ras is not None else None
            return predicted == rec.next_pc
        if self.btb is not None and (rec.branch_taken or rec.is_indirect):
            predicted = self.btb.lookup(rec.pc)
            self.btb.update(rec.pc, rec.next_pc)
            return predicted == rec.next_pc
        return True

    def fetch(self, cycle: int, max_count: int) -> list[FetchedInstruction]:
        """Fetch up to ``max_count`` instructions in ``cycle``."""
        return [
            FetchedInstruction(rec, wrong_path=wrong, mispredicted=mispred)
            for rec, wrong, mispred, __ in self.fetch_raw(cycle, max_count)
        ]

    def fetch_raw(
        self, cycle: int, max_count: int, ready: int = 0
    ) -> list[tuple[TraceRecord, bool, bool, int]]:
        """:meth:`fetch` as plain ``(rec, wrong_path, mispredicted,
        ready)`` tuples — the engine-facing hot path, which skips building
        a :class:`FetchedInstruction` per instruction.  ``ready`` is
        stamped into every tuple verbatim so the engine can extend its
        dispatch queue with the batch directly (the queue's entries carry
        the cycle the instruction becomes dispatchable)."""
        if cycle < self._stall_until or max_count <= 0:
            return []
        out: list[tuple[TraceRecord, bool, bool, int]] = []
        out_append = out.append
        trace = self.trace
        trace_len = len(trace)
        icache = self.icache
        # Same-block accesses are free; inline that fast path so the
        # I-cache model is only consulted on block boundaries.  The whole
        # of ``_icache_ready`` is inlined below (both call sites) with the
        # last-block/latency state held in locals for the duration of the
        # fetch group.
        block_bytes = icache.block_bytes if icache is not None else 0
        icache_hit = icache.hit_latency if icache is not None else 0
        last_block = self._last_block
        index = self._index
        wrong_gen = self._wrong_path_gen
        wrong_next = wrong_gen.next if wrong_gen is not None else None
        bpred = self.branch_predictor
        bp_update = bpred.update if bpred is not None else None
        ideal_targets = self.ideal_branch_targets
        ras = self.ras
        n_correct = 0
        n_wrong = 0
        count = 0
        while count < max_count:
            if wrong_next is not None:
                rec = wrong_next()
                if icache is not None:
                    block = rec.pc // block_bytes
                    if block != last_block:
                        latency = icache.access(rec.pc)
                        last_block = block
                        if latency > icache_hit:
                            self._stall_until = cycle + latency
                            self.icache_stall_cycles += latency - icache_hit
                            break
                out_append((rec, True, False, ready))
                n_wrong += 1
                count += 1
                continue
            if index >= trace_len:
                break
            rec = trace[index]
            if icache is not None:
                block = rec.pc // block_bytes
                if block != last_block:
                    latency = icache.access(rec.pc)
                    last_block = block
                    if latency > icache_hit:
                        self._stall_until = cycle + latency
                        self.icache_stall_cycles += latency - icache_hit
                        break
            index += 1
            mispredicted = False
            if rec.is_branch:
                direction_ok = (
                    bp_update(rec.pc, bool(rec.branch_taken))
                    if bp_update is not None
                    else True
                )
                mispredicted = not direction_ok or not (
                    ideal_targets or self._target_correct(rec)
                )
            elif rec.is_control:
                if ras is not None and rec.opcode in (Opcode.JAL, Opcode.JALR):
                    ras.push(rec.pc + INSTRUCTION_BYTES)
                mispredicted = not (ideal_targets or self._target_correct(rec))
            out_append((rec, False, mispredicted, ready))
            n_correct += 1
            count += 1
            if mispredicted:
                if self.model_wrong_path:
                    self._wrong_path_gen = _WrongPathGenerator(
                        cache=_wrong_path_cache(
                            self._seed ^ rec.seq, rec.next_pc + 0x4000
                        )
                    )
                else:
                    self._stall_until = 1 << 60  # wait for redirect
                break
        self._index = index
        self._last_block = last_block
        if n_correct:
            self.fetched_correct += n_correct
        if n_wrong:
            self.fetched_wrong_path += n_wrong
        return out

    def redirect(self, cycle: int, *, penalty: int = 1) -> None:
        """Resume correct-path fetch after a resolved misprediction.

        ``penalty`` cycles pass before the first correct-path fetch (the
        redirect bubble); correct-path state (``_index``) already points at
        the instruction after the branch because the trace is the correct
        path by construction.
        """
        self._wrong_path_gen = None
        self._stall_until = cycle + penalty
        self._last_block = None

    def rewind_to(self, seq: int, cycle: int, *, penalty: int = 1) -> None:
        """Restart correct-path fetch from trace position ``seq`` — used by
        complete value-misspeculation invalidation, which refetches like a
        branch misprediction."""
        self._index = seq
        self._wrong_path_gen = None
        self._stall_until = cycle + penalty
        self._last_block = None
