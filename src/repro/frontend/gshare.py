"""Gshare conditional branch direction predictor [McFarling 1993].

Paper configuration: 16 bits of global history XORed with the 16 low-order
bits of the branch PC index a 64K-entry table of saturating 2-bit counters.
"The branch predictor is updated with correct information following each
prediction" — i.e. history and counters always reflect actual outcomes
(no delayed/speculative-history modeling for the branch predictor).
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES


class GsharePredictor:
    """Global-history XOR PC indexed pattern-history table."""

    def __init__(self, history_bits: int = 16, table_bits: int = 16):
        if history_bits < 0 or table_bits <= 0:
            raise ValueError("history_bits must be >= 0 and table_bits > 0")
        self.history_bits = history_bits
        self.table_bits = table_bits
        self._history_mask = (1 << history_bits) - 1
        self._index_mask = (1 << table_bits) - 1
        # 2-bit saturating counters, initialized weakly not-taken (01).
        self.table = bytearray([1] * (1 << table_bits))
        self.history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        word_pc = pc // INSTRUCTION_BYTES
        return ((self.history & self._history_mask) ^ word_pc) & self._index_mask

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for a conditional branch at ``pc``."""
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the actual outcome; returns True if it was predicted
        correctly.  Also shifts the outcome into the global history."""
        index = self._index(pc)
        predicted_taken = self.table[index] >= 2
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        else:
            if counter > 0:
                self.table[index] = counter - 1
        self.history = ((self.history << 1) | int(taken)) & self._history_mask
        self.predictions += 1
        correct = predicted_taken == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
