"""Bimodal (PC-indexed 2-bit counter) branch predictor.

Not used by the paper's configuration, but provided as the natural baseline
for branch-predictor ablations: the gap between bimodal and gshare controls
how often value speculation runs under wrong-path fetch.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES


class BimodalPredictor:
    """Classic per-PC saturating 2-bit counter table [Smith 1981]."""

    def __init__(self, table_bits: int = 12):
        if table_bits <= 0:
            raise ValueError("table_bits must be > 0")
        self.table_bits = table_bits
        self._index_mask = (1 << table_bits) - 1
        self.table = bytearray([1] * (1 << table_bits))
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & self._index_mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        index = self._index(pc)
        predicted_taken = self.table[index] >= 2
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1
        self.predictions += 1
        correct = predicted_taken == taken
        if not correct:
            self.mispredictions += 1
        return correct

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
