"""Value prediction and confidence estimation.

The paper's predictor (Section 5.2) is the two-level context-based (FCM)
predictor of Sazeides & Smith: a 64K-entry direct-mapped history table
indexed by instruction PC holds a hash (the *context*) of the most recent
four result values; the context indexes a 64K-entry prediction table whose
entries carry the predicted value and a one-bit replacement counter.

Confidence comes from a separate 64K-entry table of 3-bit resetting
counters (increment on correct, reset on incorrect; confident only at the
maximum count), compared against an oracle estimator that is confident
exactly when the prediction is correct.

Update timing is a first-class dimension: *immediate* (I) trains the
predictor with the correct value right after each prediction; *delayed*
(D) trains at retirement while speculatively inserting the predicted value
into the history table at prediction time.
"""

from repro.vp.base import ValuePredictor, PredictorStats
from repro.vp.context import ContextValuePredictor
from repro.vp.last_value import LastValuePredictor
from repro.vp.stride import StridePredictor
from repro.vp.hybrid import HybridPredictor
from repro.vp.tagged import TaggedContextPredictor
from repro.vp.confidence import (
    ConfidenceEstimator,
    HistoryConfidenceEstimator,
    ResettingConfidenceEstimator,
    SaturatingConfidenceEstimator,
)
from repro.vp.oracle import OracleConfidence
from repro.vp.update_timing import UpdateTiming

__all__ = [
    "ValuePredictor",
    "PredictorStats",
    "ContextValuePredictor",
    "LastValuePredictor",
    "StridePredictor",
    "HybridPredictor",
    "TaggedContextPredictor",
    "ConfidenceEstimator",
    "ResettingConfidenceEstimator",
    "SaturatingConfidenceEstimator",
    "HistoryConfidenceEstimator",
    "OracleConfidence",
    "UpdateTiming",
]
