"""Predictor update-timing policies (the paper's I/D dimension)."""

from __future__ import annotations

import enum


class UpdateTiming(enum.Enum):
    """When the value predictor learns the correct outcome.

    IMMEDIATE ("I"): tables are updated with the correct value immediately
    after the prediction is made — an idealization that bounds how much
    performance timely training is worth.

    DELAYED ("D"): tables are updated when the instruction retires; at
    prediction time the history table is updated *speculatively* with the
    predicted value (Section 5.2), so in-flight instructions see contexts
    extended by unverified predictions.
    """

    IMMEDIATE = "I"
    DELAYED = "D"

    @property
    def label(self) -> str:
        return self.value
