"""Confidence estimation for value predictions.

The paper (Section 5.2): "a confidence table is indexed using the PC of the
predicted instruction and contains resetting counters that are incremented
by 1 on correct predictions and reset to 0 on incorrect predictions.  A
prediction is considered confident when the confidence value is at
maximum."  The evaluated configuration uses 64K entries of 3-bit counters.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.isa.opcodes import INSTRUCTION_BYTES

#: PC -> counter-index shift (instructions are fixed-size and aligned);
#: the confidence tables are flat ``bytearray`` columns of saturating
#: counters, so a confidence probe is one shift-mask and one byte read.
_PC_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
assert 1 << _PC_SHIFT == INSTRUCTION_BYTES


@dataclass
class ConfidenceStats:
    """Counts of (confidence, outcome) pairs — the raw material of Fig. 4."""

    correct_high: int = 0  # CH
    correct_low: int = 0  # CL
    incorrect_high: int = 0  # IH
    incorrect_low: int = 0  # IL

    @property
    def total(self) -> int:
        return (
            self.correct_high
            + self.correct_low
            + self.incorrect_high
            + self.incorrect_low
        )

    def fractions(self) -> dict[str, float]:
        total = self.total or 1
        return {
            "CH": self.correct_high / total,
            "CL": self.correct_low / total,
            "IH": self.incorrect_high / total,
            "IL": self.incorrect_low / total,
        }


class ConfidenceEstimator(abc.ABC):
    """Assigns high/low confidence to each value prediction."""

    def __init__(self) -> None:
        self.stats = ConfidenceStats()

    @abc.abstractmethod
    def confident(self, pc: int, prediction_correct: bool) -> bool:
        """High confidence for the prediction at ``pc``?

        ``prediction_correct`` is ground truth known to the simulator; a
        realistic estimator must ignore it (it exists for the oracle).
        """

    @abc.abstractmethod
    def update(self, pc: int, correct: bool) -> None:
        """Learn a resolved prediction outcome."""

    def record(self, confident: bool, correct: bool) -> None:
        """Accumulate the CH/CL/IH/IL breakdown."""
        if correct and confident:
            self.stats.correct_high += 1
        elif correct:
            self.stats.correct_low += 1
        elif confident:
            self.stats.incorrect_high += 1
        else:
            self.stats.incorrect_low += 1


class SaturatingConfidenceEstimator(ConfidenceEstimator):
    """Up/down saturating counters with a confidence threshold.

    The alternative Section 3.6 alludes to via Calder et al.'s confidence
    levels: instead of resetting to zero on a misprediction, the counter
    steps down, so a single miss in a long correct run does not forfeit
    all accumulated confidence.  More coverage, more misspeculation than
    the resetting scheme.
    """

    def __init__(
        self,
        table_bits: int = 16,
        counter_bits: int = 3,
        threshold: int | None = None,
        down_step: int = 1,
    ):
        super().__init__()
        if table_bits <= 0 or counter_bits <= 0:
            raise ValueError("table_bits and counter_bits must be positive")
        if down_step <= 0:
            raise ValueError("down_step must be positive")
        self.max_count = (1 << counter_bits) - 1
        self.threshold = self.max_count if threshold is None else threshold
        if not 0 < self.threshold <= self.max_count:
            raise ValueError("threshold must be in (0, max_count]")
        self.down_step = down_step
        self._mask = (1 << table_bits) - 1
        self._counters = bytearray(1 << table_bits)

    def _index(self, pc: int) -> int:
        return (pc >> _PC_SHIFT) & self._mask

    def counter(self, pc: int) -> int:
        return self._counters[self._index(pc)]

    def confident(self, pc: int, prediction_correct: bool) -> bool:
        return self._counters[(pc >> _PC_SHIFT) & self._mask] >= self.threshold

    def update(self, pc: int, correct: bool) -> None:
        index = (pc >> _PC_SHIFT) & self._mask
        if correct:
            if self._counters[index] < self.max_count:
                self._counters[index] += 1
        else:
            self._counters[index] = max(
                0, self._counters[index] - self.down_step
            )


class HistoryConfidenceEstimator(ConfidenceEstimator):
    """Outcome-history confidence in the spirit of Bekerman et al. [2].

    Each entry records the last ``history_bits`` prediction outcomes for
    the PC; a prediction is confident only when the recent pattern shows
    no misses.  "Associate with a mispredicted instruction part of the
    history that lead to it; in the case of future match, a prediction is
    assigned low confidence" — approximated here pattern-free: any miss in
    the recorded window blocks confidence until it ages out.
    """

    def __init__(self, table_bits: int = 16, history_bits: int = 4):
        super().__init__()
        if table_bits <= 0 or history_bits <= 0:
            raise ValueError("table_bits and history_bits must be positive")
        self.history_bits = history_bits
        self._full = (1 << history_bits) - 1
        self._mask = (1 << table_bits) - 1
        #: per-entry outcome shift register; 1 = correct.  Entries start
        #: at zero so cold instructions are low-confidence.
        self._history = bytearray(1 << table_bits)

    def _index(self, pc: int) -> int:
        return (pc >> _PC_SHIFT) & self._mask

    def confident(self, pc: int, prediction_correct: bool) -> bool:
        return self._history[(pc >> _PC_SHIFT) & self._mask] == self._full

    def update(self, pc: int, correct: bool) -> None:
        index = (pc >> _PC_SHIFT) & self._mask
        pattern = ((self._history[index] << 1) | int(correct)) & self._full
        self._history[index] = pattern


class AlwaysConfidentEstimator(ConfidenceEstimator):
    """Confidence gating disabled: every prediction is used.

    The ablation framework's lesion for the confidence component — the
    machine acts on every prediction the value predictor produces, so
    the report isolates what the confidence table itself buys.  Keeping
    it module-level keeps it picklable for the pool/cluster backends.
    """

    def confident(self, pc: int, prediction_correct: bool) -> bool:
        return True

    def update(self, pc: int, correct: bool) -> None:
        pass


class ResettingConfidenceEstimator(ConfidenceEstimator):
    """The paper's realistic estimator: PC-indexed resetting counters."""

    def __init__(self, table_bits: int = 16, counter_bits: int = 3):
        super().__init__()
        if table_bits <= 0 or counter_bits <= 0:
            raise ValueError("table_bits and counter_bits must be positive")
        self.table_bits = table_bits
        self.max_count = (1 << counter_bits) - 1
        self._mask = (1 << table_bits) - 1
        self._counters = bytearray(1 << table_bits)

    def _index(self, pc: int) -> int:
        return (pc >> _PC_SHIFT) & self._mask

    def counter(self, pc: int) -> int:
        """Current counter value for ``pc`` (tests/inspection)."""
        return self._counters[self._index(pc)]

    def confident(self, pc: int, prediction_correct: bool) -> bool:
        return self._counters[(pc >> _PC_SHIFT) & self._mask] == self.max_count

    def update(self, pc: int, correct: bool) -> None:
        index = (pc >> _PC_SHIFT) & self._mask
        if correct:
            if self._counters[index] < self.max_count:
                self._counters[index] += 1
        else:
            self._counters[index] = 0
