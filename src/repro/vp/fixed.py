"""Scripted predictor and confidence estimators for controlled experiments.

The Figure 1 reproduction needs exact control over which instructions are
predicted and whether their predictions are correct; these classes provide
that control without touching the engine.
"""

from __future__ import annotations

from repro.vp.base import ValuePredictor
from repro.vp.confidence import ConfidenceEstimator

_MASK64 = (1 << 64) - 1


class FixedValuePredictor(ValuePredictor):
    """Predicts a scripted value per PC; unlisted PCs predict a sentinel
    that never matches (so confidence gating keeps them unspeculated)."""

    def __init__(self, values_by_pc: dict[int, int], default: int = 0xDEAD_BEEF):
        super().__init__()
        self.values_by_pc = {pc: v & _MASK64 for pc, v in values_by_pc.items()}
        self.default = default & _MASK64

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        return self.values_by_pc.get(pc, self.default)

    def speculate(self, pc: int, predicted: int) -> None:
        return None

    def train(
        self,
        pc: int,
        actual: int,
        token: object | None = None,
        fold16: int | None = None,
    ) -> None:
        """Scripted predictors do not learn."""


class AlwaysConfident(ConfidenceEstimator):
    """Speculate on every prediction (used to force misspeculation)."""

    def confident(self, pc: int, prediction_correct: bool) -> bool:
        return True

    def update(self, pc: int, correct: bool) -> None:
        """Nothing to learn."""


class ConfidentForPCs(ConfidenceEstimator):
    """Speculate only on a scripted set of PCs."""

    def __init__(self, pcs: set[int]):
        super().__init__()
        self.pcs = set(pcs)

    def confident(self, pc: int, prediction_correct: bool) -> bool:
        return pc in self.pcs

    def update(self, pc: int, correct: bool) -> None:
        """Nothing to learn."""
