"""Stride value predictor — ablation baseline.

Predicts ``last + stride`` where the stride is the difference between the
two most recent values, confirmed by a two-delta policy (the stride only
changes after it repeats), which avoids thrashing on alternating values.
Under delayed timing ``last`` advances speculatively with the prediction;
stride learning happens at retirement from committed values only.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.vp.base import ValuePredictor

_MASK64 = (1 << 64) - 1


class _StrideEntry:
    __slots__ = ("last", "committed_last", "stride", "pending_stride")

    def __init__(self) -> None:
        self.last = 0  # speculative front (advanced by predictions)
        self.committed_last = 0  # architected last value
        self.stride = 0
        self.pending_stride: int | None = None


class StridePredictor(ValuePredictor):
    """Two-delta stride predictor with speculative last-value advance."""

    def __init__(self, table_bits: int = 16):
        super().__init__()
        if table_bits <= 0:
            raise ValueError("table_bits must be positive")
        self._mask = (1 << table_bits) - 1
        self._table: dict[int, _StrideEntry] = {}

    def _entry(self, pc: int) -> _StrideEntry:
        index = (pc // INSTRUCTION_BYTES) & self._mask
        entry = self._table.get(index)
        if entry is None:
            entry = _StrideEntry()
            self._table[index] = entry
        return entry

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        entry = self._entry(pc)
        return (entry.last + entry.stride) & _MASK64

    def speculate(self, pc: int, predicted: int) -> None:
        self._entry(pc).last = predicted & _MASK64
        return None

    def train(self, pc: int, actual: int, token: object | None = None) -> None:
        actual &= _MASK64
        entry = self._entry(pc)
        new_stride = (actual - entry.committed_last) & _MASK64
        if new_stride == entry.stride:
            entry.pending_stride = None
        elif entry.pending_stride == new_stride:
            entry.stride = new_stride
            entry.pending_stride = None
        else:
            entry.pending_stride = new_stride
        entry.committed_last = actual
        if token is None:
            # Immediate timing: the speculative front is the actual value.
            entry.last = actual
