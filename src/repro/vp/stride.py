"""Stride value predictor — ablation baseline.

Predicts ``last + stride`` where the stride is the difference between the
two most recent values, confirmed by a two-delta policy (the stride only
changes after it repeats), which avoids thrashing on alternating values.
Under delayed timing ``last`` advances speculatively with the prediction;
stride learning happens at retirement from committed values only.

Entry state lives in four flat preallocated parallel columns (speculative
last, committed last, confirmed stride, pending stride) indexed by the
PC hash — no per-entry objects, no dict on the hot path.
"""

from __future__ import annotations

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.vp.base import ValuePredictor

_MASK64 = (1 << 64) - 1
_PC_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
assert 1 << _PC_SHIFT == INSTRUCTION_BYTES


class StridePredictor(ValuePredictor):
    """Two-delta stride predictor with speculative last-value advance."""

    def __init__(self, table_bits: int = 16):
        super().__init__()
        if table_bits <= 0:
            raise ValueError("table_bits must be positive")
        self._mask = (1 << table_bits) - 1
        size = 1 << table_bits
        self._last = [0] * size  # speculative front (advanced by predictions)
        self._committed_last = [0] * size  # architected last value
        self._stride = [0] * size
        self._pending_stride: list[int | None] = [None] * size

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        index = (pc >> _PC_SHIFT) & self._mask
        return (self._last[index] + self._stride[index]) & _MASK64

    def peek(self, pc: int) -> int:
        """:meth:`predict` without touching the lookup statistics."""
        index = (pc >> _PC_SHIFT) & self._mask
        return (self._last[index] + self._stride[index]) & _MASK64

    def speculate(self, pc: int, predicted: int) -> None:
        self._last[(pc >> _PC_SHIFT) & self._mask] = predicted & _MASK64
        return None

    def train(
        self,
        pc: int,
        actual: int,
        token: object | None = None,
        fold16: int | None = None,
    ) -> None:
        actual &= _MASK64
        index = (pc >> _PC_SHIFT) & self._mask
        new_stride = (actual - self._committed_last[index]) & _MASK64
        if new_stride == self._stride[index]:
            self._pending_stride[index] = None
        elif self._pending_stride[index] == new_stride:
            self._stride[index] = new_stride
            self._pending_stride[index] = None
        else:
            self._pending_stride[index] = new_stride
        self._committed_last[index] = actual
        if token is None:
            # Immediate timing: the speculative front is the actual value.
            self._last[index] = actual
