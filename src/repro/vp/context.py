"""Two-level context-based (FCM) value predictor [Sazeides & Smith 1997].

Structure (Section 5.2 of the paper):

* **History table** (level 1): direct-mapped, indexed by instruction PC,
  untagged — every lookup produces a context, so every register-writing
  instruction receives a prediction.  Each entry maintains the most recent
  ``order`` (=4) values produced by the instructions mapping to it.  The
  *context* is a hash folding those values into ``context_bits`` (=16) bits.
* **Prediction table** (level 2): indexed by the context alone (so static
  instructions producing identical sequences share prediction state);
  each entry holds a 64-bit value and a one-bit counter guiding
  replacement — a mismatching outcome first clears the counter, and only
  a second consecutive mismatch replaces the stored value.

Update timing (Section 5.2).  Under *immediate* (I) timing the history
advances with the correct value and the prediction table trains right
after each prediction.  Under *delayed* (D) timing the history table is
updated **speculatively with the prediction**: each level-1 entry keeps a
committed history plus a queue of outstanding speculative values; the
prediction context hashes both.  At retirement the prediction table is
trained against the committed context, the retiring instance's own
speculative entry is removed (identified by the token handed out at
prediction time), and — because every younger speculative value was
chained from it — a mispredicted entry squashes the rest of the queue.

The consequence, visible in the paper's Figure 4, is that delayed update
predicts correctly only while the speculative chain stays correct: the
chain re-seeds from the committed history whenever the pipeline drains
(branch mispredictions, long-latency stalls), so accuracy degrades as
windows get deeper and drains get rarer.
"""

from __future__ import annotations

from collections import deque
from itertools import islice

from repro.isa.opcodes import INSTRUCTION_BYTES
from repro.vp.base import ValuePredictor

_MASK64 = (1 << 64) - 1


def fold_value(value: int, bits: int) -> int:
    """Fold a 64-bit value into ``bits`` bits by XORing chunks."""
    value &= _MASK64
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


class _HistoryEntry:
    """Level-1 entry: committed history plus speculative extension.

    Values are stored alongside their ``context_bits``-bit fold so the hash
    recomputed on every prediction XOR-combines precomputed folds instead
    of re-folding each 64-bit value.
    """

    __slots__ = ("committed", "committed_folded", "speculative")

    def __init__(self, order: int):
        self.committed: deque[int] = deque([0] * order, maxlen=order)
        self.committed_folded: deque[int] = deque([0] * order, maxlen=order)
        #: Outstanding speculative values as (token, value, folded) tuples,
        #: oldest first.  Values are the *predictions* made for in-flight
        #: instances of this entry's instructions.
        self.speculative: list[tuple[int, int, int]] = []


class ContextValuePredictor(ValuePredictor):
    """The paper's context-based predictor."""

    def __init__(
        self,
        history_bits: int = 16,
        context_bits: int = 16,
        order: int = 4,
    ):
        super().__init__()
        if order < 1:
            raise ValueError("order must be >= 1")
        if history_bits <= 0 or context_bits <= 0:
            raise ValueError("history_bits and context_bits must be positive")
        self.history_bits = history_bits
        self.context_bits = context_bits
        self.order = order
        self._l1_mask = (1 << history_bits) - 1
        self._ctx_mask = (1 << context_bits) - 1
        self._entries: dict[int, _HistoryEntry] = {}
        self._next_token = 0
        size = 1 << context_bits
        self._values = [0] * size
        self._counters = bytearray(size)

    # -- level-1 helpers ----------------------------------------------------

    def _l1_index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & self._l1_mask

    def _entry(self, pc: int) -> _HistoryEntry:
        index = self._l1_index(pc)
        entry = self._entries.get(index)
        if entry is None:
            entry = _HistoryEntry(self.order)
            self._entries[index] = entry
        return entry

    def _hash(self, values: list[int]) -> int:
        """The classic select-fold-shift-XOR FCM hash: each value is folded
        to ``context_bits`` bits and injected with a position-dependent
        shift so its contribution ages out after ``order`` insertions."""
        ctx = 0
        for position, value in enumerate(values[-self.order :]):
            ctx ^= fold_value(value, self.context_bits) << position
        return ctx & self._ctx_mask

    def _hash_folded(self, folded: list[int]) -> int:
        """``_hash`` over values folded ahead of time (the hot path)."""
        ctx = 0
        for position, fold in enumerate(folded[-self.order :]):
            ctx ^= fold << position
        return ctx & self._ctx_mask

    def _live_context(self, entry: _HistoryEntry) -> int:
        """``_hash`` over committed-then-speculative history, walked in
        place (the committed deque always holds exactly ``order`` folds,
        so no intermediate list is built on the predict hot path)."""
        order = self.order
        spec = entry.speculative
        depth = len(spec)
        ctx = 0
        position = 0
        if depth < order:
            for fold in islice(entry.committed_folded, depth, order):
                ctx ^= fold << position
                position += 1
            for __, __, fold in spec:
                ctx ^= fold << position
                position += 1
        else:
            for __, __, fold in spec[depth - order :]:
                ctx ^= fold << position
                position += 1
        return ctx & self._ctx_mask

    def _committed_context(self, entry: _HistoryEntry) -> int:
        ctx = 0
        position = 0
        for fold in entry.committed_folded:
            ctx ^= fold << position
            position += 1
        return ctx & self._ctx_mask

    # -- ValuePredictor interface --------------------------------------------

    def predict(self, pc: int) -> int:
        self.stats.lookups += 1
        return self._values[self._live_context(self._entry(pc))]

    def predict_speculate(self, pc: int) -> tuple[int, int]:
        """Fused predict + speculate sharing one level-1 entry lookup."""
        self.stats.lookups += 1
        entry = self._entry(pc)
        predicted = self._values[self._live_context(entry)]
        token = self._next_token
        self._next_token = token + 1
        entry.speculative.append(
            (token, predicted, fold_value(predicted, self.context_bits))
        )
        return predicted, token

    def speculate(self, pc: int, predicted: int) -> int:
        """Delayed timing: push the prediction onto the speculative history
        and return the token identifying this instance's entry."""
        token = self._next_token
        self._next_token += 1
        predicted &= _MASK64
        self._entry(pc).speculative.append(
            (token, predicted, fold_value(predicted, self.context_bits))
        )
        return token

    def train(self, pc: int, actual: int, token: object | None = None) -> None:
        actual &= _MASK64
        entry = self._entry(pc)
        # The training context is the committed one — the context this
        # instance would have predicted from had the pipeline been empty.
        self._train_l2(self._committed_context(entry), actual)
        entry.committed.append(actual)
        entry.committed_folded.append(fold_value(actual, self.context_bits))
        if token is not None:
            self._consume_speculative(entry, int(token), actual)

    def _consume_speculative(
        self, entry: _HistoryEntry, token: int, actual: int
    ) -> None:
        for position, (spec_token, spec_value, __) in enumerate(entry.speculative):
            if spec_token == token:
                if spec_value == actual:
                    del entry.speculative[position]
                else:
                    # Every younger speculative value chained from a wrong
                    # one; the chain re-seeds from committed history.
                    del entry.speculative[position:]
                return
            if spec_token > token:
                break
        # Token already squashed by an earlier chain clear: nothing to do.

    def _train_l2(self, ctx: int, actual: int) -> None:
        if self._values[ctx] == actual:
            self._counters[ctx] = 1
        elif self._counters[ctx]:
            self._counters[ctx] = 0
        else:
            self._values[ctx] = actual

    def flush_speculative(self, pc: int) -> None:
        self._entry(pc).speculative.clear()

    # -- introspection --------------------------------------------------------

    def committed_history(self, pc: int) -> tuple[int, ...]:
        """The committed value history for ``pc`` (tests/debugging)."""
        return tuple(self._entry(pc).committed)

    def speculative_depth(self, pc: int) -> int:
        """Number of outstanding speculative history values for ``pc``."""
        return len(self._entry(pc).speculative)

    def context_of(self, pc: int) -> int:
        """The context the next prediction for ``pc`` would use."""
        return self._live_context(self._entry(pc))
